#![warn(missing_docs)]

//! # obda-chase
//!
//! Canonical models (the chase) for OWL 2 QL knowledge bases, homomorphism
//! search, and a certain-answer oracle.
//!
//! The canonical model `C_{T,A}` satisfies `T, A ⊨ q(a)` iff
//! `C_{T,A} ⊨ q(a)` for every CQ; this crate materialises it up to the
//! chase-locality bound and decides entailment by backtracking homomorphism
//! search. The oracle in [`answer`] is the ground truth against which every
//! NDL-rewriting in the workspace is validated.
//!
//! ## Example
//!
//! ```
//! use obda_owlql::parser::{parse_ontology, parse_data};
//! use obda_cq::parse_cq;
//! use obda_chase::certain_answers;
//!
//! let o = parse_ontology(
//!     "Professor SubClassOf exists teaches\n\
//!      exists teaches- SubClassOf Course\n",
//! ).unwrap();
//! let d = parse_data("Professor(ada)", &o).unwrap();
//! let q = parse_cq("q(x) :- teaches(x, y), Course(y)", &o).unwrap();
//! let answers = certain_answers(&o, &q, &d);
//! assert_eq!(answers.tuples().len(), 1);
//! ```

/// Fault-injection shim: with the `faults` feature, chase materialisation
/// calls [`obda_faults::inject`] at its registered site; without it the
/// site is an empty inline function the optimiser erases.
pub(crate) mod fault {
    #[cfg(feature = "faults")]
    pub use obda_faults::{inject, site};

    #[cfg(not(feature = "faults"))]
    #[inline(always)]
    pub fn inject(_site: &'static str) {}

    #[cfg(not(feature = "faults"))]
    pub mod site {
        pub const CHASE_STEP: &str = "chase::materialise_step";
    }
}

pub mod answer;
pub mod homomorphism;
pub mod linear_walk;
pub mod model;

pub use answer::{certain_answers, certain_answers_budgeted, entails, CertainAnswers};
pub use homomorphism::HomSearch;
pub use linear_walk::linear_boolean_entails;
pub use model::{word_bound, CanonicalModel, ChaseError, Element};
