//! Homomorphism search from CQs into canonical models.
//!
//! `T, A ⊨ q(a)` iff `C_{T,A} ⊨ q(a)` iff there is a homomorphism from `q`
//! into the canonical model sending the answer variables to `a`. The search
//! is a straightforward backtracking over query variables in a
//! connectivity-respecting order, with candidate generation along role atoms
//! (so only one unconstrained enumeration per connected component).

use crate::model::{CanonicalModel, Element};
use obda_budget::{Budget, BudgetExceeded};
use obda_cq::query::{Atom, Cq, Var};
use obda_owlql::util::FxHashSet;
use obda_owlql::vocab::Role;

/// A homomorphism, as a total assignment of elements to query variables.
pub type Homomorphism = Vec<Element>;

/// The search engine. Construct once per (model, query) pair and run
/// [`HomSearch::exists`] or [`HomSearch::all_answer_tuples`].
pub struct HomSearch<'m, 'q> {
    model: &'m CanonicalModel,
    q: &'q Cq,
    /// Variable processing order: each variable after the first of its
    /// component has a Gaifman neighbour earlier in the order.
    order: Vec<Var>,
    /// For each position in `order`, an optional anchoring atom
    /// `(role, anchor)` meaning candidates are `̺`-successors of `h(anchor)`.
    anchors: Vec<Option<(Role, Var)>>,
    /// Cached full element list, used for unanchored variables.
    all_elements: Vec<Element>,
    /// Variables that must map to labelled nulls (used by tree-witness
    /// checks, where `h⁻¹(a) = t_r` forces the interior onto the anonymous
    /// part).
    require_null: Vec<Var>,
}

impl<'m, 'q> HomSearch<'m, 'q> {
    /// Prepares the search for query `q` over `model`.
    pub fn new(model: &'m CanonicalModel, q: &'q Cq) -> Self {
        let n = q.num_vars();
        let mut order: Vec<Var> = Vec::with_capacity(n);
        let mut anchors: Vec<Option<(Role, Var)>> = Vec::with_capacity(n);
        let mut placed = vec![false; n];
        // Repeatedly: place a variable adjacent to a placed one (with its
        // anchoring role atom); otherwise start a new component.
        while order.len() < n {
            let mut anchored = None;
            'outer: for &atom in q.atoms() {
                if let Atom::Prop(_, u, v) = atom {
                    for (from, to) in [(u, v), (v, u)] {
                        if placed[from.0 as usize] && !placed[to.0 as usize] {
                            let role = atom.role_between(from, to).expect("atom relates from to");
                            anchored = Some((to, Some((role, from))));
                            break 'outer;
                        }
                    }
                }
            }
            let (var, anchor) = anchored.unwrap_or_else(|| {
                let fresh = (0..n as u32).map(Var).find(|v| !placed[v.0 as usize]);
                (fresh.expect("unplaced variable exists"), None)
            });
            placed[var.0 as usize] = true;
            order.push(var);
            anchors.push(anchor);
        }
        let all_elements = model.elements();
        HomSearch { model, q, order, anchors, all_elements, require_null: Vec::new() }
    }

    /// Requires the given variables to map to labelled nulls (not
    /// individuals).
    pub fn require_null(mut self, vars: impl IntoIterator<Item = Var>) -> Self {
        self.require_null.extend(vars);
        self
    }

    /// Candidate elements for the variable at `pos` given the partial
    /// assignment.
    fn candidates(&self, pos: usize, h: &[Option<Element>]) -> Vec<Element> {
        match self.anchors[pos] {
            Some((role, anchor)) => {
                let base = h[anchor.0 as usize].expect("anchor assigned before dependant");
                self.model.role_successors(role, base)
            }
            None => self.all_elements.clone(),
        }
    }

    /// Whether extending the assignment with `var ↦ e` keeps all atoms whose
    /// variables are now fully assigned satisfied.
    fn consistent(&self, var: Var, e: Element, h: &[Option<Element>]) -> bool {
        if self.q.is_answer_var(var) && e.as_const().is_none() {
            return false;
        }
        if self.require_null.contains(&var) && e.as_const().is_some() {
            return false;
        }
        for &atom in self.q.atoms() {
            match atom {
                Atom::Class(c, z) if z == var && !self.model.satisfies_class(c, e) => {
                    return false;
                }
                Atom::Prop(p, z, z2) => {
                    let role = Role::direct(p);
                    let img = |v: Var| -> Option<Element> {
                        if v == var {
                            Some(e)
                        } else {
                            h[v.0 as usize]
                        }
                    };
                    if (z == var || z2 == var) && img(z).is_some() && img(z2).is_some() {
                        let (a, b) = (img(z).expect("assigned"), img(z2).expect("assigned"));
                        if !self.model.satisfies_role(role, a, b) {
                            return false;
                        }
                    }
                }
                _ => {}
            }
        }
        true
    }

    fn search(
        &self,
        pos: usize,
        h: &mut Vec<Option<Element>>,
        budget: &mut Budget,
        on_complete: &mut dyn FnMut(&[Option<Element>]) -> bool,
    ) -> Result<bool, BudgetExceeded> {
        budget.tick()?;
        if pos == self.order.len() {
            return Ok(on_complete(h));
        }
        let var = self.order[pos];
        if let Some(e) = h[var.0 as usize] {
            // Pre-fixed variable: just validate it.
            if self.consistent_prefixed(var, e, h) {
                return self.search(pos + 1, h, budget, on_complete);
            }
            return Ok(false);
        }
        for e in self.candidates(pos, h) {
            if self.consistent(var, e, h) {
                h[var.0 as usize] = Some(e);
                if self.search(pos + 1, h, budget, on_complete)? {
                    h[var.0 as usize] = None;
                    return Ok(true);
                }
                h[var.0 as usize] = None;
            }
        }
        Ok(false)
    }

    fn consistent_prefixed(&self, var: Var, e: Element, h: &[Option<Element>]) -> bool {
        if !self.model.contains(e) {
            return false;
        }
        // Temporarily treat var as newly assigned for atom checking.
        self.consistent(var, e, h)
    }

    /// Whether a homomorphism extending `fixed` exists.
    pub fn exists(&self, fixed: &[(Var, Element)]) -> bool {
        match self.try_exists(fixed, &mut Budget::unlimited()) {
            Ok(found) => found,
            Err(_) => unreachable!("an unlimited budget never trips"),
        }
    }

    /// Like [`HomSearch::exists`], but ticks the budget at every search
    /// node so backtracking over a large model respects the shared
    /// deadline.
    pub fn try_exists(
        &self,
        fixed: &[(Var, Element)],
        budget: &mut Budget,
    ) -> Result<bool, BudgetExceeded> {
        let mut h: Vec<Option<Element>> = vec![None; self.q.num_vars()];
        for &(v, e) in fixed {
            h[v.0 as usize] = Some(e);
        }
        self.search(0, &mut h, budget, &mut |_| true)
    }

    /// All answer tuples: projections of homomorphisms to the answer
    /// variables (which always map to individuals).
    pub fn all_answer_tuples(&self) -> FxHashSet<Vec<obda_owlql::abox::ConstId>> {
        match self.try_all_answer_tuples(&mut Budget::unlimited()) {
            Ok(out) => out,
            Err(_) => unreachable!("an unlimited budget never trips"),
        }
    }

    /// Like [`HomSearch::all_answer_tuples`], but budgeted: every search
    /// node ticks against the shared deadline and step cap.
    pub fn try_all_answer_tuples(
        &self,
        budget: &mut Budget,
    ) -> Result<FxHashSet<Vec<obda_owlql::abox::ConstId>>, BudgetExceeded> {
        let mut out = FxHashSet::default();
        let mut h: Vec<Option<Element>> = vec![None; self.q.num_vars()];
        let answer_vars = self.q.answer_vars().to_vec();
        self.search(0, &mut h, budget, &mut |assignment| {
            let tuple: Vec<_> = answer_vars
                .iter()
                .map(|&v| {
                    assignment[v.0 as usize]
                        .expect("complete assignment")
                        .as_const()
                        .expect("answer variables map to individuals")
                })
                .collect();
            out.insert(tuple);
            false // keep searching for more tuples
        })?;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::word_bound;
    use obda_cq::parse_cq;
    use obda_owlql::parser::{parse_data, parse_ontology};

    fn setup(
        onto: &str,
        data: &str,
        query: &str,
    ) -> (obda_owlql::Ontology, CanonicalModel, Cq, obda_owlql::DataInstance) {
        let o = parse_ontology(onto).unwrap();
        let d = parse_data(data, &o).unwrap();
        let q = parse_cq(query, &o).unwrap();
        let bound = word_bound(&o.taxonomy(), q.num_vars());
        let m = CanonicalModel::new(&o, &d, bound);
        (o, m, q, d)
    }

    #[test]
    fn hom_into_data_part() {
        let (_, m, q, d) =
            setup("Class A\nProperty R\n", "R(a, b)\nA(b)\n", "q(x) :- R(x, y), A(y)");
        let s = HomSearch::new(&m, &q);
        assert!(s.exists(&[]));
        let answers = s.all_answer_tuples();
        let a = d.get_constant("a").unwrap();
        assert_eq!(answers.len(), 1);
        assert!(answers.contains(&vec![a]));
    }

    #[test]
    fn hom_into_anonymous_part() {
        let (_, m, q, _) = setup(
            "A SubClassOf exists P\n\
             exists P- SubClassOf B\n",
            "A(a)\n",
            "q(x) :- P(x, y), B(y)",
        );
        let s = HomSearch::new(&m, &q);
        assert!(s.exists(&[]));
        assert_eq!(s.all_answer_tuples().len(), 1);
    }

    #[test]
    fn answer_variable_cannot_be_null() {
        let (_, m, q, _) = setup(
            "A SubClassOf exists P\n\
             exists P- SubClassOf B\n",
            "A(a)\n",
            "q(x, y) :- P(x, y), B(y)",
        );
        let s = HomSearch::new(&m, &q);
        // y would have to be the null a·P, so there is no certain answer.
        assert!(s.all_answer_tuples().is_empty());
    }

    #[test]
    fn boolean_query_deep_in_tree() {
        let (_, m, q, _) = setup(
            "A SubClassOf exists P\n\
             exists P- SubClassOf exists S\n\
             exists S- SubClassOf B\n",
            "A(a)\n",
            "q() :- P(x, y), S(y, z), B(z)",
        );
        let s = HomSearch::new(&m, &q);
        assert!(s.exists(&[]));
    }

    #[test]
    fn no_hom_when_label_missing() {
        let (_, m, q, _) =
            setup("A SubClassOf exists P\nClass B\n", "A(a)\n", "q() :- P(x, y), B(y)");
        let s = HomSearch::new(&m, &q);
        assert!(!s.exists(&[]));
    }

    #[test]
    fn fixed_assignment_respected() {
        let (_, m, q, d) = setup("Property R\n", "R(a, b)\nR(c, b)\n", "q(x) :- R(x, y)");
        let s = HomSearch::new(&m, &q);
        let a = d.get_constant("a").unwrap();
        let c = d.get_constant("c").unwrap();
        let b = d.get_constant("b").unwrap();
        let x = q.get_var("x").unwrap();
        assert!(s.exists(&[(x, Element::Const(a))]));
        assert!(s.exists(&[(x, Element::Const(c))]));
        assert!(!s.exists(&[(x, Element::Const(b))]));
        assert_eq!(s.all_answer_tuples().len(), 2);
    }

    #[test]
    fn disconnected_query_components() {
        let (_, m, q, _) = setup("Class A\nClass B\n", "A(a)\nB(b)\n", "q() :- A(x), B(y)");
        let s = HomSearch::new(&m, &q);
        assert!(s.exists(&[]));
    }

    #[test]
    fn self_loop_atom_needs_reflexivity_or_data() {
        let (_, m, q, _) = setup("Property R\nClass A\n", "A(a)\nR(a, a)\n", "q() :- R(x, x)");
        assert!(HomSearch::new(&m, &q).exists(&[]));
        let (_, m2, q2, _) = setup("Reflexive R\nClass A\n", "A(a)\n", "q() :- R(x, x)");
        assert!(HomSearch::new(&m2, &q2).exists(&[]));
        let (_, m3, q3, _) = setup("Property R\nClass A\n", "A(a)\nR(a, b)\n", "q() :- R(x, x)");
        assert!(!HomSearch::new(&m3, &q3).exists(&[]));
    }
}
