//! Lazy canonical-model walking for linear Boolean CQs.
//!
//! The materialising oracle in [`crate::answer`] builds the word arena up
//! front, which is infeasible for the deep, branchy canonical models of the
//! fixed ontologies `T†`/`T‡` of Section 5. For *linear* Boolean CQs there
//! is a cheaper strategy matching the NL upper bound for CQ evaluation: walk
//! the query path over the canonical model, growing null words lazily and
//! pruning by the query's role constraints at every step, deduplicating
//! `(position, element)` states.
//!
//! The walk starts from an anchor variable assumed to map to an
//! *individual* (pass a variable whose class constraints only hold at
//! individuals, e.g. the `A(u₀)` anchor of the `q_w` queries of Thm 22).

use crate::model::word_bound;
use obda_cq::gaifman::Gaifman;
use obda_cq::query::{Cq, Var};
use obda_owlql::abox::{ConstId, DataInstance};
use obda_owlql::axiom::ClassExpr;
use obda_owlql::ontology::Ontology;
use obda_owlql::saturation::Taxonomy;
use obda_owlql::util::FxHashSet;
use obda_owlql::vocab::Role;
use obda_owlql::words::word_transition;

/// A lazily-represented canonical-model element: an individual or a null
/// with an explicit word.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum LazyElem {
    Const(ConstId),
    Null(ConstId, Vec<Role>),
}

struct Walker<'a> {
    ontology: &'a Ontology,
    taxonomy: &'a Taxonomy,
    completed: &'a DataInstance,
    q: &'a Cq,
    /// Maximum word length explored (chase locality bound).
    max_len: usize,
}

impl Walker<'_> {
    fn applicable(&self, c: ConstId, role: Role) -> bool {
        self.completed.has_class_atom(self.ontology.exists_class(role), c)
    }

    fn is_letter(&self, role: Role) -> bool {
        !self.taxonomy.is_reflexive(role)
    }

    /// Whether the element satisfies all class atoms and self-loops of `v`.
    fn satisfies_local(&self, v: Var, e: &LazyElem) -> bool {
        match e {
            LazyElem::Const(c) => {
                self.q.class_atoms_on(v).all(|a| self.completed.has_class_atom(a, *c))
                    && self.q.roles_between(v, v).all(|r| {
                        self.completed.has_role_atom(r, *c, *c) || self.taxonomy.is_reflexive(r)
                    })
            }
            LazyElem::Null(_, w) => {
                let last = *w.last().expect("nulls have nonempty words");
                self.q.class_atoms_on(v).all(|a| {
                    self.taxonomy.sub_class(ClassExpr::Exists(last.inv()), ClassExpr::Class(a))
                }) && self.q.roles_between(v, v).all(|r| self.taxonomy.is_reflexive(r))
            }
        }
    }

    /// The `̺`-successors of `e` in the canonical model, lazily.
    fn successors(&self, e: &LazyElem, role: Role) -> Vec<LazyElem> {
        let mut out = Vec::new();
        if self.taxonomy.is_reflexive(role) {
            out.push(e.clone());
        }
        match e {
            LazyElem::Const(c) => {
                for (a, b) in self.completed.role_pairs(role) {
                    if a == *c {
                        out.push(LazyElem::Const(b));
                    }
                }
                for sigma in self.taxonomy.sub_roles(role) {
                    if self.is_letter(sigma) && self.applicable(*c, sigma) {
                        out.push(LazyElem::Null(*c, vec![sigma]));
                    }
                }
            }
            LazyElem::Null(c, w) => {
                let last = *w.last().expect("nonempty");
                // Upwards: ̺(e, parent) iff last ⊑ ̺⁻.
                if self.taxonomy.sub_role(last, role.inv()) {
                    if w.len() == 1 {
                        out.push(LazyElem::Const(*c));
                    } else {
                        out.push(LazyElem::Null(*c, w[..w.len() - 1].to_vec()));
                    }
                }
                // Downwards: children via allowed transitions.
                if w.len() < self.max_len {
                    for sigma in self.taxonomy.sub_roles(role) {
                        if self.is_letter(sigma) && word_transition(self.taxonomy, last, sigma) {
                            let mut w2 = w.clone();
                            w2.push(sigma);
                            out.push(LazyElem::Null(*c, w2));
                        }
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }
}

/// Decides `T, A ⊨ q` for a connected **linear Boolean** CQ, walking the
/// canonical model lazily from `anchor` (which must map to an individual for
/// the query to hold — its constraints are checked against individuals
/// only).
///
/// # Panics
/// Panics if `q` is not linear or `anchor` is not a variable of `q`.
pub fn linear_boolean_entails(
    ontology: &Ontology,
    q: &Cq,
    data: &DataInstance,
    anchor: Var,
) -> bool {
    let g = Gaifman::new(q);
    assert!(g.is_linear(), "query must be linear");
    assert!((anchor.0 as usize) < q.num_vars(), "anchor must be a query variable");
    let taxonomy = ontology.taxonomy();
    if !data.is_consistent(&taxonomy) {
        return true;
    }
    let completed = data.complete(&taxonomy);
    let walker = Walker {
        ontology,
        taxonomy: &taxonomy,
        completed: &completed,
        q,
        max_len: word_bound(&taxonomy, q.num_vars()).max(q.num_vars()),
    };

    // Orient the path: BFS order from the anchor covers both directions.
    // The two directions are independent only *given the anchor element*,
    // so run the DP once per initial anchor element.
    let dist = g.bfs_distances(anchor);
    let mut order: Vec<Var> = q.vars().collect();
    order.sort_by_key(|v| dist[v.0 as usize]);

    let initial: Vec<LazyElem> = completed
        .individuals()
        .map(LazyElem::Const)
        .filter(|e| walker.satisfies_local(anchor, e))
        .collect();
    'anchors: for start in initial {
        let mut states: Vec<FxHashSet<LazyElem>> = vec![FxHashSet::default(); q.num_vars()];
        states[anchor.0 as usize].insert(start);
        for &v in order.iter().skip(1) {
            // The unique already-processed neighbour.
            let prev = g
                .neighbours(v)
                .find(|u| dist[u.0 as usize] < dist[v.0 as usize])
                .expect("path order has an earlier neighbour");
            let roles: Vec<Role> = q.roles_between(prev, v).collect();
            let mut next: FxHashSet<LazyElem> = FxHashSet::default();
            for e in &states[prev.0 as usize] {
                // Candidates along the first constraining atom, then filter
                // by the rest.
                let Some(&first) = roles.first() else { continue };
                for cand in walker.successors(e, first) {
                    if !walker.satisfies_local(v, &cand) {
                        continue;
                    }
                    let all_roles_ok =
                        roles.iter().skip(1).all(|&r| walker.successors(e, r).contains(&cand));
                    if all_roles_ok {
                        next.insert(cand);
                    }
                }
            }
            if next.is_empty() {
                continue 'anchors;
            }
            states[v.0 as usize] = next;
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::{certain_answers, CertainAnswers};
    use obda_cq::parse_cq;
    use obda_owlql::parser::{parse_data, parse_ontology};

    #[test]
    fn agrees_with_arena_oracle_on_finite_models() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf exists S\n\
             exists S- SubClassOf B\n",
        )
        .unwrap();
        let q = parse_cq("q() :- A(x), P(x, y), S(y, z), B(z)", &o).unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let anchor = q.get_var("x").unwrap();
        assert!(linear_boolean_entails(&o, &q, &d, anchor));
        assert_eq!(certain_answers(&o, &q, &d), CertainAnswers::Boolean(true));
        let d2 = parse_data("B(b)\n", &o).unwrap();
        assert!(!linear_boolean_entails(&o, &q, &d2, anchor));
        assert_eq!(certain_answers(&o, &q, &d2), CertainAnswers::Boolean(false));
    }

    #[test]
    fn walks_deep_into_infinite_models() {
        // An infinite chain: the query needs depth 6, far beyond what the
        // data contains.
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf exists P\n\
             exists P- SubClassOf B\n",
        )
        .unwrap();
        let q = parse_cq(
            "q() :- A(x0), P(x0, x1), P(x1, x2), P(x2, x3), P(x3, x4), P(x4, x5), P(x5, x6), B(x6)",
            &o,
        )
        .unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let anchor = q.get_var("x0").unwrap();
        assert!(linear_boolean_entails(&o, &q, &d, anchor));
    }

    #[test]
    fn descends_and_reascends() {
        // The path goes down into the anonymous part and back up:
        // P(x, y) ∧ S(z, y) with both x and z mapping to the individual.
        let o = parse_ontology(
            "A SubClassOf exists R\n\
             R SubPropertyOf P\n\
             R SubPropertyOf S\n\
             Class B\n",
        )
        .unwrap();
        let q = parse_cq("q() :- A(x), P(x, y), S(z, y), A(z)", &o).unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let anchor = q.get_var("x").unwrap();
        assert!(linear_boolean_entails(&o, &q, &d, anchor));
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(oracle, CertainAnswers::Boolean(true));
    }

    #[test]
    fn respects_multi_role_edges() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             Property S\n",
        )
        .unwrap();
        // P and S must hold together between x and y; only P does.
        let q = parse_cq("q() :- A(x), P(x, y), S(x, y)", &o).unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let anchor = q.get_var("x").unwrap();
        assert!(!linear_boolean_entails(&o, &q, &d, anchor));
        let d2 = parse_data("A(a)\nP(a, b)\nS(a, b)\n", &o).unwrap();
        assert!(linear_boolean_entails(&o, &q, &d2, anchor));
    }
}
