//! The certain-answer oracle.
//!
//! Computes certain answers to an OMQ `(T, q(x))` over a data instance by
//! materialising the canonical model to the locality bound and enumerating
//! homomorphisms. This is the ground truth every rewriting is validated
//! against; it is not meant to be fast on large data.

use crate::homomorphism::HomSearch;
use crate::model::{word_bound, CanonicalModel, ChaseError};
use obda_budget::Budget;
use obda_cq::query::Cq;
use obda_owlql::abox::{ConstId, DataInstance};
use obda_owlql::ontology::Ontology;
use obda_owlql::util::FxHashSet;

/// The certain answers to an OMQ over a data instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertainAnswers {
    /// A Boolean query's verdict.
    Boolean(bool),
    /// Answer tuples over `ind(A)`, one entry per answer variable.
    Tuples(Vec<Vec<ConstId>>),
}

impl CertainAnswers {
    /// The tuples, sorted; a Boolean `true` is the empty tuple, `false` no
    /// tuple (the standard convention).
    pub fn tuples(&self) -> Vec<Vec<ConstId>> {
        match self {
            CertainAnswers::Boolean(true) => vec![Vec::new()],
            CertainAnswers::Boolean(false) => Vec::new(),
            CertainAnswers::Tuples(t) => t.clone(),
        }
    }
}

/// Computes the certain answers `{a : T, A ⊨ q(a)}`.
///
/// If `(T, A)` is inconsistent, every tuple over `ind(A)` is a certain
/// answer (and a Boolean query holds).
pub fn certain_answers(ontology: &Ontology, q: &Cq, data: &DataInstance) -> CertainAnswers {
    match certain_answers_budgeted(ontology, q, data, &mut Budget::unlimited()) {
        Ok(ans) => ans,
        Err(_) => unreachable!("an unlimited budget never trips"),
    }
}

/// Like [`certain_answers`], but every phase — saturation, word-arena
/// expansion, data completion and homomorphism search — draws on the given
/// [`Budget`]. A cyclic (infinite-depth) ontology makes the bounded
/// materialisation exponential in the locality bound; under a budget the
/// oracle returns a typed [`ChaseError`] with partial statistics instead
/// of hanging or exhausting memory.
pub fn certain_answers_budgeted(
    ontology: &Ontology,
    q: &Cq,
    data: &DataInstance,
    budget: &mut Budget,
) -> Result<CertainAnswers, ChaseError> {
    let interrupted = |e: obda_budget::BudgetExceeded, b: &Budget| ChaseError {
        exceeded: e,
        elements: b.spent_chase_elements() as usize,
    };
    let taxonomy = ontology.taxonomy_budgeted(budget).map_err(|e| interrupted(e, budget))?;
    if !data.is_consistent(&taxonomy) {
        if q.is_boolean() {
            return Ok(CertainAnswers::Boolean(true));
        }
        let individuals: Vec<ConstId> = data.individuals().collect();
        let mut tuples = vec![Vec::new()];
        for _ in q.answer_vars() {
            let mut next = Vec::new();
            for t in &tuples {
                for &c in &individuals {
                    budget.tick().map_err(|e| interrupted(e, budget))?;
                    let mut t2: Vec<ConstId> = t.clone();
                    t2.push(c);
                    next.push(t2);
                }
            }
            tuples = next;
        }
        return Ok(CertainAnswers::Tuples(tuples));
    }

    let bound = word_bound(&taxonomy, q.num_vars());
    let model = CanonicalModel::new_budgeted(ontology, data, bound, budget)?;
    let search = HomSearch::new(&model, q);
    if q.is_boolean() {
        let found = search.try_exists(&[], budget).map_err(|e| interrupted(e, budget))?;
        Ok(CertainAnswers::Boolean(found))
    } else {
        let set: FxHashSet<Vec<ConstId>> =
            search.try_all_answer_tuples(budget).map_err(|e| interrupted(e, budget))?;
        let mut tuples: Vec<Vec<ConstId>> = set.into_iter().collect();
        tuples.sort();
        Ok(CertainAnswers::Tuples(tuples))
    }
}

/// Decides `T, A ⊨ q(a)` for a single candidate tuple.
pub fn entails(ontology: &Ontology, q: &Cq, data: &DataInstance, tuple: &[ConstId]) -> bool {
    assert_eq!(tuple.len(), q.answer_vars().len(), "tuple arity mismatch");
    let taxonomy = ontology.taxonomy();
    if !data.is_consistent(&taxonomy) {
        return true;
    }
    let bound = word_bound(&taxonomy, q.num_vars());
    let model = CanonicalModel::new(ontology, data, bound);
    let search = HomSearch::new(&model, q);
    let fixed: Vec<_> = q
        .answer_vars()
        .iter()
        .zip(tuple)
        .map(|(&v, &c)| (v, crate::model::Element::Const(c)))
        .collect();
    search.exists(&fixed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_cq::parse_cq;
    use obda_owlql::parser::{parse_data, parse_ontology};

    #[test]
    fn example_8_and_11_has_expected_answer() {
        // Example 11's ontology with Example 8's 7-atom linear CQ over a
        // small instance exercising the P-shortcut: R S R can be matched by
        // AP⁻ then R, per the UCQ rewriting of Appendix A.6.1.
        let o = parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap();
        let q = parse_cq(
            "q(x0, x7) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6), R(x6, x7)",
            &o,
        )
        .unwrap();
        // Data: P(c1, a) makes exists:P-(a) hold, so the first R·S·R folds
        // into the anonymous part at a; then R(a,b), P(b2, b) folds the
        // second R·S·R at b (via AP(b)? — no: use AP-(b)); then R(b, c).
        let d = parse_data(
            "P(w1, a)\n\
             R(a, b)\n\
             P(w2, b)\n\
             R(b, c)\n\
             R(c, e)\n",
            &o,
        )
        .unwrap();
        let ans = certain_answers(&o, &q, &d);
        let a = d.get_constant("a").unwrap();
        let e = d.get_constant("e").unwrap();
        assert_eq!(ans.tuples(), vec![vec![a, e]]);
        assert!(entails(&o, &q, &d, &[a, e]));
        assert!(!entails(&o, &q, &d, &[e, a]));
    }

    #[test]
    fn inconsistent_kb_returns_everything() {
        let o = parse_ontology("A DisjointWith B\n").unwrap();
        let q = parse_cq("q(x) :- A(x)", &o).unwrap();
        let d = parse_data("A(u)\nB(u)\nA(v)\n", &o).unwrap();
        let ans = certain_answers(&o, &q, &d);
        assert_eq!(ans.tuples().len(), 2); // both u and v
        let qb = parse_cq("q() :- B(x), A(x)", &o).unwrap();
        assert_eq!(certain_answers(&o, &qb, &d), CertainAnswers::Boolean(true));
    }

    #[test]
    fn boolean_false() {
        let o = parse_ontology("Class A\nClass B\n").unwrap();
        let q = parse_cq("q() :- B(x)", &o).unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        assert_eq!(certain_answers(&o, &q, &d), CertainAnswers::Boolean(false));
    }
}
