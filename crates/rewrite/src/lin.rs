//! The `Lin` rewriting (Section 3.3, Theorem 12): linear polynomial-size
//! NDL-rewritings of OMQs from `OMQ(d, 1, ℓ)` — ontologies of finite depth
//! `d` with tree-shaped CQs with `ℓ` leaves — evaluable in NL.
//!
//! The CQ is rooted and cut into *slices* `z⁰, z¹, …, z^M` by distance from
//! the root; a predicate `G^w_n(z^n_∃, x^n)` per slice `n` and type `w`
//! (a map from the slice's variables to `W_T`-words) asserts that the
//! sub-query below slice `n` matches with `z^n` placed as `w` prescribes.
//! Each clause links one slice to the next, so the program is linear of
//! width `≤ 2ℓ` with `≤ |q|·|T|^{2dℓ}` predicates.

use crate::omq::{charge_clause, tick_rewrite, Omq, RewriteError, Rewriter};
use crate::types::{TypeCtx, TypeMap};
use obda_budget::Budget;
use obda_cq::gaifman::Gaifman;
use obda_cq::query::Var;
use obda_ndl::program::{BodyAtom, CVar, Clause, NdlQuery, Program};
use obda_owlql::util::FxHashMap;
use obda_owlql::words::{ontology_depth, WordArena};

/// The `Lin` rewriter. Requires a connected tree-shaped CQ and a
/// finite-depth ontology.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinRewriter {
    /// Optional root override (defaults to the first answer variable, then
    /// to the first variable).
    pub root: Option<Var>,
}

impl Rewriter for LinRewriter {
    fn name(&self) -> &'static str {
        "Lin"
    }

    fn rewrite_budgeted(
        &self,
        omq: &Omq<'_>,
        budget: &mut Budget,
    ) -> Result<NdlQuery, RewriteError> {
        let q = omq.query;
        let g = Gaifman::new(q);
        if !g.is_connected() {
            return Err(RewriteError::NotConnected);
        }
        if !g.is_tree() {
            return Err(RewriteError::NotTreeShaped);
        }
        let taxonomy = omq
            .ontology
            .taxonomy_budgeted(budget)
            .map_err(|e| RewriteError::from_budget(e, 0, 0))?;
        let Some(depth) = ontology_depth(&taxonomy) else {
            return Err(RewriteError::InfiniteDepth);
        };
        let arena = WordArena::new_budgeted(&taxonomy, depth, budget)
            .map_err(|e| RewriteError::from_budget(e, 0, 0))?;
        let ctx = TypeCtx { ontology: omq.ontology, taxonomy: &taxonomy, arena: &arena, q };

        // Slices by BFS distance from the root.
        let root = self.root.or_else(|| q.answer_vars().first().copied()).unwrap_or(Var(0));
        let dist = g.bfs_distances(root);
        let max_dist = dist.iter().copied().max().unwrap_or(0) as usize;
        let slices: Vec<Vec<Var>> = (0..=max_dist)
            .map(|n| q.vars().filter(|v| dist[v.0 as usize] == n as u32).collect())
            .collect();

        // x^n: answer variables occurring in q_n (the atoms whose variables
        // all lie at distance ≥ n).
        let answer_in_qn = |n: usize| -> Vec<Var> {
            q.answer_vars()
                .iter()
                .copied()
                .filter(|&x| {
                    q.atoms().iter().any(|a| {
                        a.vars().any(|v| v == x)
                            && a.vars().all(|v| dist[v.0 as usize] as usize >= n)
                    })
                })
                .collect()
        };
        let xs: Vec<Vec<Var>> = (0..=max_dist).map(answer_in_qn).collect();

        let mut program = Program::new();
        // Per slice: the types that have a defined predicate, with their ids.
        let mut defined: Vec<FxHashMap<TypeMap, obda_ndl::program::PredId>> =
            vec![FxHashMap::default(); max_dist + 1];

        // Head arguments of G^w_n: the slice's existential variables then
        // the answer variables of q_n (parameters).
        let head_vars = |n: usize| -> Vec<Var> {
            let mut vars: Vec<Var> =
                slices[n].iter().copied().filter(|v| !q.is_answer_var(*v)).collect();
            vars.extend(xs[n].iter().copied());
            vars
        };

        // Bottom slice M: G^w_M(z^M_∃, x^M) ← At^w(z^M).
        for t in ctx.enumerate_types(&slices[max_dist], &TypeMap::empty()) {
            tick_rewrite(budget, &program)?;
            let heads = head_vars(max_dist);
            let pid = program.add_idb_with_params(
                format!("G{}_{}", max_dist, t.display(q, &arena, omq.ontology)),
                heads.len(),
                xs[max_dist].len(),
            );
            let clause = build_clause(&ctx, &mut program, pid, &heads, &t, None);
            charge_clause(budget, &program)?;
            program.add_clause(clause);
            defined[max_dist].insert(t, pid);
        }

        // Upper slices: G^w_n ← At^{w∪s}(z^n, z^{n+1}) ∧ G^s_{n+1}.
        for n in (0..max_dist).rev() {
            let candidates = ctx.enumerate_types(&slices[n], &TypeMap::empty());
            let child_types: Vec<(TypeMap, obda_ndl::program::PredId)> =
                defined[n + 1].iter().map(|(t, &p)| (t.clone(), p)).collect();
            for w in candidates {
                let mut pid = None;
                for (s, child_pid) in &child_types {
                    tick_rewrite(budget, &program)?;
                    let union = w.union(s);
                    let mut both: Vec<Var> = slices[n].clone();
                    both.extend(slices[n + 1].iter().copied());
                    if !ctx.compatible_on(&union, &both) {
                        continue;
                    }
                    let heads = head_vars(n);
                    let id = *pid.get_or_insert_with(|| {
                        program.add_idb_with_params(
                            format!("G{}_{}", n, w.display(q, &arena, omq.ontology)),
                            heads.len(),
                            xs[n].len(),
                        )
                    });
                    let child_heads = head_vars(n + 1);
                    let clause = build_clause(
                        &ctx,
                        &mut program,
                        id,
                        &heads,
                        &union,
                        Some((*child_pid, &child_heads)),
                    );
                    charge_clause(budget, &program)?;
                    program.add_clause(clause);
                }
                if let Some(id) = pid {
                    defined[n].insert(w, id);
                }
            }
        }

        // Goal: G(x) ← G^w_0(z⁰_∃, x) for every defined w.
        let goal = program.add_idb_with_params(
            "G".to_owned(),
            q.answer_vars().len(),
            q.answer_vars().len(),
        );
        let top_types: Vec<obda_ndl::program::PredId> = defined[0].values().copied().collect();
        for pid in top_types {
            charge_clause(budget, &program)?;
            let heads = head_vars(0);
            // Clause variables: answer vars ∪ slice-0 heads.
            let mut cvars: FxHashMap<Var, CVar> = FxHashMap::default();
            let mut next = 0u32;
            let cv = |v: Var, cvars: &mut FxHashMap<Var, CVar>, next: &mut u32| -> CVar {
                *cvars.entry(v).or_insert_with(|| {
                    let c = CVar(*next);
                    *next += 1;
                    c
                })
            };
            let head_args: Vec<CVar> =
                q.answer_vars().iter().map(|&v| cv(v, &mut cvars, &mut next)).collect();
            let child_args: Vec<CVar> =
                heads.iter().map(|&v| cv(v, &mut cvars, &mut next)).collect();
            program.add_clause(Clause {
                head: goal,
                head_args,
                body: vec![BodyAtom::Pred(pid, child_args)],
                num_vars: next,
            });
        }
        Ok(NdlQuery::new(program, goal))
    }
}

/// Builds one slice clause: head `pid(head_vars)`, body `At^t` plus the
/// optional child predicate atom, with a `⊤` fallback for otherwise-unbound
/// head variables.
fn build_clause(
    ctx: &TypeCtx<'_>,
    program: &mut Program,
    pid: obda_ndl::program::PredId,
    head_vars: &[Var],
    t: &TypeMap,
    child: Option<(obda_ndl::program::PredId, &[Var])>,
) -> Clause {
    let mut cvars: FxHashMap<Var, CVar> = FxHashMap::default();
    let mut next = 0u32;
    // Deterministic allocation: head vars first, then child vars, then the
    // type domain.
    let alloc = |v: Var, cvars: &mut FxHashMap<Var, CVar>, next: &mut u32| -> CVar {
        *cvars.entry(v).or_insert_with(|| {
            let c = CVar(*next);
            *next += 1;
            c
        })
    };
    for &v in head_vars {
        alloc(v, &mut cvars, &mut next);
    }
    if let Some((_, child_vars)) = child {
        for &v in child_vars {
            alloc(v, &mut cvars, &mut next);
        }
    }
    for v in t.domain() {
        alloc(v, &mut cvars, &mut next);
    }
    let lookup = cvars.clone();
    let mut body = ctx.type_atoms(program, t, &|v| lookup[&v]);
    if let Some((child_pid, child_vars)) = child {
        let args: Vec<CVar> = child_vars.iter().map(|&v| lookup[&v]).collect();
        body.push(BodyAtom::Pred(child_pid, args));
    }
    // ⊤ fallback for head variables not occurring in the body.
    let bound: Vec<CVar> = body.iter().flat_map(|a| a.vars()).collect();
    let top = program.edb_top();
    let head_args: Vec<CVar> = head_vars.iter().map(|&v| lookup[&v]).collect();
    for &c in &head_args {
        if !bound.contains(&c) {
            body.push(BodyAtom::Pred(top, vec![c]));
        }
    }
    if body.is_empty() {
        // Degenerate slice (no constraints): true over nonempty domains.
        body.push(BodyAtom::Pred(top, vec![CVar(next)]));
        next += 1;
    }
    Clause { head: pid, head_args, body, num_vars: next }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omq::rewrite_arbitrary;
    use obda_chase::certain_answers;
    use obda_cq::parse_cq;
    use obda_ndl::analysis::{is_linear, width};
    use obda_ndl::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};

    fn example_11_ontology() -> obda_owlql::Ontology {
        parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap()
    }

    #[test]
    fn produces_linear_program() {
        let o = example_11_ontology();
        let q = parse_cq("q(x0, x3) :- R(x0, x1), S(x1, x2), R(x2, x3)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let rw = LinRewriter::default().rewrite_complete(&omq).unwrap();
        assert!(is_linear(&rw.program));
        // Width ≤ 2ℓ = 4 for a linear query.
        assert!(width(&rw.program) <= 4, "width {}", width(&rw.program));
    }

    #[test]
    fn matches_oracle_on_example_8() {
        let o = example_11_ontology();
        let q = parse_cq(
            "q(x0, x7) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6), R(x6, x7)",
            &o,
        )
        .unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tx = o.taxonomy();
        let rw = rewrite_arbitrary(&LinRewriter::default(), &omq, &tx).unwrap();
        assert!(is_linear(&rw.program), "Lemma 3 preserves linearity");
        let d = parse_data("P(w1, a)\nR(a, b)\nP(w2, b)\nR(b, c)\nR(c, e)\nR(e, f)\nS(f, g)\n", &o)
            .unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
        assert!(!res.answers.is_empty());
    }

    #[test]
    fn boolean_tree_query() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf B\n",
        )
        .unwrap();
        let q = parse_cq("q() :- P(x, y), B(y)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tx = o.taxonomy();
        let rw = rewrite_arbitrary(&LinRewriter::default(), &omq, &tx).unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 1, "Boolean true = the empty tuple");
        let d2 = parse_data("B(a)\n", &o).unwrap();
        let res2 = evaluate(&rw, &d2, &EvalOptions::default()).unwrap();
        assert!(res2.answers.is_empty());
    }

    #[test]
    fn star_query_with_three_leaves() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf B\n\
             Class C\n",
        )
        .unwrap();
        let q = parse_cq("q(c) :- P(c, l1), P(c, l2), B(l1), C(l2)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tx = o.taxonomy();
        let rw = rewrite_arbitrary(&LinRewriter::default(), &omq, &tx).unwrap();
        // u: anonymous witness covers l1 but not l2 (C is not implied).
        let d = parse_data("A(u)\nP(u, v)\nC(v)\nA(w)\n", &o).unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
        assert_eq!(res.answers.len(), 1);
    }

    #[test]
    fn rejects_cyclic_query() {
        let o = example_11_ontology();
        let q = parse_cq("q() :- R(x, y), R(y, z), R(z, x)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        assert_eq!(
            LinRewriter::default().rewrite_complete(&omq).unwrap_err(),
            RewriteError::NotTreeShaped
        );
    }

    #[test]
    fn rejects_infinite_depth() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf exists P\n",
        )
        .unwrap();
        let q = parse_cq("q(x) :- P(x, y)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        assert_eq!(
            LinRewriter::default().rewrite_complete(&omq).unwrap_err(),
            RewriteError::InfiniteDepth
        );
    }
}
