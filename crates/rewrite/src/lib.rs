#![warn(missing_docs)]

//! # obda-rewrite
//!
//! NDL-rewritings of OWL 2 QL ontology-mediated queries, implementing the
//! three optimal rewritings of Bienvenu et al. (PODS 2017) plus baselines:
//!
//! * [`lin::LinRewriter`] — linear NDL for `OMQ(d, 1, ℓ)`, NL (§3.3);
//! * [`log::LogRewriter`] — skinny-reducible NDL for `OMQ(d, t, ∞)`,
//!   LOGCFL (§3.2);
//! * [`tw::TwRewriter`] — tree-witness NDL for `OMQ(∞, 1, ℓ)`, LOGCFL
//!   (§3.4);
//! * baselines standing in for the systems compared against in §6:
//!   [`presto::TwUcqRewriter`] (tree-witness UCQ ≈ Rapid/Clipper),
//!   [`presto::PrestoLikeRewriter`] (UCQ over views ≈ Presto) and
//!   [`ucq::UcqRewriter`] (raw PerfectRef).
//!
//! All rewriters produce rewritings over *complete* data instances; use
//! [`omq::rewrite_arbitrary`] to lift them to arbitrary instances via the
//! `*`-transformation (Lemma 3's linear variant when applicable).

/// Fault-injection shim: with the `faults` feature, tree-witness
/// enumeration calls [`obda_faults::inject`] at its registered site;
/// without it the site is an empty inline function the optimiser erases.
pub(crate) mod fault {
    #[cfg(feature = "faults")]
    pub use obda_faults::{inject, site};

    #[cfg(not(feature = "faults"))]
    #[inline(always)]
    pub fn inject(_site: &'static str) {}

    #[cfg(not(feature = "faults"))]
    pub mod site {
        pub const REWRITE_TREE_WITNESS: &str = "rewrite::tree_witness";
    }
}

pub mod lin;
pub mod log;
pub mod omq;
pub mod tree_witness;
pub mod tw;
pub mod types;

pub use lin::LinRewriter;
pub use log::LogRewriter;
pub use omq::{
    add_inconsistency_clauses, rewrite_arbitrary, rewrite_arbitrary_budgeted, Omq, RewriteError,
    Rewriter,
};
pub use tree_witness::{tree_witnesses, tree_witnesses_budgeted, TreeWitness};
pub use tw::TwRewriter;
pub mod ucq;
pub use ucq::UcqRewriter;
pub mod adaptive;
pub mod presto;
pub mod twstar;

pub use adaptive::{estimate_cost, AdaptiveRewriter, DataStats};
pub use presto::{PrestoLikeRewriter, TwUcqRewriter};
pub use twstar::inline_single_definitions;
