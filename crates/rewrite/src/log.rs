//! The `Log` rewriting (Section 3.2, Theorem 9): skinny-reducible
//! NDL-rewritings of OMQs from `OMQ(d, t, ∞)` — ontologies of finite depth
//! `d` with CQs of treewidth `t` — evaluable in LOGCFL.
//!
//! A tree decomposition of the CQ is split recursively via Lemma 10 into
//! the family `𝔇` of subtrees; a predicate `G^w_D(∂D, x_D)` per subtree `D`
//! and boundary type `w` asserts that the sub-CQ `q_D` matches with the
//! boundary variables placed as `w` prescribes. Each clause instantiates a
//! type `s` over the splitting bag `λ(σ(D))` and recurses into the subtrees
//! `D′ ≺ D`.

use crate::omq::{charge_clause, tick_rewrite, Omq, RewriteError, Rewriter};
use crate::types::{TypeCtx, TypeMap};
use obda_budget::Budget;
use obda_cq::gaifman::Gaifman;
use obda_cq::query::Var;
use obda_cq::split::{boundary, split_decomposition, SplitNode};
use obda_cq::treedec::TreeDecomposition;
use obda_ndl::program::{BodyAtom, CVar, Clause, NdlQuery, PredId, Program};
use obda_owlql::util::FxHashMap;
use obda_owlql::words::{ontology_depth, WordArena};

/// The `Log` rewriter. Requires a finite-depth ontology; works for CQs of
/// any shape (the achieved width depends on the query's treewidth).
#[derive(Debug, Clone, Copy)]
pub struct LogRewriter {
    /// Use the natural width-1 decomposition for tree-shaped queries
    /// (default); otherwise always run the min-fill heuristic.
    pub natural_tree_decomposition: bool,
}

impl Default for LogRewriter {
    fn default() -> Self {
        LogRewriter { natural_tree_decomposition: true }
    }
}

/// Precomputed facts about one subtree `D ∈ 𝔇`.
struct NodeInfo {
    /// The boundary variables `∂D`, sorted.
    boundary_vars: Vec<Var>,
    /// The answer variables `x_D` of `q_D`, sorted.
    answer_vars: Vec<Var>,
    /// Indices of child `SplitNode`s in the flattened pre-order numbering.
    children: Vec<usize>,
    /// The splitting bag `λ(σ(D))`, sorted.
    bag: Vec<Var>,
}

struct Builder<'a> {
    ctx: TypeCtx<'a>,
    info: Vec<NodeInfo>,
    program: Program,
    memo: FxHashMap<(usize, TypeMap), Option<PredId>>,
    arena_display: &'a WordArena,
    budget: &'a mut Budget,
}

impl Rewriter for LogRewriter {
    fn name(&self) -> &'static str {
        "Log"
    }

    fn rewrite_budgeted(
        &self,
        omq: &Omq<'_>,
        budget: &mut Budget,
    ) -> Result<NdlQuery, RewriteError> {
        let q = omq.query;
        let taxonomy = omq
            .ontology
            .taxonomy_budgeted(budget)
            .map_err(|e| RewriteError::from_budget(e, 0, 0))?;
        let Some(depth) = ontology_depth(&taxonomy) else {
            return Err(RewriteError::InfiniteDepth);
        };
        let arena = WordArena::new_budgeted(&taxonomy, depth, budget)
            .map_err(|e| RewriteError::from_budget(e, 0, 0))?;
        let ctx = TypeCtx { ontology: omq.ontology, taxonomy: &taxonomy, arena: &arena, q };

        let g = Gaifman::new(q);
        let td = if self.natural_tree_decomposition && g.is_tree() {
            TreeDecomposition::for_tree(q)
        } else {
            TreeDecomposition::min_fill(q)
        };
        let split = split_decomposition(td.num_nodes(), td.tree_adj());

        // Flatten the split tree in pre-order and precompute per-node facts.
        let flattened: Vec<&SplitNode> = split.iter();
        // Every node handed to `index_of` comes from `flattened` itself.
        #[allow(clippy::expect_used)]
        let index_of = |node: &SplitNode| -> usize {
            flattened.iter().position(|&n| std::ptr::eq(n, node)).expect("node from the same tree")
        };
        let mut info = Vec::with_capacity(flattened.len());
        for node in &flattened {
            // ∂D: bag-intersections with outside neighbours of boundary
            // tree-nodes.
            let mut in_d = vec![false; td.num_nodes()];
            for &t in &node.nodes {
                in_d[t] = true;
            }
            let mut bvars: Vec<Var> = Vec::new();
            for &t in boundary(td.tree_adj(), &in_d, &node.nodes).iter() {
                for &t2 in &td.tree_adj()[t] {
                    if !in_d[t2] {
                        for v in td.bag(t) {
                            if td.bag(t2).contains(v) {
                                bvars.push(*v);
                            }
                        }
                    }
                }
            }
            bvars.sort();
            bvars.dedup();
            // q_D and x_D: atoms inside bags of σ-nodes of the subtree.
            let mut qd_vars: Vec<Var> = Vec::new();
            for sub in node.iter() {
                let bag = td.bag(sub.sigma);
                for &atom in q.atoms() {
                    if atom.vars().all(|v| bag.contains(&v)) {
                        qd_vars.extend(atom.vars());
                    }
                }
            }
            qd_vars.sort();
            qd_vars.dedup();
            let answer_vars: Vec<Var> =
                qd_vars.iter().copied().filter(|&v| q.is_answer_var(v)).collect();
            let children: Vec<usize> = node.children.iter().map(&index_of).collect();
            let mut bag: Vec<Var> = td.bag(node.sigma).to_vec();
            bag.sort();
            info.push(NodeInfo { boundary_vars: bvars, answer_vars, children, bag });
        }

        let mut builder = Builder {
            ctx,
            info,
            program: Program::new(),
            memo: FxHashMap::default(),
            arena_display: &arena,
            budget,
        };

        // The root subtree is T itself with ∂T = ∅ and x_T = x; its
        // predicate is the goal.
        let root_pid = builder.generate(0, &TypeMap::empty(), omq)?;
        let goal = match root_pid {
            Some(p) => p,
            None => {
                // No derivation is possible at all: an empty goal predicate.
                builder.program.add_idb_with_params(
                    "G_unsat".to_owned(),
                    q.answer_vars().len(),
                    q.answer_vars().len(),
                )
            }
        };
        Ok(NdlQuery::new(builder.program, goal))
    }
}

impl Builder<'_> {
    /// Head variables of `G^w_D`: `∂D` then `x_D` (possibly overlapping).
    fn head_vars(&self, node: usize) -> Vec<Var> {
        let mut vars = self.info[node].boundary_vars.clone();
        vars.extend(self.info[node].answer_vars.iter().copied());
        vars
    }

    /// Generates (memoised) the predicate `G^w_D`, returning `Ok(None)`
    /// when no clause can define it and an error when the budget trips.
    fn generate(
        &mut self,
        node: usize,
        w: &TypeMap,
        omq: &Omq<'_>,
    ) -> Result<Option<PredId>, RewriteError> {
        if let Some(&cached) = self.memo.get(&(node, w.clone())) {
            return Ok(cached);
        }
        // Break potential reentrancy (there is none — the recursion follows
        // the finite split tree — but the memo entry also dedups names).
        self.memo.insert((node, w.clone()), None);

        let bag = self.info[node].bag.clone();
        let children = self.info[node].children.clone();
        let q = omq.query;
        let types = self.ctx.enumerate_types(&bag, w);
        let mut pid: Option<PredId> = None;
        for s in types {
            tick_rewrite(self.budget, &self.program)?;
            let union = s.union(&w.restrict_outside(&bag));
            // Resolve children first.
            let mut child_atoms: Vec<(PredId, Vec<Var>)> = Vec::new();
            let mut ok = true;
            for &c in &children {
                let cw = union.restrict(&self.info[c].boundary_vars);
                match self.generate(c, &cw, omq)? {
                    Some(cp) => child_atoms.push((cp, self.head_vars(c))),
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let heads = self.head_vars(node);
            let id = *pid.get_or_insert_with(|| {
                self.program.add_idb_with_params(
                    format!("L{}_{}", node, w.display(q, self.arena_display, omq.ontology)),
                    heads.len(),
                    self.info[node].answer_vars.len(),
                )
            });
            let clause = self.build_clause(id, &heads, &s, &child_atoms, omq);
            charge_clause(self.budget, &self.program)?;
            self.program.add_clause(clause);
        }
        self.memo.insert((node, w.clone()), pid);
        Ok(pid)
    }

    fn build_clause(
        &mut self,
        pid: PredId,
        head_vars: &[Var],
        s: &TypeMap,
        children: &[(PredId, Vec<Var>)],
        _omq: &Omq<'_>,
    ) -> Clause {
        let mut cvars: FxHashMap<Var, CVar> = FxHashMap::default();
        let mut next = 0u32;
        let alloc = |v: Var, cvars: &mut FxHashMap<Var, CVar>, next: &mut u32| -> CVar {
            *cvars.entry(v).or_insert_with(|| {
                let c = CVar(*next);
                *next += 1;
                c
            })
        };
        for &v in head_vars {
            alloc(v, &mut cvars, &mut next);
        }
        for (_, vars) in children {
            for &v in vars {
                alloc(v, &mut cvars, &mut next);
            }
        }
        for v in s.domain() {
            alloc(v, &mut cvars, &mut next);
        }
        let lookup = cvars.clone();
        let mut body = self.ctx.type_atoms(&mut self.program, s, &|v| lookup[&v]);
        for (cp, vars) in children {
            let args: Vec<CVar> = vars.iter().map(|&v| lookup[&v]).collect();
            body.push(BodyAtom::Pred(*cp, args));
        }
        let bound: Vec<CVar> = body.iter().flat_map(|a| a.vars()).collect();
        let top = self.program.edb_top();
        let head_args: Vec<CVar> = head_vars.iter().map(|&v| lookup[&v]).collect();
        for &c in &head_args {
            if !bound.contains(&c) {
                body.push(BodyAtom::Pred(top, vec![c]));
            }
        }
        if body.is_empty() {
            body.push(BodyAtom::Pred(top, vec![CVar(next)]));
            next += 1;
        }
        Clause { head: pid, head_args, body, num_vars: next }
    }
}

/// `TypeMap` helper used only here: the part of `w` outside `vars`.
trait RestrictOutside {
    fn restrict_outside(&self, vars: &[Var]) -> TypeMap;
}

impl RestrictOutside for TypeMap {
    fn restrict_outside(&self, vars: &[Var]) -> TypeMap {
        let outside: Vec<Var> = self.domain().filter(|v| !vars.contains(v)).collect();
        self.restrict(&outside)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omq::rewrite_arbitrary;
    use obda_chase::certain_answers;
    use obda_cq::parse_cq;
    use obda_ndl::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};

    fn example_11_ontology() -> obda_owlql::Ontology {
        parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap()
    }

    #[test]
    fn matches_oracle_on_example_8() {
        let o = example_11_ontology();
        let q = parse_cq(
            "q(x0, x7) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6), R(x6, x7)",
            &o,
        )
        .unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tx = o.taxonomy();
        let rw = rewrite_arbitrary(&LogRewriter::default(), &omq, &tx).unwrap();
        let d = parse_data("P(w1, a)\nR(a, b)\nP(w2, b)\nR(b, c)\nR(c, e)\nR(e, f)\nS(f, g)\n", &o)
            .unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
    }

    #[test]
    fn handles_cyclic_queries() {
        // Treewidth-2 query: a 4-cycle.
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             P SubPropertyOf R\n",
        )
        .unwrap();
        let q = parse_cq("q(x) :- R(x, y), R(y, z), R(z, w), R(w, x)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tx = o.taxonomy();
        let rw = rewrite_arbitrary(&LogRewriter::default(), &omq, &tx).unwrap();
        let d = parse_data("R(a, b)\nR(b, c)\nR(c, d)\nR(d, a)\nR(e, e)\n", &o).unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
        assert_eq!(res.answers.len(), 5); // a, b, c, d around the cycle + e
    }

    #[test]
    fn boolean_query_folding_into_tree() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf exists S\n\
             exists S- SubClassOf B\n",
        )
        .unwrap();
        let q = parse_cq("q() :- P(x, y), S(y, z), B(z)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tx = o.taxonomy();
        let rw = rewrite_arbitrary(&LogRewriter::default(), &omq, &tx).unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 1);
        let d2 = parse_data("B(b)\n", &o).unwrap();
        let res2 = evaluate(&rw, &d2, &EvalOptions::default()).unwrap();
        assert!(res2.answers.is_empty());
    }

    #[test]
    fn rejects_infinite_depth() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf exists P\n",
        )
        .unwrap();
        let q = parse_cq("q(x) :- P(x, y)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        assert_eq!(
            LogRewriter::default().rewrite_complete(&omq).unwrap_err(),
            RewriteError::InfiniteDepth
        );
    }
}
