//! Tree witnesses (Section 3.4, after Kikot, Kontchakov & Zakharyaschev, KR 2012).
//!
//! For an OMQ `Q(x) = (T, q(x))`, a pair `t = (t_r, t_i)` of disjoint
//! variable sets with `t_i ≠ ∅`, `t_i ∩ x = ∅` is a *tree witness generated
//! by ̺* if, with `q_t` the atoms of `q` having a variable in `t_i`, there
//! is a homomorphism `h : q_t → C_{T,{A̺(a)}}` with `h⁻¹(a) = t_r`.
//! Intuitively, `q_t` is a minimal part of `q` that can fold into the
//! anonymous subtree hanging below the individual the `t_r`-variables map
//! to.
//!
//! Tree witnesses are enumerated by growing connected sets of existential
//! variables (`t_i`); for tree-shaped CQs with `ℓ` leaves there are
//! `O(|q|^ℓ)` of them.

use crate::omq::Omq;
use obda_budget::{Budget, BudgetExceeded};
use obda_chase::homomorphism::HomSearch;
use obda_chase::model::{word_bound, CanonicalModel, Element};
use obda_cq::gaifman::Gaifman;
use obda_cq::query::{Atom, Cq, Var};
use obda_owlql::util::FxHashSet;
use obda_owlql::vocab::Role;
use std::collections::BTreeSet;

/// A tree witness with its generating roles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeWitness {
    /// The root variables `t_r` (mapped to an individual).
    pub roots: BTreeSet<Var>,
    /// The interior variables `t_i` (mapped to labelled nulls).
    pub interior: BTreeSet<Var>,
    /// The atom indices of `q_t` in the host query's atom list.
    pub atoms: BTreeSet<usize>,
    /// The roles `̺` generating the witness.
    pub generators: Vec<Role>,
}

/// Enumerates the connected subsets of existential variables of `q`
/// (within the Gaifman graph), up to `cap` subsets.
fn connected_existential_subsets(q: &Cq, cap: usize) -> Vec<BTreeSet<Var>> {
    let g = Gaifman::new(q);
    let existential: FxHashSet<Var> = q.existential_vars().collect();
    let mut seen: FxHashSet<BTreeSet<Var>> = FxHashSet::default();
    let mut queue: Vec<BTreeSet<Var>> = Vec::new();
    for &v in &existential {
        let s = BTreeSet::from([v]);
        if seen.insert(s.clone()) {
            queue.push(s);
        }
    }
    let mut i = 0;
    while i < queue.len() && queue.len() < cap {
        let s = queue[i].clone();
        i += 1;
        // Grow by one adjacent existential variable.
        let frontier: Vec<Var> = s
            .iter()
            .flat_map(|&v| g.neighbours(v))
            .filter(|v| existential.contains(v) && !s.contains(v))
            .collect();
        for v in frontier {
            let mut s2 = s.clone();
            s2.insert(v);
            if seen.insert(s2.clone()) {
                queue.push(s2);
            }
        }
    }
    queue
}

/// Builds the sub-CQ `q_t` as a standalone [`Cq`] whose answer variables are
/// `t_r`; returns it together with the variable correspondence
/// (host variable → sub-CQ variable).
fn build_qt(q: &Cq, atoms: &BTreeSet<usize>, roots: &BTreeSet<Var>) -> (Cq, Vec<(Var, Var)>) {
    let mut sub = Cq::new();
    let mut map: Vec<(Var, Var)> = Vec::new();
    let lookup = |sub: &mut Cq, map: &mut Vec<(Var, Var)>, v: Var, name: &str| -> Var {
        if let Some(&(_, sv)) = map.iter().find(|&&(hv, _)| hv == v) {
            return sv;
        }
        let sv = sub.var(name);
        map.push((v, sv));
        sv
    };
    // Answer variables first (t_r), in order.
    for &v in roots {
        let sv = lookup(&mut sub, &mut map, v, q.var_name(v));
        sub.add_answer_var(sv);
    }
    for &i in atoms {
        match q.atoms()[i] {
            Atom::Class(c, z) => {
                let sz = lookup(&mut sub, &mut map, z, q.var_name(z));
                sub.add_class_atom(c, sz);
            }
            Atom::Prop(p, z, z2) => {
                let sz = lookup(&mut sub, &mut map, z, q.var_name(z));
                let sz2 = lookup(&mut sub, &mut map, z2, q.var_name(z2));
                sub.add_prop_atom(p, sz, sz2);
            }
        }
    }
    (sub, map)
}

/// Enumerates all tree witnesses of the OMQ (with a safety cap on interior
/// candidates; the cap is generous for bounded-leaf queries).
pub fn tree_witnesses(omq: &Omq<'_>, cap: usize) -> Vec<TreeWitness> {
    match tree_witnesses_budgeted(omq, cap, &mut Budget::unlimited()) {
        Ok(tws) => tws,
        Err(_) => unreachable!("an unlimited budget never trips"),
    }
}

/// Budgeted [`tree_witnesses`]: the generator models' materialisation and
/// the folding homomorphism searches all draw on `budget`, so a cyclic
/// ontology whose anonymous subtrees are exponential trips the budget
/// instead of hanging the rewriter.
pub fn tree_witnesses_budgeted(
    omq: &Omq<'_>,
    cap: usize,
    budget: &mut Budget,
) -> Result<Vec<TreeWitness>, BudgetExceeded> {
    let q = omq.query;
    if q.existential_vars().next().is_none() {
        return Ok(Vec::new()); // no interior candidates, skip the models
    }
    let g = Gaifman::new(q);
    let taxonomy = omq.ontology.taxonomy();
    // One generator model per role, shared across all interior subsets
    // (the locality bound for the whole query covers every sub-CQ `q_t`).
    let bound = word_bound(&taxonomy, q.num_vars());
    let models: Vec<(Role, CanonicalModel)> = omq
        .ontology
        .vocab()
        .roles()
        .map(|role| {
            CanonicalModel::for_generator_budgeted(omq.ontology, role, bound, budget)
                .map(|m| (role, m))
                .map_err(|e| e.exceeded)
        })
        .collect::<Result<_, _>>()?;
    let mut out = Vec::new();
    for interior in connected_existential_subsets(q, cap) {
        crate::fault::inject(crate::fault::site::REWRITE_TREE_WITNESS);
        budget.tick()?;
        // t_r: outside neighbours of the interior.
        let roots: BTreeSet<Var> = interior
            .iter()
            .flat_map(|&v| g.neighbours(v))
            .filter(|v| !interior.contains(v))
            .collect();
        // q_t: atoms with a variable in the interior.
        let atoms: BTreeSet<usize> = (0..q.num_atoms())
            .filter(|&i| q.atoms()[i].vars().any(|v| interior.contains(&v)))
            .collect();
        let (qt, map) = build_qt(q, &atoms, &roots);
        let mut generators = Vec::new();
        for &(role, ref model) in &models {
            // `for_generator` seeds every model with the individual `a`.
            #[allow(clippy::expect_used)]
            let a =
                model.completed().get_constant("a").expect("generator model has the individual a");
            let null_vars: Vec<Var> =
                map.iter().filter(|&&(hv, _)| interior.contains(&hv)).map(|&(_, sv)| sv).collect();
            let fixed: Vec<(Var, Element)> = map
                .iter()
                .filter(|&&(hv, _)| roots.contains(&hv))
                .map(|&(_, sv)| (sv, Element::Const(a)))
                .collect();
            // Interior variables must start below a·̺ — i.e. map to nulls
            // of the generator model (whose anonymous part is exactly the
            // subtree below a·̺ and its `W_T`-continuations).
            let search = HomSearch::new(model, &qt).require_null(null_vars);
            if search.try_exists(&fixed, budget)? {
                generators.push(role);
            }
        }
        if !generators.is_empty() {
            out.push(TreeWitness { roots, interior, atoms, generators });
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_cq::parse_cq;
    use obda_owlql::parse_ontology;

    #[test]
    fn example_11_tree_witnesses() {
        // Ontology of Example 11; for the query R(x0,x1), S(x1,x2), R(x2,x3)
        // with answer x0, x3 there is a tree witness t with
        // t_i = {x1}, t_r = {x0, x2} generated by P⁻ (x1 maps to a·P⁻), and
        // one with t_i = {x2}, t_r = {x1, x3} generated by P.
        let o = parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap();
        let q = parse_cq("q(x0, x3) :- R(x0, x1), S(x1, x2), R(x2, x3)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tws = tree_witnesses(&omq, 1024);
        let x1 = q.get_var("x1").unwrap();
        let x2 = q.get_var("x2").unwrap();
        let p = obda_owlql::parser::resolve_role(o.vocab(), "P").unwrap();
        let t1 = tws
            .iter()
            .find(|t| t.interior == BTreeSet::from([x1]))
            .expect("tree witness with interior {x1}");
        assert!(t1.generators.contains(&p.inv()));
        assert_eq!(t1.roots, BTreeSet::from([q.get_var("x0").unwrap(), x2]));
        assert_eq!(t1.atoms.len(), 2); // R(x0,x1) and S(x1,x2)
        let t2 = tws
            .iter()
            .find(|t| t.interior == BTreeSet::from([x2]))
            .expect("tree witness with interior {x2}");
        assert!(t2.generators.contains(&p));
        // {x1, x2} cannot fold: the two-atom path S then R cannot sit in a
        // single anonymous subtree of this depth-1 ontology together with
        // both root edges.
        assert!(!tws.iter().any(|t| t.interior.len() == 2));
    }

    #[test]
    fn no_witness_without_existential_folding() {
        let o = parse_ontology("Class A\nProperty R\n").unwrap();
        let q = parse_cq("q(x) :- R(x, y), A(y)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        // No axiom generates an anonymous part, so no tree witness.
        assert!(tree_witnesses(&omq, 1024).is_empty());
    }

    #[test]
    fn deep_witness_with_unbounded_ontology() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf exists P\n",
        )
        .unwrap();
        let q = parse_cq("q(x) :- P(x, y), P(y, z)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tws = tree_witnesses(&omq, 1024);
        // {y,z} folds below x via generator P; {z} folds below y via P.
        let y = q.get_var("y").unwrap();
        let z = q.get_var("z").unwrap();
        assert!(tws.iter().any(|t| t.interior == BTreeSet::from([y, z])));
        assert!(tws.iter().any(|t| t.interior == BTreeSet::from([z])));
        // {y} alone is not a witness: q_t = both atoms, and z would also
        // need to map into the tree while being… actually z is existential
        // too, but z ∉ t_i means z ∈ t_r maps to the root individual, and
        // P(y, z) cannot point back at the root.
        assert!(!tws.iter().any(|t| t.interior == BTreeSet::from([y])));
    }
}
