//! An adaptive, cost-guided splitting strategy (the future-work direction
//! sketched in Section 6).
//!
//! Section 6 observes that none of the three splitting strategies (`Lin`,
//! `Log`, `Tw`) systematically outperforms the others, and suggests picking
//! the rewriting by a cost function estimated from data statistics, like a
//! relational query planner. [`AdaptiveRewriter`] implements the simplest
//! instance of that idea: it runs every applicable strategy, estimates the
//! materialisation cost of each produced program against per-predicate
//! cardinality statistics, and returns the cheapest program.

use crate::lin::LinRewriter;
use crate::log::LogRewriter;
use crate::omq::{Omq, RewriteError, Rewriter};
use crate::tw::TwRewriter;
use crate::twstar::inline_single_definitions;
use obda_budget::Budget;
use obda_ndl::analysis::topological_order;
use obda_ndl::program::{BodyAtom, NdlQuery, PredId, PredKind};
use obda_owlql::abox::DataInstance;
use obda_owlql::util::FxHashMap;

/// Per-predicate cardinality statistics used by the cost model.
#[derive(Debug, Clone, Default)]
pub struct DataStats {
    /// Number of individuals (active-domain size).
    pub domain_size: usize,
    /// Facts per class.
    pub class_counts: FxHashMap<obda_owlql::ClassId, usize>,
    /// Facts per property.
    pub prop_counts: FxHashMap<obda_owlql::PropId, usize>,
}

impl DataStats {
    /// Collects statistics from a data instance.
    pub fn of(data: &DataInstance) -> Self {
        let mut stats = DataStats { domain_size: data.num_individuals(), ..Default::default() };
        for (c, _) in data.class_atoms() {
            *stats.class_counts.entry(c).or_insert(0) += 1;
        }
        for (p, _, _) in data.prop_atoms() {
            *stats.prop_counts.entry(p).or_insert(0) += 1;
        }
        stats
    }

    fn edb_estimate(&self, kind: PredKind) -> f64 {
        match kind {
            PredKind::EdbClass(c) => *self.class_counts.get(&c).unwrap_or(&0) as f64,
            PredKind::EdbProp(p) => *self.prop_counts.get(&p).unwrap_or(&0) as f64,
            PredKind::Top => self.domain_size as f64,
            PredKind::Idb => unreachable!("IDB sizes are estimated, not looked up"),
        }
    }
}

/// Estimates the total number of tuples a naive materialising engine
/// produces for the program: per clause, the product of the body relations'
/// estimated sizes scaled by a join-selectivity factor per shared variable;
/// IDB estimates are propagated in dependency order.
pub fn estimate_cost(query: &NdlQuery, stats: &DataStats) -> f64 {
    let Some(order) = topological_order(&query.program) else {
        return f64::INFINITY;
    };
    let selectivity = 1.0 / (stats.domain_size.max(2) as f64);
    let mut sizes: FxHashMap<PredId, f64> = FxHashMap::default();
    let mut total = 0.0f64;
    for p in order {
        let mut estimate = 0.0f64;
        for clause in query.program.clauses_for(p) {
            let mut clause_size = 1.0f64;
            let mut seen_vars: Vec<obda_ndl::program::CVar> = Vec::new();
            for atom in &clause.body {
                match atom {
                    BodyAtom::Pred(q, args) => {
                        let base = if query.program.is_idb(*q) {
                            sizes.get(q).copied().unwrap_or(0.0)
                        } else {
                            stats.edb_estimate(query.program.pred(*q).kind)
                        };
                        clause_size *= base.max(1.0);
                        for &v in args {
                            if seen_vars.contains(&v) {
                                clause_size *= selectivity;
                            } else {
                                seen_vars.push(v);
                            }
                        }
                    }
                    BodyAtom::Eq(a, b) => {
                        if seen_vars.contains(a) && seen_vars.contains(b) {
                            clause_size *= selectivity;
                        }
                        for &v in [a, b] {
                            if !seen_vars.contains(&v) {
                                seen_vars.push(v);
                            }
                        }
                    }
                    BodyAtom::EqConst(a, _) => {
                        // Pinning a variable to one constant filters like a
                        // join on an already-seen variable.
                        if seen_vars.contains(a) {
                            clause_size *= selectivity;
                        } else {
                            seen_vars.push(*a);
                        }
                    }
                }
            }
            estimate += clause_size;
        }
        sizes.insert(p, estimate);
        total += estimate;
    }
    total
}

/// The adaptive rewriter: runs every applicable fixed strategy (optionally
/// followed by the `Tw*` inlining pass) and keeps the cheapest program under
/// the cost model.
#[derive(Debug, Clone, Default)]
pub struct AdaptiveRewriter {
    /// Statistics for the target data (empty stats fall back to structural
    /// cost, effectively preferring smaller programs).
    pub stats: DataStats,
}

impl AdaptiveRewriter {
    /// Rewrites and reports which strategy won.
    pub fn rewrite_with_report(
        &self,
        omq: &Omq<'_>,
    ) -> Result<(NdlQuery, &'static str, f64), RewriteError> {
        self.rewrite_with_report_budgeted(omq, &mut Budget::unlimited())
    }

    /// Budgeted [`Self::rewrite_with_report`]: each candidate strategy draws
    /// on a renewed copy of the budget (same deadline, fresh counters), so a
    /// blow-up in one strategy cannot starve the others; a budget trip in
    /// one candidate counts as that candidate failing, and only if *every*
    /// candidate fails is the last error returned.
    pub fn rewrite_with_report_budgeted(
        &self,
        omq: &Omq<'_>,
        budget: &mut Budget,
    ) -> Result<(NdlQuery, &'static str, f64), RewriteError> {
        type Attempt = fn(&Omq<'_>, &mut Budget) -> Result<NdlQuery, RewriteError>;
        let candidates: [(&'static str, Attempt); 4] = [
            ("Lin", |omq, b| LinRewriter::default().rewrite_budgeted(omq, b)),
            ("Log", |omq, b| LogRewriter::default().rewrite_budgeted(omq, b)),
            ("Tw", |omq, b| TwRewriter::default().rewrite_budgeted(omq, b)),
            ("Tw*", |omq, b| {
                TwRewriter::default()
                    .rewrite_budgeted(omq, b)
                    .map(|q| inline_single_definitions(&q, 2))
            }),
        ];
        let mut best: Option<(NdlQuery, &'static str, f64)> = None;
        let mut last_err = RewriteError::NotTreeShaped;
        for (name, attempt) in candidates {
            let mut candidate_budget = budget.renew();
            match attempt(omq, &mut candidate_budget) {
                Ok(q) => {
                    let cost = estimate_cost(&q, &self.stats);
                    if best.as_ref().is_none_or(|(_, _, c)| cost < *c) {
                        best = Some((q, name, cost));
                    }
                }
                Err(e) => last_err = e,
            }
        }
        best.ok_or(last_err)
    }
}

impl Rewriter for AdaptiveRewriter {
    fn name(&self) -> &'static str {
        "Adaptive"
    }

    fn rewrite_budgeted(
        &self,
        omq: &Omq<'_>,
        budget: &mut Budget,
    ) -> Result<NdlQuery, RewriteError> {
        self.rewrite_with_report_budgeted(omq, budget).map(|(q, _, _)| q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_chase::certain_answers;
    use obda_cq::parse_cq;
    use obda_ndl::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};

    #[test]
    fn picks_a_strategy_and_stays_correct() {
        let o = parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap();
        let q = parse_cq("q(x0, x3) :- R(x0, x1), S(x1, x2), R(x2, x3)", &o).unwrap();
        let d = parse_data("P(w, a)\nR(a, b)\nR(b, c)\nS(c, d)\nR(d, e)\n", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let adaptive = AdaptiveRewriter { stats: DataStats::of(&d) };
        let (rw, winner, cost) = adaptive.rewrite_with_report(&omq).unwrap();
        assert!(cost.is_finite());
        assert!(["Lin", "Log", "Tw", "Tw*"].contains(&winner));
        let tx = o.taxonomy();
        let res = evaluate(&rw, &d.complete(&tx), &EvalOptions::default()).unwrap();
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
    }

    #[test]
    fn falls_back_to_tw_for_infinite_depth() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf exists P\n",
        )
        .unwrap();
        let q = parse_cq("q(x) :- P(x, y), P(y, z)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let adaptive = AdaptiveRewriter::default();
        let (_, winner, _) = adaptive.rewrite_with_report(&omq).unwrap();
        assert!(winner == "Tw" || winner == "Tw*", "Lin/Log cannot handle infinite depth");
    }

    #[test]
    fn cost_scales_with_data() {
        let o = parse_ontology("Class A\nProperty R\n").unwrap();
        let q = parse_cq("q(x) :- R(x, y), A(y)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let rw = TwRewriter::default().rewrite_complete(&omq).unwrap();
        let small = DataStats {
            domain_size: 10,
            class_counts: [(o.vocab().get_class("A").unwrap(), 5)].into_iter().collect(),
            prop_counts: [(o.vocab().get_prop("R").unwrap(), 10)].into_iter().collect(),
        };
        let big = DataStats {
            domain_size: 10,
            class_counts: [(o.vocab().get_class("A").unwrap(), 500)].into_iter().collect(),
            prop_counts: [(o.vocab().get_prop("R").unwrap(), 1000)].into_iter().collect(),
        };
        assert!(estimate_cost(&rw, &big) > estimate_cost(&rw, &small));
    }
}
