//! A Presto-style NDL baseline: the tree-witness UCQ over atom views.
//!
//! Presto (Rosati & Almatelli, 2010) factors atom-level rewritings into
//! nonrecursive view predicates but still enumerates exponentially many top
//! clauses on the paper's `OMQ(1,1,2)` sequences — the behaviour the
//! `Presto` bars of Figure 2 document. We reproduce that shape with the
//! classical *tree-witness UCQ* of Kikot, Kontchakov & Zakharyaschev
//! (KR 2012) factored through views:
//!
//! * a view predicate `V_S` per data predicate `S`, defined by the atoms
//!   that imply `S` under `T` (so the program evaluates over arbitrary
//!   instances);
//! * a predicate `W_t` per tree witness `t`, one clause per generator `̺`:
//!   `W_t(t_r) ← A̺(z₀) ∧ (z = z₀ …)`;
//! * one top clause per **independent set** `Θ` of compatible tree
//!   witnesses: `G(x) ← ⋀_{t∈Θ} W_t ∧ ⋀_{uncovered atoms} V_S`.
//!
//! Boolean queries additionally get the fully-anonymous clauses
//! `G ← A(z)` for `T, {A(a)} ⊨ q`.

use crate::omq::{charge_clause, tick_rewrite, Omq, RewriteError, Rewriter};
use crate::tree_witness::{tree_witnesses_budgeted, TreeWitness};
use obda_budget::Budget;
use obda_chase::answer::{certain_answers_budgeted, CertainAnswers};
use obda_cq::query::{Atom, Var};
use obda_ndl::program::{BodyAtom, CVar, Clause, NdlQuery, PredId, PredKind, Program};
use obda_owlql::axiom::ClassExpr;
use obda_owlql::util::FxHashMap;
use obda_owlql::vocab::Role;
use std::collections::BTreeSet;

/// The Presto-like rewriter (tree-witness UCQ over views).
#[derive(Debug, Clone, Copy)]
pub struct PrestoLikeRewriter {
    /// Abort with [`RewriteError::TooLarge`] past this many clauses.
    pub cap: usize,
}

impl Default for PrestoLikeRewriter {
    fn default() -> Self {
        PrestoLikeRewriter { cap: 100_000 }
    }
}

/// The pure tree-witness **UCQ** rewriter over complete data instances
/// (Kikot, Kontchakov & Zakharyaschev, KR 2012): one clause per independent
/// set of tree witnesses and per combination of their generators, with
/// uncovered atoms kept as plain data atoms. On the Appendix A.6 example it
/// produces exactly the 9 CQs of A.6.1; it is the stand-in for the
/// optimised UCQ engines (Rapid, Clipper) in the Figure 2 experiment.
#[derive(Debug, Clone, Copy)]
pub struct TwUcqRewriter {
    /// Abort with [`RewriteError::TooLarge`] past this many clauses.
    pub cap: usize,
}

impl Default for TwUcqRewriter {
    fn default() -> Self {
        TwUcqRewriter { cap: 100_000 }
    }
}

impl Rewriter for TwUcqRewriter {
    fn name(&self) -> &'static str {
        "TwUCQ"
    }

    fn rewrite_budgeted(
        &self,
        omq: &Omq<'_>,
        budget: &mut Budget,
    ) -> Result<NdlQuery, RewriteError> {
        let q = omq.query;
        let vocab = omq.ontology.vocab();
        let mut program = Program::new();
        let num_answer = q.answer_vars().len();
        let goal = program.add_idb_with_params("G", num_answer, num_answer);

        let tws: Vec<TreeWitness> = tree_witnesses_budgeted(omq, self.cap, budget)
            .map_err(|e| {
                RewriteError::from_budget(
                    e,
                    program.num_clauses(),
                    program.clauses().iter().map(|c| c.body.len()).sum(),
                )
            })?
            .into_iter()
            .filter(|t| !t.roots.is_empty())
            .collect();

        // Enumerate independent sets, then all generator combinations.
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(0, Vec::new())];
        let mut emitted = 0usize;
        while let Some((from, chosen)) = stack.pop() {
            let chosen_tws: Vec<&TreeWitness> = chosen.iter().map(|&i| &tws[i]).collect();
            let mut combo = vec![0usize; chosen.len()];
            loop {
                emitted += 1;
                if emitted > self.cap {
                    return Err(RewriteError::TooLarge(self.cap));
                }
                charge_clause(budget, &program)?;
                emit_ucq_clause(&mut program, goal, omq, &chosen_tws, &combo);
                // Next generator combination (odometer).
                let mut pos = 0;
                while pos < combo.len() {
                    combo[pos] += 1;
                    if combo[pos] < chosen_tws[pos].generators.len() {
                        break;
                    }
                    combo[pos] = 0;
                    pos += 1;
                }
                if pos == combo.len() {
                    break;
                }
            }
            for next in from..tws.len() {
                let compatible = chosen
                    .iter()
                    .all(|&j| tws[j].atoms.intersection(&tws[next].atoms).next().is_none());
                if compatible {
                    let mut c2 = chosen.clone();
                    c2.push(next);
                    stack.push((next + 1, c2));
                }
            }
        }

        if q.is_boolean() {
            for class in vocab.class_ids().collect::<Vec<_>>() {
                tick_rewrite(budget, &program)?;
                let mut data = obda_owlql::DataInstance::new();
                let a = data.constant("a");
                data.add_class_atom(class, a);
                let entailed =
                    certain_answers_budgeted(omq.ontology, q, &data, budget).map_err(|e| {
                        let clauses = program.clauses().len();
                        let atoms = program.clauses().iter().map(|c| c.body.len()).sum();
                        RewriteError::from_budget(e.exceeded, clauses, atoms)
                    })?;
                if entailed == CertainAnswers::Boolean(true) {
                    charge_clause(budget, &program)?;
                    let p = program.edb_class(class, vocab);
                    program.add_clause(Clause {
                        head: goal,
                        head_args: vec![],
                        body: vec![BodyAtom::Pred(p, vec![CVar(0)])],
                        num_vars: 1,
                    });
                }
            }
        }
        Ok(NdlQuery::new(program, goal))
    }
}

/// Emits one UCQ clause: uncovered atoms as data atoms; each chosen tree
/// witness contributes `A̺(z₀)` (for the combination's generator) plus root
/// equalities.
fn emit_ucq_clause(
    program: &mut Program,
    goal: PredId,
    omq: &Omq<'_>,
    chosen: &[&TreeWitness],
    combo: &[usize],
) {
    let q = omq.query;
    let vocab = omq.ontology.vocab().clone();
    let covered: BTreeSet<usize> = chosen.iter().flat_map(|t| t.atoms.iter().copied()).collect();
    let mut cvars: FxHashMap<Var, CVar> = FxHashMap::default();
    let mut next = 0u32;
    let alloc = |v: Var, cvars: &mut FxHashMap<Var, CVar>, next: &mut u32| -> CVar {
        *cvars.entry(v).or_insert_with(|| {
            let c = CVar(*next);
            *next += 1;
            c
        })
    };
    for &v in q.answer_vars() {
        alloc(v, &mut cvars, &mut next);
    }
    let mut body = Vec::new();
    for (i, &atom) in q.atoms().iter().enumerate() {
        if covered.contains(&i) {
            continue;
        }
        match atom {
            Atom::Class(c, z) => {
                let cz = alloc(z, &mut cvars, &mut next);
                let p = program.edb_class(c, &vocab);
                body.push(BodyAtom::Pred(p, vec![cz]));
            }
            Atom::Prop(p, z, z2) => {
                let cz = alloc(z, &mut cvars, &mut next);
                let cz2 = alloc(z2, &mut cvars, &mut next);
                let pe = program.edb_prop(p, &vocab);
                body.push(BodyAtom::Pred(pe, vec![cz, cz2]));
            }
        }
    }
    for (t, &gen_idx) in chosen.iter().zip(combo) {
        let rho = t.generators[gen_idx];
        let a_rho = omq.ontology.exists_class(rho);
        let p = program.edb_class(a_rho, &vocab);
        let mut roots = t.roots.iter();
        // Root-less witnesses are filtered out at collection time.
        #[allow(clippy::expect_used)]
        let z0 = *roots.next().expect("t_r nonempty");
        let cz0 = alloc(z0, &mut cvars, &mut next);
        body.push(BodyAtom::Pred(p, vec![cz0]));
        for &z in roots {
            let cz = alloc(z, &mut cvars, &mut next);
            body.push(BodyAtom::Eq(cz, cz0));
        }
    }
    let bound: Vec<CVar> = body.iter().flat_map(|a| a.vars()).collect();
    let head_args: Vec<CVar> = q.answer_vars().iter().map(|&v| cvars[&v]).collect();
    if body.is_empty() || head_args.iter().any(|c| !bound.contains(c)) {
        return;
    }
    program.add_clause(Clause { head: goal, head_args, body, num_vars: next });
}

impl Rewriter for PrestoLikeRewriter {
    fn name(&self) -> &'static str {
        "PrestoLike"
    }

    fn rewrite_budgeted(
        &self,
        omq: &Omq<'_>,
        budget: &mut Budget,
    ) -> Result<NdlQuery, RewriteError> {
        // The views make the program a rewriting over arbitrary instances,
        // hence in particular over complete ones.
        let q = omq.query;
        let taxonomy = omq
            .ontology
            .taxonomy_budgeted(budget)
            .map_err(|e| RewriteError::from_budget(e, 0, 0))?;
        let vocab = omq.ontology.vocab();
        let mut program = Program::new();
        let num_answer = q.answer_vars().len();
        let goal = program.add_idb_with_params("G", num_answer, num_answer);

        // Views: V_A(x) / V_P(x, y) from the implying atoms.
        let mut class_views: FxHashMap<obda_owlql::ClassId, PredId> = FxHashMap::default();
        let mut prop_views: FxHashMap<obda_owlql::PropId, PredId> = FxHashMap::default();
        let used_classes: BTreeSet<_> = q
            .atoms()
            .iter()
            .filter_map(|a| match a {
                Atom::Class(c, _) => Some(*c),
                _ => None,
            })
            .collect();
        let used_props: BTreeSet<_> = q
            .atoms()
            .iter()
            .filter_map(|a| match a {
                Atom::Prop(p, _, _) => Some(*p),
                _ => None,
            })
            .collect();

        // Tree-witness predicates also consult the generator classes A̺,
        // which must be derived over arbitrary instances — route them
        // through views as well.
        let tws: Vec<TreeWitness> = tree_witnesses_budgeted(omq, self.cap, budget)
            .map_err(|e| {
                RewriteError::from_budget(
                    e,
                    program.num_clauses(),
                    program.clauses().iter().map(|c| c.body.len()).sum(),
                )
            })?
            .into_iter()
            .filter(|t| !t.roots.is_empty())
            .collect();
        let mut used_classes = used_classes;
        for t in &tws {
            for &rho in &t.generators {
                used_classes.insert(omq.ontology.exists_class(rho));
            }
        }

        for c in used_classes {
            let view = program.add_pred(format!("V_{}", vocab.class_name(c)), 1, PredKind::Idb);
            class_views.insert(c, view);
            for sub in taxonomy.sub_classes(ClassExpr::Class(c)).collect::<Vec<_>>() {
                let (body, num_vars) = match sub {
                    ClassExpr::Class(b) => {
                        let p = program.edb_class(b, vocab);
                        (vec![BodyAtom::Pred(p, vec![CVar(0)])], 1)
                    }
                    ClassExpr::Exists(r) => {
                        (vec![program.role_atom(r, CVar(0), CVar(1), vocab)], 2)
                    }
                    ClassExpr::Top => continue,
                };
                charge_clause(budget, &program)?;
                program.add_clause(Clause { head: view, head_args: vec![CVar(0)], body, num_vars });
            }
        }
        for p in used_props {
            let view = program.add_pred(format!("V_{}", vocab.prop_name(p)), 2, PredKind::Idb);
            prop_views.insert(p, view);
            for sub in taxonomy.sub_roles(Role::direct(p)).collect::<Vec<_>>() {
                let body = vec![program.role_atom(sub, CVar(0), CVar(1), vocab)];
                charge_clause(budget, &program)?;
                program.add_clause(Clause {
                    head: view,
                    head_args: vec![CVar(0), CVar(1)],
                    body,
                    num_vars: 2,
                });
            }
            if taxonomy.is_reflexive(Role::direct(p)) {
                let top = program.edb_top();
                program.add_clause(Clause {
                    head: view,
                    head_args: vec![CVar(0), CVar(1)],
                    body: vec![BodyAtom::Pred(top, vec![CVar(0)]), BodyAtom::Eq(CVar(0), CVar(1))],
                    num_vars: 2,
                });
            }
        }

        // Tree-witness predicates W_t.
        let mut tw_preds: Vec<(PredId, Vec<Var>)> = Vec::new();
        for (i, t) in tws.iter().enumerate() {
            let roots: Vec<Var> = t.roots.iter().copied().collect();
            let w = program.add_pred(format!("W{i}"), roots.len(), PredKind::Idb);
            let z0 = 0usize; // first root position
            for &rho in &t.generators {
                let a_rho = omq.ontology.exists_class(rho);
                let p = class_views[&a_rho];
                let mut body = vec![BodyAtom::Pred(p, vec![CVar(z0 as u32)])];
                for k in 1..roots.len() {
                    body.push(BodyAtom::Eq(CVar(k as u32), CVar(z0 as u32)));
                }
                charge_clause(budget, &program)?;
                program.add_clause(Clause {
                    head: w,
                    head_args: (0..roots.len() as u32).map(CVar).collect(),
                    body,
                    num_vars: roots.len() as u32,
                });
            }
            tw_preds.push((w, roots));
        }

        // Independent sets of tree witnesses (pairwise disjoint atom sets),
        // one top clause each.
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(0, Vec::new())];
        let mut emitted = 0usize;
        while let Some((from, chosen)) = stack.pop() {
            // Emit the clause for `chosen`.
            emitted += 1;
            if emitted > self.cap {
                return Err(RewriteError::TooLarge(self.cap));
            }
            charge_clause(budget, &program)?;
            self.emit_top_clause(
                &mut program,
                goal,
                omq,
                &chosen.iter().map(|&i| &tws[i]).collect::<Vec<_>>(),
                &chosen.iter().map(|&i| tw_preds[i].clone()).collect::<Vec<_>>(),
                &class_views,
                &prop_views,
            );
            for next in from..tws.len() {
                let compatible = chosen
                    .iter()
                    .all(|&j| tws[j].atoms.intersection(&tws[next].atoms).next().is_none());
                if compatible {
                    let mut c2 = chosen.clone();
                    c2.push(next);
                    stack.push((next + 1, c2));
                }
            }
        }

        // Boolean fully-anonymous matches.
        if q.is_boolean() {
            for class in vocab.class_ids().collect::<Vec<_>>() {
                tick_rewrite(budget, &program)?;
                let mut data = obda_owlql::DataInstance::new();
                let a = data.constant("a");
                data.add_class_atom(class, a);
                let entailed =
                    certain_answers_budgeted(omq.ontology, q, &data, budget).map_err(|e| {
                        let clauses = program.clauses().len();
                        let atoms = program.clauses().iter().map(|c| c.body.len()).sum();
                        RewriteError::from_budget(e.exceeded, clauses, atoms)
                    })?;
                if entailed == CertainAnswers::Boolean(true) {
                    charge_clause(budget, &program)?;
                    let p = program.edb_class(class, vocab);
                    program.add_clause(Clause {
                        head: goal,
                        head_args: vec![],
                        body: vec![BodyAtom::Pred(p, vec![CVar(0)])],
                        num_vars: 1,
                    });
                }
            }
        }

        Ok(NdlQuery::new(program, goal))
    }
}

impl PrestoLikeRewriter {
    #[allow(clippy::too_many_arguments)]
    fn emit_top_clause(
        &self,
        program: &mut Program,
        goal: PredId,
        omq: &Omq<'_>,
        chosen: &[&TreeWitness],
        chosen_preds: &[(PredId, Vec<Var>)],
        class_views: &FxHashMap<obda_owlql::ClassId, PredId>,
        prop_views: &FxHashMap<obda_owlql::PropId, PredId>,
    ) {
        let q = omq.query;
        let covered: BTreeSet<usize> =
            chosen.iter().flat_map(|t| t.atoms.iter().copied()).collect();
        let mut cvars: FxHashMap<Var, CVar> = FxHashMap::default();
        let mut next = 0u32;
        let alloc = |v: Var, cvars: &mut FxHashMap<Var, CVar>, next: &mut u32| -> CVar {
            *cvars.entry(v).or_insert_with(|| {
                let c = CVar(*next);
                *next += 1;
                c
            })
        };
        for &v in q.answer_vars() {
            alloc(v, &mut cvars, &mut next);
        }
        let mut body = Vec::new();
        for (i, &atom) in q.atoms().iter().enumerate() {
            if covered.contains(&i) {
                continue;
            }
            match atom {
                Atom::Class(c, z) => {
                    let cz = alloc(z, &mut cvars, &mut next);
                    body.push(BodyAtom::Pred(class_views[&c], vec![cz]));
                }
                Atom::Prop(p, z, z2) => {
                    let cz = alloc(z, &mut cvars, &mut next);
                    let cz2 = alloc(z2, &mut cvars, &mut next);
                    body.push(BodyAtom::Pred(prop_views[&p], vec![cz, cz2]));
                }
            }
        }
        for (w, roots) in chosen_preds {
            let args: Vec<CVar> = roots.iter().map(|&v| alloc(v, &mut cvars, &mut next)).collect();
            body.push(BodyAtom::Pred(*w, args));
        }
        // Every answer variable must be bound: tree-witness interiors never
        // contain answer variables, so each answer variable occurs in an
        // uncovered atom or as a tree-witness root.
        let bound: Vec<CVar> = body.iter().flat_map(|a| a.vars()).collect();
        let head_args: Vec<CVar> = q.answer_vars().iter().map(|&v| cvars[&v]).collect();
        if (body.is_empty() || head_args.iter().any(|c| !bound.contains(c)))
            && (!q.is_boolean() || body.is_empty())
        {
            return; // degenerate combination, contributes nothing new
        }
        program.add_clause(Clause { head: goal, head_args, body, num_vars: next });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_chase::certain_answers;
    use obda_cq::parse_cq;
    use obda_ndl::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};

    fn example_11_ontology() -> obda_owlql::Ontology {
        parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap()
    }

    #[test]
    fn matches_oracle() {
        let o = example_11_ontology();
        let q = parse_cq(
            "q(x0, x7) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6), R(x6, x7)",
            &o,
        )
        .unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let rw = PrestoLikeRewriter::default().rewrite_complete(&omq).unwrap();
        let d = parse_data("P(w1, a)\nR(a, b)\nP(w2, b)\nR(b, c)\nR(c, e)\nR(e, f)\nS(f, g)\n", &o)
            .unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
        assert!(!res.answers.is_empty());
    }

    #[test]
    fn top_clauses_grow_with_witness_count() {
        let o = example_11_ontology();
        let short = parse_cq("q(x0, x3) :- R(x0, x1), S(x1, x2), R(x2, x3)", &o).unwrap();
        let long = parse_cq(
            "q(x0, x6) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6)",
            &o,
        )
        .unwrap();
        let n_short = PrestoLikeRewriter::default()
            .rewrite_complete(&Omq { ontology: &o, query: &short })
            .unwrap()
            .program
            .num_clauses();
        let n_long = PrestoLikeRewriter::default()
            .rewrite_complete(&Omq { ontology: &o, query: &long })
            .unwrap()
            .program
            .num_clauses();
        assert!(n_long > n_short, "{n_long} vs {n_short}");
    }

    #[test]
    fn boolean_query() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf B\n",
        )
        .unwrap();
        let q = parse_cq("q() :- P(x, y), B(y)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let rw = PrestoLikeRewriter::default().rewrite_complete(&omq).unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 1);
    }
}

#[cfg(test)]
mod tw_ucq_tests {
    use super::*;
    use obda_chase::certain_answers;
    use obda_cq::parse_cq;
    use obda_ndl::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};

    #[test]
    fn reproduces_the_nine_cqs_of_appendix_a61() {
        let o = parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap();
        let q = parse_cq(
            "q(x0, x7) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6), R(x6, x7)",
            &o,
        )
        .unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let rw = TwUcqRewriter::default().rewrite_complete(&omq).unwrap();
        assert_eq!(rw.program.num_clauses(), 9, "Appendix A.6.1 lists exactly 9 CQs");
    }

    #[test]
    fn matches_oracle_over_completed_data() {
        let o = parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap();
        let q = parse_cq("q(x0, x3) :- R(x0, x1), S(x1, x2), R(x2, x3)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let rw = TwUcqRewriter::default().rewrite_complete(&omq).unwrap();
        let d = parse_data("P(w1, a)\nR(a, b)\nP(b, c)\nS(c, d)\n", &o).unwrap();
        let tx = o.taxonomy();
        let res = evaluate(&rw, &d.complete(&tx), &EvalOptions::default()).unwrap();
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
    }
}
