//! Ontology-mediated queries and the rewriter interface.

use obda_budget::{Budget, BudgetExceeded};
use obda_cq::query::Cq;
use obda_ndl::program::{BodyAtom, CVar, Clause, NdlQuery, Program};
use obda_ndl::star::{linear_star_transform, star_transform};
use obda_owlql::axiom::ClassExpr;
use obda_owlql::ontology::Ontology;
use obda_owlql::saturation::Taxonomy;
use obda_owlql::vocab::Role;
use std::fmt;

/// An ontology-mediated query `Q(x) = (T, q(x))`.
#[derive(Debug, Clone, Copy)]
pub struct Omq<'a> {
    /// The ontology `T` (normalised).
    pub ontology: &'a Ontology,
    /// The CQ `q(x)`.
    pub query: &'a Cq,
}

/// Why a rewriter refused an OMQ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The rewriter requires a tree-shaped CQ.
    NotTreeShaped,
    /// The rewriter requires a connected CQ.
    NotConnected,
    /// The rewriter requires an ontology of finite depth.
    InfiniteDepth,
    /// A resource cap was exceeded (the baseline rewriters blow up
    /// exponentially by design).
    TooLarge(usize),
    /// The shared pipeline [`Budget`] tripped mid-rewriting; carries the
    /// partial size of the rewriting built so far.
    BudgetExceeded {
        /// The budget trip that interrupted the rewriter.
        exceeded: BudgetExceeded,
        /// Clauses emitted before the trip.
        clauses: usize,
        /// Body atoms emitted before the trip.
        atoms: usize,
    },
}

impl RewriteError {
    /// Wraps a budget trip together with the partial size of the rewriting
    /// at the moment it was interrupted.
    pub fn from_budget(exceeded: BudgetExceeded, clauses: usize, atoms: usize) -> Self {
        RewriteError::BudgetExceeded { exceeded, clauses, atoms }
    }

    /// Whether this error is a budget/resource trip (as opposed to a
    /// structural refusal such as a non-tree-shaped query).
    pub fn is_budget(&self) -> bool {
        matches!(self, RewriteError::TooLarge(_) | RewriteError::BudgetExceeded { .. })
    }
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::NotTreeShaped => write!(f, "query is not tree-shaped"),
            RewriteError::NotConnected => write!(f, "query is not connected"),
            RewriteError::InfiniteDepth => write!(f, "ontology has infinite depth"),
            RewriteError::TooLarge(n) => write!(f, "rewriting exceeded the cap of {n} clauses"),
            RewriteError::BudgetExceeded { exceeded, clauses, atoms } => write!(
                f,
                "rewriting interrupted after {clauses} clauses / {atoms} atoms: {exceeded}"
            ),
        }
    }
}

impl std::error::Error for RewriteError {}

/// A rewriter producing NDL-rewritings over **complete** data instances.
///
/// Use [`rewrite_arbitrary`] to obtain a rewriting over arbitrary instances
/// via the `*`-transformation (Lemma 3's linear variant is applied when the
/// produced program is linear, preserving the NL evaluation bound).
pub trait Rewriter {
    /// A short display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Produces an NDL-rewriting of `omq` over complete data instances,
    /// ticking the shared [`Budget`] through its work loops and charging
    /// the clauses/atoms it emits. Aborts with
    /// [`RewriteError::BudgetExceeded`] (carrying the partial rewriting
    /// size) when the budget trips.
    fn rewrite_budgeted(
        &self,
        omq: &Omq<'_>,
        budget: &mut Budget,
    ) -> Result<NdlQuery, RewriteError>;

    /// Produces an NDL-rewriting of `omq` over complete data instances,
    /// without resource limits.
    fn rewrite_complete(&self, omq: &Omq<'_>) -> Result<NdlQuery, RewriteError> {
        self.rewrite_budgeted(omq, &mut Budget::unlimited())
    }
}

/// Charges a finished rewriting's clauses and body atoms against the
/// budget. Rewriters with polynomial output call this once at the end;
/// exponential ones additionally check in-loop.
pub fn charge_query(budget: &mut Budget, query: &NdlQuery) -> Result<(), RewriteError> {
    let clauses = query.program.clauses().len();
    let atoms: usize = query.program.clauses().iter().map(|c| c.body.len()).sum();
    budget
        .charge_clauses(clauses as u64)
        .map_err(|e| RewriteError::from_budget(e, clauses, atoms))?;
    budget.check_time().map_err(|e| RewriteError::from_budget(e, clauses, atoms))
}

/// Ticks the budget inside a rewriter work loop, reporting the partial
/// program size on a trip.
pub fn tick_rewrite(budget: &mut Budget, program: &Program) -> Result<(), RewriteError> {
    budget.tick().map_err(|e| {
        let clauses = program.clauses().len();
        let atoms = program.clauses().iter().map(|c| c.body.len()).sum();
        RewriteError::from_budget(e, clauses, atoms)
    })
}

/// Charges one emitted clause against the budget inside a rewriter loop.
pub fn charge_clause(budget: &mut Budget, program: &Program) -> Result<(), RewriteError> {
    budget.charge_clauses(1).map_err(|e| {
        let clauses = program.clauses().len();
        let atoms = program.clauses().iter().map(|c| c.body.len()).sum();
        RewriteError::from_budget(e, clauses, atoms)
    })
}

/// Rewrites over arbitrary data instances: applies the rewriter and then the
/// `*`-transformation (the linear variant when the program is linear).
pub fn rewrite_arbitrary(
    rewriter: &dyn Rewriter,
    omq: &Omq<'_>,
    taxonomy: &Taxonomy,
) -> Result<NdlQuery, RewriteError> {
    rewrite_arbitrary_budgeted(rewriter, omq, taxonomy, &mut Budget::unlimited())
}

/// Budgeted [`rewrite_arbitrary`]: the rewriter itself and the clauses
/// added by the `*`-transformation all charge the shared budget.
pub fn rewrite_arbitrary_budgeted(
    rewriter: &dyn Rewriter,
    omq: &Omq<'_>,
    taxonomy: &Taxonomy,
    budget: &mut Budget,
) -> Result<NdlQuery, RewriteError> {
    let complete = rewriter.rewrite_budgeted(omq, budget)?;
    let vocab = omq.ontology.vocab();
    let starred = if obda_ndl::analysis::is_linear(&complete.program) {
        linear_star_transform(&complete, taxonomy, vocab)
    } else {
        star_transform(&complete, taxonomy, vocab)
    };
    // Charge the delta added by the star transformation.
    let before = complete.program.clauses().len();
    let after = starred.program.clauses().len();
    let atoms: usize = starred.program.clauses().iter().map(|c| c.body.len()).sum();
    budget
        .charge_clauses(after.saturating_sub(before) as u64)
        .map_err(|e| RewriteError::from_budget(e, after, atoms))?;
    Ok(starred)
}

/// Adds the inconsistency clauses of Section 2's final remark: if the
/// left-hand side of a `⊥`-axiom holds somewhere in the data, every tuple of
/// constants is an answer. Works on rewritings over **complete** instances
/// (the `*`-transformation then lifts them to arbitrary ones).
pub fn add_inconsistency_clauses(query: &mut NdlQuery, taxonomy: &Taxonomy, omq: &Omq<'_>) {
    let vocab = omq.ontology.vocab();
    let arity = query.arity() as u32;
    let goal = query.goal;
    let program = &mut query.program;
    let top = program.edb_top();

    // Each answer variable ranges over the active domain; one extra variable
    // (or two) witnesses the violated constraint.
    let emit = |program: &mut Program, violation: Vec<BodyAtom>, extra_vars: u32| {
        let head_args: Vec<CVar> = (0..arity).map(CVar).collect();
        let mut body = violation;
        for &v in &head_args {
            body.push(BodyAtom::Pred(top, vec![v]));
        }
        program.add_clause(Clause { head: goal, head_args, body, num_vars: arity + extra_vars });
    };

    let class_atom =
        |program: &mut Program, e: ClassExpr, z: CVar, fresh: CVar| -> Option<(BodyAtom, bool)> {
            match e {
                ClassExpr::Top => Some((BodyAtom::Pred(program.edb_top(), vec![z]), false)),
                ClassExpr::Class(c) => {
                    Some((BodyAtom::Pred(program.edb_class(c, vocab), vec![z]), false))
                }
                ClassExpr::Exists(r) => Some((program.role_atom(r, z, fresh, vocab), true)),
            }
        };

    for ax in omq.ontology.axioms() {
        match *ax {
            obda_owlql::axiom::Axiom::DisjointClasses(e1, e2) => {
                let z = CVar(arity);
                let f1 = CVar(arity + 1);
                let f2 = CVar(arity + 2);
                // Disjointness axioms only mention class expressions, for
                // which `class_atom` always produces an atom.
                #[allow(clippy::expect_used)]
                let (a1, _) = class_atom(program, e1, z, f1).expect("class atom");
                #[allow(clippy::expect_used)]
                let (a2, _) = class_atom(program, e2, z, f2).expect("class atom");
                emit(program, vec![a1, a2], 3);
            }
            obda_owlql::axiom::Axiom::DisjointRoles(r1, r2) => {
                let z1 = CVar(arity);
                let z2 = CVar(arity + 1);
                let a1 = program.role_atom(r1, z1, z2, vocab);
                let a2 = program.role_atom(r2, z1, z2, vocab);
                emit(program, vec![a1, a2], 2);
            }
            obda_owlql::axiom::Axiom::Irreflexive(r) => {
                let z = CVar(arity);
                let a = program.role_atom(r, z, z, vocab);
                emit(program, vec![a], 1);
            }
            _ => {}
        }
    }
    let _ = taxonomy;
}

/// Common helper: map a role to the class expression `∃̺` check used by
/// type-compatibility tests.
pub fn exists(role: Role) -> ClassExpr {
    ClassExpr::Exists(role)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_cq::parse_cq;
    use obda_owlql::parse_ontology;

    #[test]
    fn errors_display() {
        assert!(RewriteError::NotTreeShaped.to_string().contains("tree"));
        assert!(RewriteError::TooLarge(7).to_string().contains('7'));
    }

    #[test]
    fn omq_construction() {
        let o = parse_ontology("Class A\n").unwrap();
        let q = parse_cq("q(x) :- A(x)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        assert_eq!(omq.query.num_atoms(), 1);
    }
}
