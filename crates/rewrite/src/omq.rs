//! Ontology-mediated queries and the rewriter interface.

use obda_cq::query::Cq;
use obda_ndl::program::{BodyAtom, CVar, Clause, NdlQuery, Program};
use obda_ndl::star::{linear_star_transform, star_transform};
use obda_owlql::axiom::ClassExpr;
use obda_owlql::ontology::Ontology;
use obda_owlql::saturation::Taxonomy;
use obda_owlql::vocab::Role;
use std::fmt;

/// An ontology-mediated query `Q(x) = (T, q(x))`.
#[derive(Debug, Clone, Copy)]
pub struct Omq<'a> {
    /// The ontology `T` (normalised).
    pub ontology: &'a Ontology,
    /// The CQ `q(x)`.
    pub query: &'a Cq,
}

/// Why a rewriter refused an OMQ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RewriteError {
    /// The rewriter requires a tree-shaped CQ.
    NotTreeShaped,
    /// The rewriter requires a connected CQ.
    NotConnected,
    /// The rewriter requires an ontology of finite depth.
    InfiniteDepth,
    /// A resource cap was exceeded (the baseline rewriters blow up
    /// exponentially by design).
    TooLarge(usize),
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::NotTreeShaped => write!(f, "query is not tree-shaped"),
            RewriteError::NotConnected => write!(f, "query is not connected"),
            RewriteError::InfiniteDepth => write!(f, "ontology has infinite depth"),
            RewriteError::TooLarge(n) => write!(f, "rewriting exceeded the cap of {n} clauses"),
        }
    }
}

impl std::error::Error for RewriteError {}

/// A rewriter producing NDL-rewritings over **complete** data instances.
///
/// Use [`rewrite_arbitrary`] to obtain a rewriting over arbitrary instances
/// via the `*`-transformation (Lemma 3's linear variant is applied when the
/// produced program is linear, preserving the NL evaluation bound).
pub trait Rewriter {
    /// A short display name (used in experiment tables).
    fn name(&self) -> &'static str;

    /// Produces an NDL-rewriting of `omq` over complete data instances.
    fn rewrite_complete(&self, omq: &Omq<'_>) -> Result<NdlQuery, RewriteError>;
}

/// Rewrites over arbitrary data instances: applies the rewriter and then the
/// `*`-transformation (the linear variant when the program is linear).
pub fn rewrite_arbitrary(
    rewriter: &dyn Rewriter,
    omq: &Omq<'_>,
    taxonomy: &Taxonomy,
) -> Result<NdlQuery, RewriteError> {
    let complete = rewriter.rewrite_complete(omq)?;
    let vocab = omq.ontology.vocab();
    let starred = if obda_ndl::analysis::is_linear(&complete.program) {
        linear_star_transform(&complete, taxonomy, vocab)
    } else {
        star_transform(&complete, taxonomy, vocab)
    };
    Ok(starred)
}

/// Adds the inconsistency clauses of Section 2's final remark: if the
/// left-hand side of a `⊥`-axiom holds somewhere in the data, every tuple of
/// constants is an answer. Works on rewritings over **complete** instances
/// (the `*`-transformation then lifts them to arbitrary ones).
pub fn add_inconsistency_clauses(query: &mut NdlQuery, taxonomy: &Taxonomy, omq: &Omq<'_>) {
    let vocab = omq.ontology.vocab();
    let arity = query.arity() as u32;
    let goal = query.goal;
    let program = &mut query.program;
    let top = program.edb_top();

    // Each answer variable ranges over the active domain; one extra variable
    // (or two) witnesses the violated constraint.
    let emit = |program: &mut Program, violation: Vec<BodyAtom>, extra_vars: u32| {
        let head_args: Vec<CVar> = (0..arity).map(CVar).collect();
        let mut body = violation;
        for &v in &head_args {
            body.push(BodyAtom::Pred(top, vec![v]));
        }
        program.add_clause(Clause { head: goal, head_args, body, num_vars: arity + extra_vars });
    };

    let class_atom =
        |program: &mut Program, e: ClassExpr, z: CVar, fresh: CVar| -> Option<(BodyAtom, bool)> {
            match e {
                ClassExpr::Top => Some((BodyAtom::Pred(program.edb_top(), vec![z]), false)),
                ClassExpr::Class(c) => {
                    Some((BodyAtom::Pred(program.edb_class(c, vocab), vec![z]), false))
                }
                ClassExpr::Exists(r) => Some((program.role_atom(r, z, fresh, vocab), true)),
            }
        };

    for ax in omq.ontology.axioms() {
        match *ax {
            obda_owlql::axiom::Axiom::DisjointClasses(e1, e2) => {
                let z = CVar(arity);
                let f1 = CVar(arity + 1);
                let f2 = CVar(arity + 2);
                let (a1, _) = class_atom(program, e1, z, f1).expect("class atom");
                let (a2, _) = class_atom(program, e2, z, f2).expect("class atom");
                emit(program, vec![a1, a2], 3);
            }
            obda_owlql::axiom::Axiom::DisjointRoles(r1, r2) => {
                let z1 = CVar(arity);
                let z2 = CVar(arity + 1);
                let a1 = program.role_atom(r1, z1, z2, vocab);
                let a2 = program.role_atom(r2, z1, z2, vocab);
                emit(program, vec![a1, a2], 2);
            }
            obda_owlql::axiom::Axiom::Irreflexive(r) => {
                let z = CVar(arity);
                let a = program.role_atom(r, z, z, vocab);
                emit(program, vec![a], 1);
            }
            _ => {}
        }
    }
    let _ = taxonomy;
}

/// Common helper: map a role to the class expression `∃̺` check used by
/// type-compatibility tests.
pub fn exists(role: Role) -> ClassExpr {
    ClassExpr::Exists(role)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_cq::parse_cq;
    use obda_owlql::parse_ontology;

    #[test]
    fn errors_display() {
        assert!(RewriteError::NotTreeShaped.to_string().contains("tree"));
        assert!(RewriteError::TooLarge(7).to_string().contains('7'));
    }

    #[test]
    fn omq_construction() {
        let o = parse_ontology("Class A\n").unwrap();
        let q = parse_cq("q(x) :- A(x)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        assert_eq!(omq.query.num_atoms(), 1);
    }
}
