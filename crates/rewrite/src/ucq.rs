//! A PerfectRef-style UCQ rewriter (the baseline standing in for the
//! UCQ-producing systems — Rapid, Clipper — compared against in Section 6).
//!
//! Implements the classical two-rule saturation of Calvanese et al. (2007)
//! on the normalised OWL 2 QL language:
//!
//! * **atom rewriting** — replace an atom by the left-hand side of an
//!   applicable axiom (`τ ⊑ A` applies to `A(t)`; `r ⊑ s` applies to an
//!   `s`-atom; `τ ⊑ ∃̺` applies to `̺(t, t′)` when `t′` is *unbound*, i.e.
//!   occurs nowhere else);
//! * **reduction** — unify two atoms of a CQ and continue from the smaller
//!   CQ (needed so that variables become unbound).
//!
//! The result is exponential in general — exactly the behaviour Figure 2
//! documents for these systems — so the rewriter takes a clause cap.
//!
//! The produced UCQ is a rewriting over **arbitrary** data instances.

use crate::omq::{Omq, RewriteError, Rewriter};
use obda_budget::Budget;
use obda_cq::query::{Atom, Var};
use obda_ndl::program::{BodyAtom, CVar, Clause, NdlQuery, Program};
use obda_owlql::axiom::{Axiom, ClassExpr};
use obda_owlql::util::FxHashSet;
use obda_owlql::vocab::{ClassId, Role};
use std::collections::BTreeSet;

/// An atom of a UCQ disjunct; terms are variable numbers, answer variables
/// keeping their original numbers and existential variables renamed
/// canonically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum UAtom {
    Class(ClassId, u32),
    Prop(obda_owlql::vocab::PropId, u32, u32),
}

impl UAtom {
    fn vars(self) -> impl Iterator<Item = u32> {
        let (a, b) = match self {
            UAtom::Class(_, t) => (t, None),
            UAtom::Prop(_, t, t2) => (t, Some(t2)),
        };
        std::iter::once(a).chain(b)
    }

    fn rename(self, f: &mut impl FnMut(u32) -> u32) -> UAtom {
        match self {
            UAtom::Class(c, t) => UAtom::Class(c, f(t)),
            UAtom::Prop(p, t, t2) => UAtom::Prop(p, f(t), f(t2)),
        }
    }

    /// The role atom view: `̺(x, y)` for `̺ = P` / `P⁻`.
    fn as_role(self, role: Role) -> Option<(u32, u32)> {
        match self {
            UAtom::Prop(p, t, t2) if p == role.prop => {
                Some(if role.inverse { (t2, t) } else { (t, t2) })
            }
            _ => None,
        }
    }
}

/// One disjunct: a sorted atom set (answer variables are `0..num_answer`,
/// existential variables canonically renamed above that).
type Disjunct = BTreeSet<UAtom>;

/// The PerfectRef-style rewriter.
#[derive(Debug, Clone, Copy)]
pub struct UcqRewriter {
    /// Abort with [`RewriteError::TooLarge`] past this many disjuncts.
    pub cap: usize,
}

impl Default for UcqRewriter {
    fn default() -> Self {
        UcqRewriter { cap: 20_000 }
    }
}

fn canonicalise(atoms: &BTreeSet<UAtom>, num_answer: u32) -> Disjunct {
    // Rename existential variables by first occurrence in the sorted atom
    // sequence; repeat until stable (two passes suffice in practice).
    let mut current: Vec<UAtom> = atoms.iter().copied().collect();
    for _ in 0..3 {
        current.sort();
        let mut map: Vec<(u32, u32)> = Vec::new();
        let mut next = num_answer;
        let rename = |v: u32, map: &mut Vec<(u32, u32)>, next: &mut u32| -> u32 {
            if v < num_answer {
                return v;
            }
            if let Some(&(_, n)) = map.iter().find(|&&(o, _)| o == v) {
                return n;
            }
            let n = *next;
            *next += 1;
            map.push((v, n));
            n
        };
        current =
            current.iter().map(|a| a.rename(&mut |v| rename(v, &mut map, &mut next))).collect();
    }
    current.into_iter().collect()
}

fn budget_err(e: obda_budget::BudgetExceeded, seen: &FxHashSet<Disjunct>) -> RewriteError {
    RewriteError::from_budget(e, seen.len(), seen.iter().map(|d| d.len()).sum())
}

fn push_disjunct(
    atoms: BTreeSet<UAtom>,
    num_answer: u32,
    seen: &mut FxHashSet<Disjunct>,
    queue: &mut Vec<Disjunct>,
) {
    let canon = canonicalise(&atoms, num_answer);
    if seen.insert(canon.clone()) {
        queue.push(canon);
    }
}

impl Rewriter for UcqRewriter {
    fn name(&self) -> &'static str {
        "UCQ"
    }

    fn rewrite_budgeted(
        &self,
        omq: &Omq<'_>,
        budget: &mut Budget,
    ) -> Result<NdlQuery, RewriteError> {
        // The produced UCQ is a rewriting over arbitrary instances, hence in
        // particular over complete ones.
        let q = omq.query;
        let num_answer = q.answer_vars().len() as u32;
        // Variable numbering: answer variables first.
        let var_num = |v: Var| -> u32 {
            if let Some(pos) = q.answer_vars().iter().position(|&x| x == v) {
                pos as u32
            } else {
                num_answer + v.0
            }
        };
        let initial: BTreeSet<UAtom> = q
            .atoms()
            .iter()
            .map(|&a| match a {
                Atom::Class(c, z) => UAtom::Class(c, var_num(z)),
                Atom::Prop(p, z, z2) => UAtom::Prop(p, var_num(z), var_num(z2)),
            })
            .collect();
        let initial = canonicalise(&initial, num_answer);

        let axioms: Vec<Axiom> = omq.ontology.axioms().to_vec();
        let mut seen: FxHashSet<Disjunct> = FxHashSet::default();
        let mut queue: Vec<Disjunct> = vec![initial.clone()];
        seen.insert(initial);
        let mut i = 0;
        let mut charged = 0usize;
        while i < queue.len() {
            if seen.len() > self.cap {
                return Err(RewriteError::TooLarge(self.cap));
            }
            // Charge the disjuncts minted since the last iteration: the
            // saturation is exponential by design, so the budget must see
            // growth as it happens, not at the end.
            budget
                .charge_clauses((seen.len() - charged) as u64)
                .map_err(|e| budget_err(e, &seen))?;
            charged = seen.len();
            let cq = queue[i].clone();
            i += 1;
            let max_var = cq.iter().flat_map(|a| a.vars()).max().unwrap_or(0);
            let fresh = max_var + 1;
            let unbound = |v: u32, without: UAtom| -> bool {
                v >= num_answer
                    && cq.iter().filter(|&&a| a != without).all(|a| a.vars().all(|u| u != v))
                    && without.vars().filter(|&u| u == v).count() == 1
            };

            // Atom-rewriting steps.
            for &g in cq.iter() {
                for &ax in &axioms {
                    budget.tick().map_err(|e| budget_err(e, &seen))?;
                    let apply = |replacement: Vec<UAtom>,
                                 seen: &mut FxHashSet<Disjunct>,
                                 queue: &mut Vec<Disjunct>| {
                        let mut next: BTreeSet<UAtom> = cq.clone();
                        next.remove(&g);
                        next.extend(replacement);
                        push_disjunct(next, num_answer, seen, queue);
                    };
                    match ax {
                        Axiom::SubClass(lhs, ClassExpr::Class(a)) => {
                            if let UAtom::Class(c, t) = g {
                                if c == a {
                                    match lhs {
                                        ClassExpr::Class(b) => {
                                            apply(vec![UAtom::Class(b, t)], &mut seen, &mut queue);
                                        }
                                        ClassExpr::Exists(r) => {
                                            let atom = role_atom(r, t, fresh);
                                            apply(vec![atom], &mut seen, &mut queue);
                                        }
                                        ClassExpr::Top => {}
                                    }
                                }
                            }
                        }
                        Axiom::SubClass(lhs, ClassExpr::Exists(r)) => {
                            // Applicable to an ̺-atom whose object is unbound.
                            if let Some((t, t2)) = g.as_role(r) {
                                if unbound(t2, g) {
                                    match lhs {
                                        ClassExpr::Class(b) => {
                                            apply(vec![UAtom::Class(b, t)], &mut seen, &mut queue);
                                        }
                                        ClassExpr::Exists(r2) => {
                                            let atom = role_atom(r2, t, fresh);
                                            apply(vec![atom], &mut seen, &mut queue);
                                        }
                                        ClassExpr::Top => {}
                                    }
                                }
                            }
                        }
                        Axiom::SubRole(r, s) => {
                            if let Some((t, t2)) = g.as_role(s) {
                                let atom = role_atom(r, t, t2);
                                apply(vec![atom], &mut seen, &mut queue);
                            }
                        }
                        Axiom::Reflexive(r) => {
                            // ̺(t, t′) with ∀x ̺(x,x) can collapse t′ into t.
                            if let Some((t, t2)) = g.as_role(r) {
                                if t != t2 {
                                    let mut next: BTreeSet<UAtom> = cq
                                        .iter()
                                        .map(|a| {
                                            a.rename(&mut |v| {
                                                if v == t2.max(t) {
                                                    t2.min(t)
                                                } else {
                                                    v
                                                }
                                            })
                                        })
                                        .collect();
                                    if t2.max(t) < num_answer {
                                        continue; // cannot merge two answer vars
                                    }
                                    next.remove(&role_atom(
                                        Role::direct(r.prop),
                                        t2.min(t),
                                        t2.min(t),
                                    ));
                                    push_disjunct(next, num_answer, &mut seen, &mut queue);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }

            // Reduction: unify pairs of atoms.
            let atoms: Vec<UAtom> = cq.iter().copied().collect();
            for (ai, &g1) in atoms.iter().enumerate() {
                for &g2 in &atoms[ai + 1..] {
                    budget.tick().map_err(|e| budget_err(e, &seen))?;
                    if let Some(unifier) = mgu(g1, g2, num_answer) {
                        let next: BTreeSet<UAtom> =
                            cq.iter().map(|a| a.rename(&mut |v| resolve(&unifier, v))).collect();
                        push_disjunct(next, num_answer, &mut seen, &mut queue);
                    }
                }
            }
        }

        // Emit as an NDL program: one clause per disjunct.
        let vocab = omq.ontology.vocab();
        let mut program = Program::new();
        let goal = program.add_idb_with_params("G", num_answer as usize, num_answer as usize);
        let mut disjuncts: Vec<Disjunct> = seen.into_iter().collect();
        disjuncts.sort();
        for cq in disjuncts {
            let num_vars = cq.iter().flat_map(|a| a.vars()).max().unwrap_or(0) + 1;
            let num_vars = num_vars.max(num_answer);
            let head_args: Vec<CVar> = (0..num_answer).map(CVar).collect();
            let mut body: Vec<BodyAtom> = Vec::new();
            for &a in &cq {
                match a {
                    UAtom::Class(c, t) => {
                        let p = program.edb_class(c, vocab);
                        body.push(BodyAtom::Pred(p, vec![CVar(t)]));
                    }
                    UAtom::Prop(p, t, t2) => {
                        let pe = program.edb_prop(p, vocab);
                        body.push(BodyAtom::Pred(pe, vec![CVar(t), CVar(t2)]));
                    }
                }
            }
            // An answer variable can disappear from a disjunct only via
            // reduction with another answer variable, which `mgu` forbids,
            // so bodies always bind the head — except for empty bodies.
            if body.is_empty() {
                continue;
            }
            let bound: Vec<CVar> = body.iter().flat_map(|a| a.vars()).collect();
            if head_args.iter().any(|c| !bound.contains(c)) {
                // Defensive: ⊤-pad rather than emit an unsafe clause.
                let top = program.edb_top();
                for &c in &head_args {
                    if !bound.contains(&c) {
                        body.push(BodyAtom::Pred(top, vec![c]));
                    }
                }
            }
            program.add_clause(Clause { head: goal, head_args, body, num_vars });
        }
        Ok(NdlQuery::new(program, goal))
    }
}

fn role_atom(role: Role, x: u32, y: u32) -> UAtom {
    if role.inverse {
        UAtom::Prop(role.prop, y, x)
    } else {
        UAtom::Prop(role.prop, x, y)
    }
}

/// Most general unifier of two atoms over the same predicate; answer
/// variables (below `num_answer`) unify only with themselves or with
/// existential variables.
fn mgu(g1: UAtom, g2: UAtom, num_answer: u32) -> Option<Vec<(u32, u32)>> {
    let pairs: Vec<(u32, u32)> = match (g1, g2) {
        (UAtom::Class(c1, t1), UAtom::Class(c2, t2)) if c1 == c2 => vec![(t1, t2)],
        (UAtom::Prop(p1, a1, b1), UAtom::Prop(p2, a2, b2)) if p1 == p2 => {
            vec![(a1, a2), (b1, b2)]
        }
        _ => return None,
    };
    let mut subst: Vec<(u32, u32)> = Vec::new();
    for (x, y) in pairs {
        let rx = resolve(&subst, x);
        let ry = resolve(&subst, y);
        if rx == ry {
            continue;
        }
        // Orient: replace the existential variable by the other.
        let (from, to) = if rx >= num_answer {
            (rx, ry)
        } else if ry >= num_answer {
            (ry, rx)
        } else {
            return None; // two distinct answer variables
        };
        subst.push((from, to));
    }
    Some(subst)
}

fn resolve(subst: &[(u32, u32)], mut v: u32) -> u32 {
    loop {
        match subst.iter().find(|&&(f, _)| f == v) {
            Some(&(_, t)) => v = t,
            None => return v,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_chase::certain_answers;
    use obda_cq::parse_cq;
    use obda_ndl::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};

    #[test]
    fn matches_oracle_on_short_query() {
        let o = parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap();
        let q = parse_cq("q(x0, x3) :- R(x0, x1), S(x1, x2), R(x2, x3)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let rw = UcqRewriter::default().rewrite_complete(&omq).unwrap();
        let d = parse_data("P(w1, a)\nR(a, b)\nP(b, c)\nS(c, d)\n", &o).unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
    }

    #[test]
    fn existential_witness_rewrites_away() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf B\n",
        )
        .unwrap();
        let q = parse_cq("q(x) :- P(x, y), B(y)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let rw = UcqRewriter::default().rewrite_complete(&omq).unwrap();
        // A(a) alone suffices: the disjunct A(x) must be produced (P(x,y)
        // with unbound y after B(y) is rewritten into ∃P⁻, reduced, etc.).
        let d = parse_data("A(a)\n", &o).unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 1);
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
    }

    #[test]
    fn grows_exponentially_on_the_paper_sequences() {
        // On OMQ(1,1,2) prefixes of sequence 1 the UCQ size must grow
        // super-linearly (the motivation for the paper's rewritings).
        let o = parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap();
        let sizes: Vec<usize> = [
            "q(x0, x3) :- R(x0, x1), S(x1, x2), R(x2, x3)",
            "q(x0, x6) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6)",
        ]
        .iter()
        .map(|src| {
            let q = parse_cq(src, &o).unwrap();
            let omq = Omq { ontology: &o, query: &q };
            UcqRewriter::default().rewrite_complete(&omq).unwrap().program.num_clauses()
        })
        .collect();
        assert!(sizes[1] > 2 * sizes[0], "{sizes:?}");
    }

    #[test]
    fn cap_triggers() {
        let o = parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap();
        let q = parse_cq(
            "q(x0, x6) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6)",
            &o,
        )
        .unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let r = UcqRewriter { cap: 3 }.rewrite_complete(&omq);
        assert_eq!(r.unwrap_err(), RewriteError::TooLarge(3));
    }
}
