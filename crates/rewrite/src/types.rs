//! Types (variable-to-word maps) and the `At` atom sets shared by the `Lin`
//! and `Log` rewritings (Sections 3.2–3.3).
//!
//! A *type* is a partial map `w` from query variables to `W_T`-words,
//! `w(z) = w` meaning `z` is mapped to an element `a·w` of the canonical
//! model and `w(z) = ε` that `z` is mapped to an individual.

use obda_cq::query::{Atom, Cq, Var};
use obda_ndl::program::{BodyAtom, CVar, Program};
use obda_owlql::axiom::ClassExpr;
use obda_owlql::ontology::Ontology;
use obda_owlql::saturation::Taxonomy;
use obda_owlql::vocab::Role;
use obda_owlql::words::{WordArena, WordId};
use std::collections::BTreeMap;

/// A type: a partial map from query variables to words.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TypeMap {
    entries: BTreeMap<Var, WordId>,
}

impl TypeMap {
    /// The empty type ε.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Sets `z ↦ w`.
    pub fn set(&mut self, z: Var, w: WordId) {
        self.entries.insert(z, w);
    }

    /// Looks up `w(z)`.
    pub fn get(&self, z: Var) -> Option<WordId> {
        self.entries.get(&z).copied()
    }

    /// The domain of the type.
    pub fn domain(&self) -> impl Iterator<Item = Var> + '_ {
        self.entries.keys().copied()
    }

    /// Whether `z ∈ dom(w)`.
    pub fn contains(&self, z: Var) -> bool {
        self.entries.contains_key(&z)
    }

    /// The union `w ∪ s`; panics if the types disagree on a shared variable.
    pub fn union(&self, other: &TypeMap) -> TypeMap {
        let mut out = self.clone();
        for (&z, &w) in &other.entries {
            if let Some(existing) = out.get(z) {
                assert_eq!(existing, w, "types disagree on a shared variable");
            }
            out.set(z, w);
        }
        out
    }

    /// The restriction of the type to `vars`.
    pub fn restrict(&self, vars: &[Var]) -> TypeMap {
        let mut out = TypeMap::empty();
        for (&z, &w) in &self.entries {
            if vars.contains(&z) {
                out.set(z, w);
            }
        }
        out
    }

    /// Whether the types agree on their common domain.
    pub fn agrees_with(&self, other: &TypeMap) -> bool {
        self.entries.iter().all(|(&z, &w)| other.get(z).is_none_or(|w2| w2 == w))
    }

    /// Renders the type like `{x3 ↦ ε, x4 ↦ P-}` for debugging and
    /// predicate naming.
    pub fn display(&self, q: &Cq, arena: &WordArena, ontology: &Ontology) -> String {
        let parts: Vec<String> = self
            .entries
            .iter()
            .map(|(&z, &w)| format!("{}↦{}", q.var_name(z), arena.display(w, ontology.vocab())))
            .collect();
        format!("{{{}}}", parts.join(","))
    }
}

/// Shared context for type enumeration and compatibility checks.
pub struct TypeCtx<'a> {
    /// The ontology (normalised).
    pub ontology: &'a Ontology,
    /// Its saturation.
    pub taxonomy: &'a Taxonomy,
    /// The word arena materialised up to the ontology depth.
    pub arena: &'a WordArena,
    /// The CQ being rewritten.
    pub q: &'a Cq,
}

impl TypeCtx<'_> {
    /// The candidate words for variable `z`: ε always; a nonempty word `w`
    /// only if `z` is existentially quantified, every class atom `A(z) ∈ q`
    /// is implied by the last letter (`T ⊨ ∃y ̺(y,x) → A(x)`), and every
    /// self-loop `P(z,z) ∈ q` has `T ⊨ P(x,x)`.
    pub fn candidate_words(&self, z: Var) -> Vec<WordId> {
        let mut out = vec![WordId::EPSILON];
        if self.q.is_answer_var(z) {
            return out;
        }
        let classes: Vec<_> = self.q.class_atoms_on(z).collect();
        let self_loops: Vec<Role> = self.q.roles_between(z, z).collect();
        for w in self.arena.iter().skip(1) {
            // `skip(1)` skips ε, so every remaining word has a last letter.
            #[allow(clippy::expect_used)]
            let last = self.arena.last_letter(w).expect("nonempty");
            let classes_ok = classes.iter().all(|&a| {
                self.taxonomy.sub_class(ClassExpr::Exists(last.inv()), ClassExpr::Class(a))
            });
            let loops_ok = self_loops.iter().all(|&r| self.taxonomy.is_reflexive(r));
            if classes_ok && loops_ok {
                out.push(w);
            }
        }
        out
    }

    /// Conditions (i)–(iii) for a binary atom `̺(y, z) ∈ q` under words
    /// `w(y) = wy`, `w(z) = wz`:
    /// (i) both ε; (ii) equal words and `T ⊨ ̺(x,x)`; (iii) some `σ ⊑ ̺`
    /// with `wz = wy·σ`, or some `σ ⊑ ̺⁻` with `wy = wz·σ`.
    pub fn edge_compatible(&self, role: Role, wy: WordId, wz: WordId) -> bool {
        if wy.is_epsilon() && wz.is_epsilon() {
            return true;
        }
        if wy == wz && self.taxonomy.is_reflexive(role) {
            return true;
        }
        if self.arena.parent(wz) == Some(wy) {
            // A word with a parent is not ε, so it has a last letter.
            #[allow(clippy::expect_used)]
            let sigma = self.arena.last_letter(wz).expect("nonempty");
            if self.taxonomy.sub_role(sigma, role) {
                return true;
            }
        }
        if self.arena.parent(wy) == Some(wz) {
            // A word with a parent is not ε, so it has a last letter.
            #[allow(clippy::expect_used)]
            let sigma = self.arena.last_letter(wy).expect("nonempty");
            if self.taxonomy.sub_role(sigma, role.inv()) {
                return true;
            }
        }
        false
    }

    /// Whether the type is compatible on the given variable set: per-variable
    /// conditions (answer variables map to ε, class atoms and self-loops are
    /// satisfied — guaranteed when words come from [`TypeCtx::candidate_words`])
    /// and condition (i)–(iii) for every `q`-atom with both variables in
    /// `vars ∩ dom`.
    pub fn compatible_on(&self, t: &TypeMap, vars: &[Var]) -> bool {
        for &z in vars {
            let Some(w) = t.get(z) else { continue };
            if self.q.is_answer_var(z) && !w.is_epsilon() {
                return false;
            }
            if !w.is_epsilon() {
                // Guarded: non-ε words have a last letter.
                #[allow(clippy::expect_used)]
                let last = self.arena.last_letter(w).expect("nonempty");
                for a in self.q.class_atoms_on(z) {
                    if !self.taxonomy.sub_class(ClassExpr::Exists(last.inv()), ClassExpr::Class(a))
                    {
                        return false;
                    }
                }
                for r in self.q.roles_between(z, z) {
                    if !self.taxonomy.is_reflexive(r) {
                        return false;
                    }
                }
            }
        }
        for &atom in self.q.atoms() {
            if let Atom::Prop(p, y, z) = atom {
                if y == z {
                    continue; // self-loops handled above
                }
                if vars.contains(&y) && vars.contains(&z) {
                    if let (Some(wy), Some(wz)) = (t.get(y), t.get(z)) {
                        if !self.edge_compatible(Role::direct(p), wy, wz) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Enumerates all types over `vars` (total on `vars`) that are
    /// compatible on `vars` and agree with `base` on shared variables.
    pub fn enumerate_types(&self, vars: &[Var], base: &TypeMap) -> Vec<TypeMap> {
        let mut out: Vec<TypeMap> = vec![TypeMap::empty()];
        for &z in vars {
            let candidates: Vec<WordId> = match base.get(z) {
                Some(w) => vec![w],
                None => self.candidate_words(z),
            };
            let mut next = Vec::new();
            for t in &out {
                for &w in &candidates {
                    let mut t2 = t.clone();
                    t2.set(z, w);
                    next.push(t2);
                }
            }
            out = next;
        }
        out.retain(|t| self.compatible_on(t, vars));
        out
    }

    /// The conjunction `At^t` over the atoms of `q` whose variables lie in
    /// `dom(t)` (Section 3.2):
    ///
    /// (a) `A(z)` for `t(z) = ε`, and `P(y,z)` when both sides are ε;
    /// (b) `y = z` for `P(y,z) ∈ q` with a non-ε side;
    /// (c) `A̺(z)` when `t(z)` starts with `̺`.
    ///
    /// `cvar` maps query variables to clause variables.
    pub fn type_atoms(
        &self,
        program: &mut Program,
        t: &TypeMap,
        cvar: &dyn Fn(Var) -> CVar,
    ) -> Vec<BodyAtom> {
        let vocab = self.ontology.vocab();
        let mut atoms = Vec::new();
        for &atom in self.q.atoms() {
            match atom {
                Atom::Class(a, z) => {
                    if t.get(z) == Some(WordId::EPSILON) {
                        let p = program.edb_class(a, vocab);
                        atoms.push(BodyAtom::Pred(p, vec![cvar(z)]));
                    }
                }
                Atom::Prop(p, y, z) => {
                    let (Some(wy), Some(wz)) = (t.get(y), t.get(z)) else { continue };
                    if wy.is_epsilon() && wz.is_epsilon() {
                        let pe = program.edb_prop(p, vocab);
                        atoms.push(BodyAtom::Pred(pe, vec![cvar(y), cvar(z)]));
                    } else if y != z {
                        atoms.push(BodyAtom::Eq(cvar(y), cvar(z)));
                    }
                }
            }
        }
        // (c): existence of the witness a·̺….
        for z in t.domain() {
            // `z` ranges over the mapping's own domain.
            #[allow(clippy::expect_used)]
            let w = t.get(z).expect("domain");
            if let Some(first) = self.arena.first_letter(w) {
                let a_rho = self.ontology.exists_class(first);
                let p = program.edb_class(a_rho, vocab);
                atoms.push(BodyAtom::Pred(p, vec![cvar(z)]));
            }
        }
        atoms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_cq::parse_cq;
    use obda_owlql::parse_ontology;
    use obda_owlql::words::WordArena;

    /// Example 11's ontology and Example 8's query.
    fn fixture() -> (Ontology, Cq) {
        let o = parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap();
        let q = parse_cq(
            "q(x0, x7) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6), R(x6, x7)",
            &o,
        )
        .unwrap();
        (o, q)
    }

    #[test]
    fn example_11_compatible_types_for_bag() {
        // Bag {x3, x4}: the two contributing types of Example 11 are
        // s1 = {x3 ↦ ε, x4 ↦ ε} and s2 = {x3 ↦ ε, x4 ↦ P⁻}; additionally
        // {x3 ↦ P, x4 ↦ ε}, {x3 ↦ ε, x4 ↦ R} and {x3 ↦ R⁻, x4 ↦ ε} are
        // compatible but never derivable.
        let (o, q) = fixture();
        let tx = o.taxonomy();
        let arena = WordArena::new(&tx, 1);
        let ctx = TypeCtx { ontology: &o, taxonomy: &tx, arena: &arena, q: &q };
        let x3 = q.get_var("x3").unwrap();
        let x4 = q.get_var("x4").unwrap();
        let types = ctx.enumerate_types(&[x3, x4], &TypeMap::empty());
        assert_eq!(types.len(), 5, "Example 11 lists exactly five compatible types");
        // s2 is among them: x3 ↦ ε, x4 ↦ P⁻ (edge R(x3,x4) via condition
        // (iii): x3 = x4's parent? No — x4 = x3·P⁻?? P⁻ ⊑ R so R(x3, x3·P⁻)).
        let p = obda_owlql::parser::resolve_role(o.vocab(), "P-").unwrap();
        let w_pinv = arena.word_of(&[p]).unwrap();
        assert!(types
            .iter()
            .any(|t| t.get(x3) == Some(WordId::EPSILON) && t.get(x4) == Some(w_pinv)));
    }

    #[test]
    fn answer_vars_forced_to_epsilon() {
        let (o, q) = fixture();
        let tx = o.taxonomy();
        let arena = WordArena::new(&tx, 1);
        let ctx = TypeCtx { ontology: &o, taxonomy: &tx, arena: &arena, q: &q };
        let x0 = q.get_var("x0").unwrap();
        assert_eq!(ctx.candidate_words(x0), vec![WordId::EPSILON]);
        let x1 = q.get_var("x1").unwrap();
        assert!(ctx.candidate_words(x1).len() > 1);
    }

    #[test]
    fn union_and_restrict() {
        let mut a = TypeMap::empty();
        a.set(Var(0), WordId::EPSILON);
        let mut b = TypeMap::empty();
        b.set(Var(1), WordId(1));
        let u = a.union(&b);
        assert_eq!(u.domain().count(), 2);
        let r = u.restrict(&[Var(1)]);
        assert_eq!(r.get(Var(1)), Some(WordId(1)));
        assert!(!r.contains(Var(0)));
        assert!(a.agrees_with(&u));
    }

    use obda_cq::query::Var;

    #[test]
    fn type_atoms_of_example_11() {
        // For s2 = {x3 ↦ ε, x4 ↦ P⁻}: At = AP-(x4) ∧ (x3 = x4).
        let (o, q) = fixture();
        let tx = o.taxonomy();
        let arena = WordArena::new(&tx, 1);
        let ctx = TypeCtx { ontology: &o, taxonomy: &tx, arena: &arena, q: &q };
        let x3 = q.get_var("x3").unwrap();
        let x4 = q.get_var("x4").unwrap();
        let p_inv = obda_owlql::parser::resolve_role(o.vocab(), "P-").unwrap();
        let mut t = TypeMap::empty();
        t.set(x3, WordId::EPSILON);
        t.set(x4, arena.word_of(&[p_inv]).unwrap());
        let mut program = Program::new();
        let atoms = ctx.type_atoms(&mut program, &t, &|v| CVar(v.0));
        // One equality (for R(x3,x4)) and one A_{P⁻} atom.
        let eqs = atoms.iter().filter(|a| matches!(a, BodyAtom::Eq(..))).count();
        let preds = atoms.iter().filter(|a| matches!(a, BodyAtom::Pred(..))).count();
        assert_eq!(eqs, 1);
        assert_eq!(preds, 1);
    }
}
