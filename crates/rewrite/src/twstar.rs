//! The `Tw*` optimisation (Appendix D.4): inline IDB predicates that are
//! defined by a single clause and used at most twice.
//!
//! The appendix observes that RDFox materialises every predicate, so
//! rewritings speed up dramatically when single-definition helper
//! predicates are substituted into their use sites (e.g. the `P13` example
//! of D.4 went from 28 s to 0.9 s). The pass below is a generic NDL → NDL
//! transformation; applied to `Tw` rewritings it yields the `Tw*` variant
//! of Tables 3–5.

use obda_ndl::program::{BodyAtom, CVar, Clause, NdlQuery, PredId, PredKind, Program};
use obda_owlql::util::FxHashMap;

/// Inlines IDB predicates with a single defining clause used at most
/// `max_uses` times (the paper uses 2), repeating to a fixpoint.
pub fn inline_single_definitions(query: &NdlQuery, max_uses: usize) -> NdlQuery {
    let mut program = query.program.clone();
    let goal = query.goal;
    while let Some(target) = find_inline_target(&program, goal, max_uses) {
        program = inline_pred(&program, target);
    }
    // Drop predicates that became unreachable from the goal.
    let program = garbage_collect(&program, goal);
    NdlQuery::new(program.0, program.1)
}

fn find_inline_target(program: &Program, goal: PredId, max_uses: usize) -> Option<PredId> {
    for p in program.pred_ids() {
        if p == goal || !program.is_idb(p) {
            continue;
        }
        let defs: Vec<&Clause> = program.clauses_for(p).collect();
        if defs.len() != 1 {
            continue;
        }
        // Self-recursive definitions cannot be inlined.
        if defs[0].body.iter().any(|a| matches!(a, BodyAtom::Pred(q, _) if *q == p)) {
            continue;
        }
        let uses: usize = program
            .clauses()
            .iter()
            .map(|c| c.body.iter().filter(|a| matches!(a, BodyAtom::Pred(q, _) if *q == p)).count())
            .sum();
        if uses >= 1 && uses <= max_uses {
            return Some(p);
        }
    }
    None
}

/// Substitutes the unique definition of `target` into every use site.
fn inline_pred(program: &Program, target: PredId) -> Program {
    // `inline_single_definitions` only calls this for predicates it has
    // verified to have exactly one defining clause.
    #[allow(clippy::expect_used)]
    let def = program.clauses_for(target).next().expect("target has a definition").clone();
    let mut out = clone_preds(program);
    for clause in program.clauses() {
        if clause.head == target {
            continue; // the definition itself disappears
        }
        let mut new_clause = clause.clone();
        while let Some(pos) =
            new_clause.body.iter().position(|a| matches!(a, BodyAtom::Pred(q, _) if *q == target))
        {
            let BodyAtom::Pred(_, args) = new_clause.body.remove(pos) else {
                unreachable!("position matched a predicate atom");
            };
            // Substitution for the definition's variables: head args map to
            // the occurrence args; the rest get fresh variables.
            let mut subst: FxHashMap<CVar, CVar> = FxHashMap::default();
            let mut extra_eqs: Vec<BodyAtom> = Vec::new();
            for (k, &hv) in def.head_args.iter().enumerate() {
                match subst.get(&hv) {
                    None => {
                        subst.insert(hv, args[k]);
                    }
                    Some(&prev) if prev != args[k] => {
                        // Repeated head variable bound to two occurrence
                        // variables: keep the first, equate the second.
                        extra_eqs.push(BodyAtom::Eq(prev, args[k]));
                    }
                    Some(_) => {}
                }
            }
            let mut next_var = new_clause.num_vars;
            for v in 0..def.num_vars {
                subst.entry(CVar(v)).or_insert_with(|| {
                    let c = CVar(next_var);
                    next_var += 1;
                    c
                });
            }
            new_clause.num_vars = next_var;
            for atom in &def.body {
                let mapped = match atom {
                    BodyAtom::Pred(q, a) => {
                        BodyAtom::Pred(*q, a.iter().map(|v| subst[v]).collect())
                    }
                    BodyAtom::Eq(a, b) => BodyAtom::Eq(subst[a], subst[b]),
                    BodyAtom::EqConst(a, c) => BodyAtom::EqConst(subst[a], *c),
                };
                new_clause.body.push(mapped);
            }
            new_clause.body.extend(extra_eqs);
        }
        out.add_clause(new_clause);
    }
    out
}

fn clone_preds(program: &Program) -> Program {
    let mut out = Program::new();
    for p in program.pred_ids() {
        let info = program.pred(p).clone();
        match info.kind {
            PredKind::Idb => {
                out.add_idb_with_params(info.name, info.arity, info.num_params);
            }
            kind => {
                out.add_pred(info.name, info.arity, kind);
            }
        }
    }
    out
}

/// Removes clauses whose head is unreachable from the goal. Predicates keep
/// their ids (unreferenced entries are harmless).
fn garbage_collect(program: &Program, goal: PredId) -> (Program, PredId) {
    let mut reachable = vec![false; program.num_preds()];
    reachable[goal.0 as usize] = true;
    let mut stack = vec![goal];
    while let Some(p) = stack.pop() {
        for c in program.clauses_for(p) {
            for a in &c.body {
                if let BodyAtom::Pred(q, _) = a {
                    if !reachable[q.0 as usize] {
                        reachable[q.0 as usize] = true;
                        stack.push(*q);
                    }
                }
            }
        }
    }
    let mut out = clone_preds(program);
    for c in program.clauses() {
        if reachable[c.head.0 as usize] {
            out.add_clause(c.clone());
        }
    }
    (out, goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omq::{Omq, Rewriter};
    use crate::tw::TwRewriter;
    use obda_chase::certain_answers;
    use obda_cq::parse_cq;
    use obda_ndl::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};
    use obda_owlql::vocab::Vocab;

    /// The D.4 example: G(x,y) ← S(x,z) ∧ P13(z,y); P13(x,y) ← R(x,z) ∧
    /// R(z,y); G(x,y) ← AP(x) ∧ R(x,y) — P13 inlines away.
    #[test]
    fn inlines_the_d4_example() {
        let mut v = Vocab::new();
        let s = v.prop("S");
        let r = v.prop("R");
        let ap = v.class("AP");
        let mut p = Program::new();
        let es = p.edb_prop(s, &v);
        let er = p.edb_prop(r, &v);
        let ea = p.edb_class(ap, &v);
        let p13 = p.add_pred("P13", 2, PredKind::Idb);
        let g = p.add_idb_with_params("G", 2, 2);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![
                BodyAtom::Pred(es, vec![CVar(0), CVar(2)]),
                BodyAtom::Pred(p13, vec![CVar(2), CVar(1)]),
            ],
            num_vars: 3,
        });
        p.add_clause(Clause {
            head: p13,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![
                BodyAtom::Pred(er, vec![CVar(0), CVar(2)]),
                BodyAtom::Pred(er, vec![CVar(2), CVar(1)]),
            ],
            num_vars: 3,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![
                BodyAtom::Pred(ea, vec![CVar(0)]),
                BodyAtom::Pred(er, vec![CVar(0), CVar(1)]),
            ],
            num_vars: 2,
        });
        let q = NdlQuery::new(p, g);
        let inlined = inline_single_definitions(&q, 2);
        // P13 is gone; G has the expanded 3-atom clause.
        assert_eq!(inlined.program.num_clauses(), 2);
        assert!(inlined.program.clauses().iter().all(|c| c.head == inlined.goal));

        // Semantics preserved.
        let o = parse_ontology("Class AP\nProperty S\nProperty R\n").unwrap();
        let d = parse_data("S(a, b)\nR(b, c)\nR(c, d)\nAP(e)\nR(e, f)\n", &o).unwrap();
        // NOTE: predicate ids in `q` were built against the same vocab ids.
        let r1 = evaluate(&q, &d, &EvalOptions::default()).unwrap();
        let r2 = evaluate(&inlined, &d, &EvalOptions::default()).unwrap();
        assert_eq!(r1.answers, r2.answers);
        assert_eq!(r1.answers.len(), 2);
    }

    #[test]
    fn tw_star_preserves_answers() {
        let o = parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap();
        let q = parse_cq(
            "q(x0, x7) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6), R(x6, x7)",
            &o,
        )
        .unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tw = TwRewriter::default().rewrite_complete(&omq).unwrap();
        let twstar = inline_single_definitions(&tw, 2);
        assert!(twstar.program.num_clauses() <= tw.program.num_clauses());
        let d = parse_data("P(w1, a)\nR(a, b)\nP(w2, b)\nR(b, c)\nR(c, e)\n", &o).unwrap();
        let tx = o.taxonomy();
        let completed = d.complete(&tx);
        let r1 = evaluate(&tw, &completed, &EvalOptions::default()).unwrap();
        let r2 = evaluate(&twstar, &completed, &EvalOptions::default()).unwrap();
        assert_eq!(r1.answers, r2.answers);
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(r2.answers, oracle.tuples());
    }

    #[test]
    fn does_not_inline_multi_definition_predicates() {
        let mut v = Vocab::new();
        let a = v.class("A");
        let b = v.class("B");
        let mut p = Program::new();
        let ea = p.edb_class(a, &v);
        let eb = p.edb_class(b, &v);
        let h = p.add_pred("H", 1, PredKind::Idb);
        let g = p.add_idb_with_params("G", 1, 1);
        for pred in [ea, eb] {
            p.add_clause(Clause {
                head: h,
                head_args: vec![CVar(0)],
                body: vec![BodyAtom::Pred(pred, vec![CVar(0)])],
                num_vars: 1,
            });
        }
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(h, vec![CVar(0)])],
            num_vars: 1,
        });
        let q = NdlQuery::new(p, g);
        let inlined = inline_single_definitions(&q, 2);
        assert_eq!(inlined.program.num_clauses(), 3, "H must survive");
    }

    #[test]
    fn repeated_head_variables_generate_equalities() {
        let mut v = Vocab::new();
        let r = v.prop("R");
        let mut p = Program::new();
        let er = p.edb_prop(r, &v);
        let diag = p.add_pred("Diag", 2, PredKind::Idb);
        let g = p.add_idb_with_params("G", 2, 2);
        // Diag(x, x) ← R(x, x); G(u, w) ← Diag(u, w).
        p.add_clause(Clause {
            head: diag,
            head_args: vec![CVar(0), CVar(0)],
            body: vec![BodyAtom::Pred(er, vec![CVar(0), CVar(0)])],
            num_vars: 1,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(diag, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let q = NdlQuery::new(p, g);
        let inlined = inline_single_definitions(&q, 2);
        let o = parse_ontology("Property R\n").unwrap();
        let d = parse_data("R(a, a)\nR(a, b)\n", &o).unwrap();
        let r1 = evaluate(&q, &d, &EvalOptions::default()).unwrap();
        let r2 = evaluate(&inlined, &d, &EvalOptions::default()).unwrap();
        assert_eq!(r1.answers, r2.answers);
        assert_eq!(r1.answers.len(), 1); // only (a, a)
    }
}
