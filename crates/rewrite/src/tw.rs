//! The `Tw` rewriting (Section 3.4, Theorem 13): skinny-reducible
//! NDL-rewritings of OMQs from `OMQ(∞, 1, ℓ)` — arbitrary ontologies with
//! tree-shaped CQs with `ℓ` leaves — evaluable in LOGCFL.
//!
//! The CQ is split at a balanced vertex `z_q` (Lemma 14); a predicate `G_q`
//! per subquery `q(x) ∈ 𝒬` has one clause that keeps `z_q` on an individual
//! (recursing into the subqueries hanging off `z_q`'s neighbours) and one
//! clause per tree witness `t` with `z_q ∈ t_i` and generator `̺` that folds
//! `q_t` into the anonymous part below an `A̺`-individual.

use crate::omq::{charge_clause, tick_rewrite, Omq, RewriteError, Rewriter};
use crate::tree_witness::{tree_witnesses_budgeted, TreeWitness};
use obda_budget::Budget;
use obda_chase::answer::{certain_answers_budgeted, CertainAnswers};
use obda_cq::gaifman::Gaifman;
use obda_cq::query::{Atom, Cq, Var};
use obda_cq::split::centroid;
use obda_ndl::program::{BodyAtom, CVar, Clause, NdlQuery, PredId, Program};
use obda_owlql::util::FxHashMap;
use std::collections::BTreeSet;

/// The `Tw` rewriter. Requires a connected tree-shaped CQ; the ontology may
/// have infinite depth.
#[derive(Debug, Clone, Copy)]
pub struct TwRewriter {
    /// Cap on tree-witness interior candidates per subquery.
    pub tree_witness_cap: usize,
}

impl Default for TwRewriter {
    fn default() -> Self {
        TwRewriter { tree_witness_cap: 1 << 16 }
    }
}

/// A subquery `q(x) ∈ 𝒬`: a set of atom indices of the host query plus its
/// answer variables.
type SubKey = (BTreeSet<usize>, BTreeSet<Var>);

struct Builder<'a> {
    omq: &'a Omq<'a>,
    program: Program,
    memo: FxHashMap<SubKey, PredId>,
    cap: usize,
    counter: usize,
    budget: &'a mut Budget,
}

impl Rewriter for TwRewriter {
    fn name(&self) -> &'static str {
        "Tw"
    }

    fn rewrite_budgeted(
        &self,
        omq: &Omq<'_>,
        budget: &mut Budget,
    ) -> Result<NdlQuery, RewriteError> {
        let q = omq.query;
        let g = Gaifman::new(q);
        if !g.is_connected() {
            return Err(RewriteError::NotConnected);
        }
        if !g.is_tree() {
            return Err(RewriteError::NotTreeShaped);
        }
        let mut builder = Builder {
            omq,
            program: Program::new(),
            memo: FxHashMap::default(),
            cap: self.tree_witness_cap,
            counter: 0,
            budget,
        };
        let all_atoms: BTreeSet<usize> = (0..q.num_atoms()).collect();
        let answers: BTreeSet<Var> = q.answer_vars().iter().copied().collect();
        let goal = builder.generate(&(all_atoms, answers))?;

        // Boolean queries additionally match entirely inside the anonymous
        // part: G_{q₀} ← A(z) whenever T, {A(a)} ⊨ q₀.
        if q.is_boolean() {
            let vocab = builder.omq.ontology.vocab().clone();
            for class in vocab.class_ids() {
                tick_rewrite(builder.budget, &builder.program)?;
                let mut data = obda_owlql::DataInstance::new();
                let a = data.constant("a");
                data.add_class_atom(class, a);
                let entailed = certain_answers_budgeted(omq.ontology, q, &data, builder.budget)
                    .map_err(|e| {
                        let clauses = builder.program.clauses().len();
                        let atoms = builder.program.clauses().iter().map(|c| c.body.len()).sum();
                        RewriteError::from_budget(e.exceeded, clauses, atoms)
                    })?;
                if entailed == CertainAnswers::Boolean(true) {
                    let p = builder.program.edb_class(class, &vocab);
                    charge_clause(builder.budget, &builder.program)?;
                    builder.program.add_clause(Clause {
                        head: goal,
                        head_args: vec![],
                        body: vec![BodyAtom::Pred(p, vec![CVar(0)])],
                        num_vars: 1,
                    });
                }
            }
        }
        Ok(NdlQuery::new(builder.program, goal))
    }
}

impl Builder<'_> {
    /// The sorted answer variables of a subquery, the head-argument order of
    /// its predicate.
    fn head_order(key: &SubKey) -> Vec<Var> {
        key.1.iter().copied().collect()
    }

    /// Generates (memoised) the predicate `G_q` for the subquery.
    fn generate(&mut self, key: &SubKey) -> Result<PredId, RewriteError> {
        if let Some(&p) = self.memo.get(key) {
            return Ok(p);
        }
        tick_rewrite(self.budget, &self.program)?;
        let name = format!("T{}", self.counter);
        self.counter += 1;
        let heads = Self::head_order(key);
        let pid = self.program.add_idb_with_params(name, heads.len(), heads.len());
        self.memo.insert(key.clone(), pid);

        let q = self.omq.query;
        let (atoms, answers) = key;
        let vars: BTreeSet<Var> = atoms.iter().flat_map(|&i| q.atoms()[i].vars()).collect();
        let existential: Vec<Var> = vars.iter().copied().filter(|v| !answers.contains(v)).collect();

        if existential.is_empty() {
            // Base case: G_q(x) ← q(x).
            self.emit_base_clause(pid, &heads, atoms)?;
            return Ok(pid);
        }

        // Choose the splitting vertex z_q (Lemma 14; prefer an existential
        // variable for two-variable subqueries).
        let zq = self.choose_zq(atoms, &vars, &existential);

        // Clause 1: z_q stays on an individual.
        self.emit_split_clause(pid, &heads, key, zq)?;

        // Clause 2: one clause per tree witness containing z_q, per
        // generator.
        let sub_cq = self.materialise_subquery(key);
        let sub_omq = Omq { ontology: self.omq.ontology, query: &sub_cq.cq };
        let tws = tree_witnesses_budgeted(&sub_omq, self.cap, self.budget).map_err(|e| {
            RewriteError::from_budget(
                e,
                self.program.num_clauses(),
                self.program.clauses().iter().map(|c| c.body.len()).sum(),
            )
        })?;
        for tw in tws {
            tick_rewrite(self.budget, &self.program)?;
            // Translate back to host variables.
            let interior: BTreeSet<Var> = tw.interior.iter().map(|&v| sub_cq.to_host[&v]).collect();
            let roots: BTreeSet<Var> = tw.roots.iter().map(|&v| sub_cq.to_host[&v]).collect();
            if !interior.contains(&zq) || roots.is_empty() {
                continue;
            }
            let tw_host = TreeWitness {
                roots,
                interior,
                atoms: tw.atoms.iter().map(|&i| sub_cq.atom_map[i]).collect(),
                generators: tw.generators.clone(),
            };
            self.emit_tree_witness_clauses(pid, &heads, key, &tw_host)?;
        }
        Ok(pid)
    }

    fn choose_zq(&self, atoms: &BTreeSet<usize>, vars: &BTreeSet<Var>, existential: &[Var]) -> Var {
        let q = self.omq.query;
        if vars.len() == 2 {
            return existential[0];
        }
        if vars.len() == 1 {
            // Guarded by the length check on the line above.
            #[allow(clippy::expect_used)]
            return *vars.iter().next().expect("nonempty");
        }
        // Centroid of the subquery's Gaifman tree. Build adjacency over the
        // subquery's variables (indices into a dense renumbering).
        let dense: Vec<Var> = vars.iter().copied().collect();
        let index: FxHashMap<Var, usize> = dense.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); dense.len()];
        for &i in atoms {
            if let Atom::Prop(_, u, v) = q.atoms()[i] {
                if u != v {
                    let (a, b) = (index[&u], index[&v]);
                    if !adj[a].contains(&b) {
                        adj[a].push(b);
                        adj[b].push(a);
                    }
                }
            }
        }
        let nodes: Vec<usize> = (0..dense.len()).collect();
        dense[centroid(&adj, &nodes)]
    }

    /// `G_q(x) ← q(x)` for subqueries without existential variables.
    fn emit_base_clause(
        &mut self,
        pid: PredId,
        heads: &[Var],
        atoms: &BTreeSet<usize>,
    ) -> Result<(), RewriteError> {
        let q = self.omq.query;
        let vocab = self.omq.ontology.vocab().clone();
        let mut cvars: FxHashMap<Var, CVar> = FxHashMap::default();
        let mut next = 0u32;
        let alloc = |v: Var, cvars: &mut FxHashMap<Var, CVar>, next: &mut u32| -> CVar {
            *cvars.entry(v).or_insert_with(|| {
                let c = CVar(*next);
                *next += 1;
                c
            })
        };
        for &v in heads {
            alloc(v, &mut cvars, &mut next);
        }
        let mut body = Vec::new();
        for &i in atoms {
            match q.atoms()[i] {
                Atom::Class(c, z) => {
                    let p = self.program.edb_class(c, &vocab);
                    let cz = alloc(z, &mut cvars, &mut next);
                    body.push(BodyAtom::Pred(p, vec![cz]));
                }
                Atom::Prop(p, z, z2) => {
                    let pe = self.program.edb_prop(p, &vocab);
                    let cz = alloc(z, &mut cvars, &mut next);
                    let cz2 = alloc(z2, &mut cvars, &mut next);
                    body.push(BodyAtom::Pred(pe, vec![cz, cz2]));
                }
            }
        }
        let head_args: Vec<CVar> = heads.iter().map(|&v| cvars[&v]).collect();
        charge_clause(self.budget, &self.program)?;
        self.program.add_clause(Clause { head: pid, head_args, body, num_vars: next });
        Ok(())
    }

    /// Clause 1: `G_q(x) ← S(z_q)-atoms ∧ ⋀ G_{qᵢ}(xᵢ)` over the subqueries
    /// hanging off `z_q`'s neighbours.
    fn emit_split_clause(
        &mut self,
        pid: PredId,
        heads: &[Var],
        key: &SubKey,
        zq: Var,
    ) -> Result<(), RewriteError> {
        let q = self.omq.query;
        let vocab = self.omq.ontology.vocab().clone();
        let (atoms, answers) = key;

        // Components of the subquery minus z_q.
        let vars: BTreeSet<Var> = atoms.iter().flat_map(|&i| q.atoms()[i].vars()).collect();
        let mut comp_of: FxHashMap<Var, usize> = FxHashMap::default();
        let mut comps: Vec<BTreeSet<Var>> = Vec::new();
        for &start in vars.iter().filter(|&&v| v != zq) {
            if comp_of.contains_key(&start) {
                continue;
            }
            let id = comps.len();
            let mut comp = BTreeSet::new();
            let mut stack = vec![start];
            comp_of.insert(start, id);
            while let Some(u) = stack.pop() {
                comp.insert(u);
                for &i in atoms.iter() {
                    if let Atom::Prop(_, a, b) = q.atoms()[i] {
                        for (x, y) in [(a, b), (b, a)] {
                            if x == u && y != zq && y != u && !comp_of.contains_key(&y) {
                                comp_of.insert(y, id);
                                stack.push(y);
                            }
                        }
                    }
                }
            }
            comps.push(comp);
        }

        // q_i per component: its atoms plus the edges between z_q and its
        // members; x_i = (x ∪ {z_q}) ∩ var(q_i).
        let mut child_keys: Vec<SubKey> = Vec::new();
        for comp in &comps {
            let sub_atoms: BTreeSet<usize> = atoms
                .iter()
                .copied()
                .filter(|&i| {
                    let avars: Vec<Var> = q.atoms()[i].vars().collect();
                    avars.iter().any(|v| comp.contains(v))
                        && avars.iter().all(|v| comp.contains(v) || *v == zq)
                })
                .collect();
            let mut sub_answers: BTreeSet<Var> = BTreeSet::new();
            let sub_vars: BTreeSet<Var> =
                sub_atoms.iter().flat_map(|&i| q.atoms()[i].vars()).collect();
            for &v in &sub_vars {
                if answers.contains(&v) || v == zq {
                    sub_answers.insert(v);
                }
            }
            child_keys.push((sub_atoms, sub_answers));
        }

        // Assemble the clause.
        let mut cvars: FxHashMap<Var, CVar> = FxHashMap::default();
        let mut next = 0u32;
        let alloc = |v: Var, cvars: &mut FxHashMap<Var, CVar>, next: &mut u32| -> CVar {
            *cvars.entry(v).or_insert_with(|| {
                let c = CVar(*next);
                *next += 1;
                c
            })
        };
        for &v in heads {
            alloc(v, &mut cvars, &mut next);
        }
        let czq = alloc(zq, &mut cvars, &mut next);
        let mut body = Vec::new();
        for &i in atoms.iter() {
            match q.atoms()[i] {
                Atom::Class(c, z) if z == zq => {
                    let p = self.program.edb_class(c, &vocab);
                    body.push(BodyAtom::Pred(p, vec![czq]));
                }
                Atom::Prop(p, a, b) if a == zq && b == zq => {
                    let pe = self.program.edb_prop(p, &vocab);
                    body.push(BodyAtom::Pred(pe, vec![czq, czq]));
                }
                _ => {}
            }
        }
        for child in &child_keys {
            let child_pid = self.generate(child)?;
            let args: Vec<CVar> =
                Self::head_order(child).iter().map(|&v| alloc(v, &mut cvars, &mut next)).collect();
            body.push(BodyAtom::Pred(child_pid, args));
        }
        // z_q might not occur in any atom or child (single-variable
        // subquery with no class atoms cannot happen, but keep a ⊤ guard).
        let bound: Vec<CVar> = body.iter().flat_map(|a| a.vars()).collect();
        let head_args: Vec<CVar> = heads.iter().map(|&v| cvars[&v]).collect();
        let top = self.program.edb_top();
        for &c in head_args.iter().chain([&czq]) {
            if !bound.contains(&c) {
                body.push(BodyAtom::Pred(top, vec![c]));
            }
        }
        charge_clause(self.budget, &self.program)?;
        self.program.add_clause(Clause { head: pid, head_args, body, num_vars: next });
        Ok(())
    }

    /// Clause 2: `G_q(x) ← A̺(z₀) ∧ (z = z₀ …) ∧ ⋀ G_{q^t_k}(x^t_k)`.
    fn emit_tree_witness_clauses(
        &mut self,
        pid: PredId,
        heads: &[Var],
        key: &SubKey,
        tw: &TreeWitness,
    ) -> Result<(), RewriteError> {
        let q = self.omq.query;
        let vocab = self.omq.ontology.vocab().clone();
        let (atoms, answers) = key;
        let rest: BTreeSet<usize> = atoms.difference(&tw.atoms).copied().collect();

        // Connected components of the remainder.
        let mut comp_keys: Vec<SubKey> = Vec::new();
        let mut assigned: BTreeSet<usize> = BTreeSet::new();
        for &seed in &rest {
            if assigned.contains(&seed) {
                continue;
            }
            // Grow a component by shared variables.
            let mut comp: BTreeSet<usize> = BTreeSet::from([seed]);
            let mut comp_vars: BTreeSet<Var> = q.atoms()[seed].vars().collect();
            loop {
                let mut grew = false;
                for &i in &rest {
                    if !comp.contains(&i) && q.atoms()[i].vars().any(|v| comp_vars.contains(&v)) {
                        comp.insert(i);
                        comp_vars.extend(q.atoms()[i].vars());
                        grew = true;
                    }
                }
                if !grew {
                    break;
                }
            }
            assigned.extend(comp.iter().copied());
            let sub_answers: BTreeSet<Var> = comp_vars
                .iter()
                .copied()
                .filter(|v| answers.contains(v) || tw.roots.contains(v))
                .collect();
            comp_keys.push((comp, sub_answers));
        }

        // Callers filter out root-less tree witnesses before this point.
        #[allow(clippy::expect_used)]
        let z0 = *tw.roots.iter().next().expect("t_r nonempty");
        for &rho in &tw.generators {
            tick_rewrite(self.budget, &self.program)?;
            let a_rho = self.omq.ontology.exists_class(rho);
            let mut cvars: FxHashMap<Var, CVar> = FxHashMap::default();
            let mut next = 0u32;
            let alloc = |v: Var, cvars: &mut FxHashMap<Var, CVar>, next: &mut u32| -> CVar {
                *cvars.entry(v).or_insert_with(|| {
                    let c = CVar(*next);
                    *next += 1;
                    c
                })
            };
            for &v in heads {
                alloc(v, &mut cvars, &mut next);
            }
            let cz0 = alloc(z0, &mut cvars, &mut next);
            let p = self.program.edb_class(a_rho, &vocab);
            let mut body = vec![BodyAtom::Pred(p, vec![cz0])];
            for &z in tw.roots.iter().filter(|&&z| z != z0) {
                let cz = alloc(z, &mut cvars, &mut next);
                body.push(BodyAtom::Eq(cz, cz0));
            }
            for child in &comp_keys {
                let child_pid = self.generate(child)?;
                let args: Vec<CVar> = Self::head_order(child)
                    .iter()
                    .map(|&v| alloc(v, &mut cvars, &mut next))
                    .collect();
                body.push(BodyAtom::Pred(child_pid, args));
            }
            let head_args: Vec<CVar> = heads.iter().map(|&v| cvars[&v]).collect();
            charge_clause(self.budget, &self.program)?;
            self.program.add_clause(Clause { head: pid, head_args, body, num_vars: next });
        }
        Ok(())
    }

    /// Builds a standalone [`Cq`] for a subquery, with maps in both
    /// directions.
    fn materialise_subquery(&self, key: &SubKey) -> SubCq {
        let q = self.omq.query;
        let (atoms, answers) = key;
        let mut cq = Cq::new();
        let mut to_host: FxHashMap<Var, Var> = FxHashMap::default();
        let mut from_host: FxHashMap<Var, Var> = FxHashMap::default();
        let lookup = |cq: &mut Cq,
                      to_host: &mut FxHashMap<Var, Var>,
                      from_host: &mut FxHashMap<Var, Var>,
                      v: Var|
         -> Var {
            if let Some(&sv) = from_host.get(&v) {
                return sv;
            }
            let sv = cq.var(q.var_name(v));
            from_host.insert(v, sv);
            to_host.insert(sv, v);
            sv
        };
        for &v in answers {
            let sv = lookup(&mut cq, &mut to_host, &mut from_host, v);
            cq.add_answer_var(sv);
        }
        let mut atom_map = Vec::new();
        for &i in atoms {
            atom_map.push(i);
            match q.atoms()[i] {
                Atom::Class(c, z) => {
                    let sz = lookup(&mut cq, &mut to_host, &mut from_host, z);
                    cq.add_class_atom(c, sz);
                }
                Atom::Prop(p, z, z2) => {
                    let sz = lookup(&mut cq, &mut to_host, &mut from_host, z);
                    let sz2 = lookup(&mut cq, &mut to_host, &mut from_host, z2);
                    cq.add_prop_atom(p, sz, sz2);
                }
            }
        }
        SubCq { cq, to_host, atom_map }
    }
}

struct SubCq {
    cq: Cq,
    to_host: FxHashMap<Var, Var>,
    atom_map: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::omq::rewrite_arbitrary;
    use obda_chase::certain_answers;
    use obda_cq::parse_cq;
    use obda_ndl::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};

    fn example_11_ontology() -> obda_owlql::Ontology {
        parse_ontology(
            "P SubPropertyOf S\n\
             P SubPropertyOf R-\n",
        )
        .unwrap()
    }

    #[test]
    fn matches_oracle_on_example_8() {
        let o = example_11_ontology();
        let q = parse_cq(
            "q(x0, x7) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6), R(x6, x7)",
            &o,
        )
        .unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tx = o.taxonomy();
        let rw = rewrite_arbitrary(&TwRewriter::default(), &omq, &tx).unwrap();
        let d = parse_data("P(w1, a)\nR(a, b)\nP(w2, b)\nR(b, c)\nR(c, e)\nR(e, f)\nS(f, g)\n", &o)
            .unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
        assert!(!res.answers.is_empty());
    }

    #[test]
    fn unbounded_depth_ontology() {
        // Tw is the only rewriter that handles infinite-depth ontologies.
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf exists P\n\
             exists P- SubClassOf B\n",
        )
        .unwrap();
        let q = parse_cq("q(x) :- P(x, y), P(y, z), B(z)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tx = o.taxonomy();
        let rw = rewrite_arbitrary(&TwRewriter::default(), &omq, &tx).unwrap();
        let d = parse_data("A(u)\nP(v, w)\nP(w, r)\nB(r)\nB(s)\n", &o).unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        let oracle = certain_answers(&o, &q, &d);
        assert_eq!(res.answers, oracle.tuples());
        // u matches via the infinite chain; v via data; w and r by folding
        // the tail into the anonymous part (∃P⁻ ⊑ ∃P and ∃P⁻ ⊑ B).
        assert_eq!(res.answers.len(), 4, "u, v, w, r");
    }

    #[test]
    fn boolean_query_fully_anonymous_match() {
        let o = parse_ontology(
            "A SubClassOf exists P\n\
             exists P- SubClassOf exists S\n",
        )
        .unwrap();
        // Both variables existential: the match sits entirely below the
        // A-individual, so the Boolean top-clauses G ← A(z) matter.
        let q = parse_cq("q() :- P(x, y), S(y, z)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        let tx = o.taxonomy();
        let rw = rewrite_arbitrary(&TwRewriter::default(), &omq, &tx).unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let res = evaluate(&rw, &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 1);
        let d2 = parse_data("S(a, b)\n", &o).unwrap();
        let res2 = evaluate(&rw, &d2, &EvalOptions::default()).unwrap();
        assert!(res2.answers.is_empty());
    }

    #[test]
    fn rejects_cyclic_query() {
        let o = example_11_ontology();
        let q = parse_cq("q() :- R(x, y), R(y, z), R(z, x)", &o).unwrap();
        let omq = Omq { ontology: &o, query: &q };
        assert_eq!(
            TwRewriter::default().rewrite_complete(&omq).unwrap_err(),
            RewriteError::NotTreeShaped
        );
    }
}
