//! Cost-based join planning for the NDL evaluators.
//!
//! The seed engines evaluated clause bodies in the greedy
//! `eval::join_order`: equalities as soon as a side is bound,
//! then the predicate atom with the most bound variables. That order is
//! blind to cardinalities — a probe into a 100k-row relation and a probe
//! into a 10-row relation look identical. This module replaces it with
//! plans costed from [`crate::stats::RelStats`]:
//!
//! * **Estimates.** Every access is scored by estimated result size and
//!   access-path cost under independence and uniformity assumptions: a
//!   probe of column `c` matches `rows / distinct[c]` rows per key, a
//!   constrained (bound or repeated) position multiplies selectivity
//!   `1/distinct`, equalities filter by fixed factors. IDB relations do
//!   not exist at planning time; their cardinalities are propagated
//!   bottom-up in topological order (the estimated output size of a
//!   clause feeds the estimates of every clause consuming its head), so
//!   a plan is a pure function of `(query, database)` — deterministic,
//!   cacheable per database (see `Database::id`), and identical for
//!   `explain` and both engines.
//! * **Search.** Greedy: equalities are applied as soon as applicable,
//!   then the predicate atom minimising `step cost + estimated output`
//!   is appended. For bodies with ≤ 8 predicate atoms the greedy result
//!   is refined by an exact dynamic program over atom subsets
//!   (Selinger-style, 2^k states) and the cheaper plan wins.
//! * **Access paths.** Each predicate atom is pinned to a typed
//!   [`PlannedAccess`]: full scan, hash-index probe on the cheapest
//!   bound column (index build cost counted unless already built), or a
//!   binary-search merge on column 0 when the relation is sorted on it
//!   (snapshot segments are) — the merge needs no index at all.
//!
//! The planner only *orders* atoms and picks access paths; the batched
//! kernel in [`crate::eval`] re-verifies every position against every
//! candidate row, so a misestimated plan can be slow but never wrong —
//! the differential proptests (planned ≡ syntactic ≡ reference) hold
//! regardless of how skewed the data is.

use crate::analysis::topological_order;
use crate::eval::join_order;
use crate::program::{BodyAtom, CVar, Clause, NdlQuery, PredId, PredKind, Program};
use crate::storage::Database;
use obda_owlql::util::FxHashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Access path the kernel uses for one planned step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannedAccess {
    /// An equality atom: filter or bind, no relation access.
    Filter,
    /// Full scan of the atom's relation (chunkable across workers when
    /// it is the first step).
    Scan,
    /// Probe of the lazy hash index on the given argument position.
    Probe {
        /// The argument position whose index is probed.
        column: usize,
    },
    /// Binary-search merge on column 0 of a relation sorted on it; no
    /// hash index is built.
    SortMerge,
}

/// The plan of one clause body: execution order, access path and
/// estimated intermediate cardinality per step.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinPlan {
    /// Body atom indices in execution order.
    pub order: Vec<usize>,
    /// Access path per step, parallel to `order`.
    pub access: Vec<PlannedAccess>,
    /// Estimated binding-batch size *after* each step, parallel to
    /// `order`; empty for uncosted (syntactic) plans.
    pub est_rows: Vec<f64>,
    /// Estimated rows emitted to the head (before deduplication).
    pub est_out: f64,
    /// Total estimated access cost (internal units; comparable only
    /// between plans of the same clause).
    pub cost: f64,
    /// Whether the plan was costed from statistics (`false` = syntactic
    /// fallback replicating the seed engine's greedy order).
    pub costed: bool,
}

/// Plans for every clause of a query, indexed by clause position in
/// `program.clauses()`.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// Per-clause plan, or the range-restriction error for unsafe
    /// clauses (surfaced only if the clause is actually evaluated).
    pub clauses: Vec<Result<JoinPlan, String>>,
    /// Estimated rows per predicate (exact for EDB, propagated bottom-up
    /// for IDB); zeros when uncosted.
    pub est_pred_rows: Vec<f64>,
    /// Whether the plans were costed from statistics.
    pub costed: bool,
}

impl QueryPlan {
    /// The plan's total estimated work in cost-model units (row accesses
    /// plus emitted rows, summed over every plannable clause) — the
    /// admission-control signal: callers calibrate observed latency per
    /// unit and refuse requests whose estimate cannot fit the remaining
    /// deadline. `None` when the plan fell back to the syntactic order
    /// (no statistics, or a recursive program), whose costs are not
    /// comparable across queries.
    pub fn total_cost(&self) -> Option<f64> {
        if !self.costed {
            return None;
        }
        let total: f64 = self
            .clauses
            .iter()
            .filter_map(|c| c.as_ref().ok())
            .map(|p| if p.costed { p.cost + p.est_out } else { 0.0 })
            .sum();
        total.is_finite().then_some(total)
    }
}

/// Total query plans built in this process (monotone; tests assert
/// caching with it).
static PLANS_BUILT: AtomicUsize = AtomicUsize::new(0);

/// Total query plans built in this process (monotone counter).
pub fn plans_built() -> usize {
    PLANS_BUILT.load(Ordering::Relaxed)
}

/// What the planner knows about one predicate's relation.
struct AtomInfo {
    rows: f64,
    distinct: Vec<f64>,
    sorted_col0: bool,
    indexed: Vec<bool>,
}

fn atom_info(program: &Program, db: &Database, est_pred_rows: &[f64], p: PredId) -> AtomInfo {
    let arity = program.pred(p).arity;
    match program.pred(p).kind {
        PredKind::Idb => {
            // Not materialised yet: use the bottom-up estimate and assume
            // every column is key-like (each key matches ~1 row). Index
            // builds on IDB relations always cost — they cannot have been
            // built before the stratum materialises them.
            let rows = est_pred_rows[p.0 as usize].max(0.0);
            AtomInfo {
                rows,
                distinct: vec![rows.max(1.0); arity],
                sorted_col0: false,
                indexed: vec![false; arity],
            }
        }
        kind => {
            let rel = db.relation(kind);
            let s = rel.stats();
            AtomInfo {
                rows: s.rows as f64,
                distinct: s.distinct.iter().map(|&d| d as f64).collect(),
                sorted_col0: s.sorted_col0,
                indexed: (0..arity).map(|c| rel.has_index(c)).collect(),
            }
        }
    }
}

/// Selectivity of an equality filter between two bound variables.
const EQ_FILTER_SEL: f64 = 0.25;
/// Selectivity of comparing a bound variable against a constant.
const EQ_CONST_SEL: f64 = 0.1;

/// Estimates one predicate step from batch size `n`: the cheapest access
/// path, its cost, and the estimated batch size afterwards.
fn estimate_pred_step(
    args: &[CVar],
    info: &AtomInfo,
    bound: &FxHashSet<CVar>,
    n: f64,
) -> (PlannedAccess, f64, f64) {
    let mut sel_all = 1.0;
    let mut bound_cols: Vec<usize> = Vec::new();
    for (k, &v) in args.iter().enumerate() {
        let is_bound = bound.contains(&v);
        if is_bound {
            bound_cols.push(k);
        }
        if is_bound || args[..k].contains(&v) {
            sel_all /= info.distinct.get(k).copied().unwrap_or(1.0).max(1.0);
        }
    }
    let out = n * info.rows * sel_all;
    let mut best = (PlannedAccess::Scan, n * info.rows.max(1.0));
    for &k in &bound_cols {
        let fetched = info.rows / info.distinct[k].max(1.0);
        let build = if info.indexed[k] { 0.0 } else { info.rows };
        let cost = n * (1.0 + fetched) + build;
        if cost < best.1 {
            best = (PlannedAccess::Probe { column: k }, cost);
        }
    }
    if info.sorted_col0 && bound_cols.contains(&0) {
        let fetched = info.rows / info.distinct[0].max(1.0);
        let cost = n * ((info.rows + 2.0).log2() + fetched);
        if cost < best.1 {
            best = (PlannedAccess::SortMerge, cost);
        }
    }
    (best.0, best.1, out)
}

/// Incremental planning state shared by the greedy and DP searches.
#[derive(Clone)]
struct PlanState {
    order: Vec<usize>,
    access: Vec<PlannedAccess>,
    est: Vec<f64>,
    bound: FxHashSet<CVar>,
    n: f64,
    cost: f64,
    pending_eqs: Vec<usize>,
}

impl PlanState {
    fn new(eqs: Vec<usize>) -> Self {
        PlanState {
            order: Vec::new(),
            access: Vec::new(),
            est: Vec::new(),
            bound: FxHashSet::default(),
            n: 1.0,
            cost: 0.0,
            pending_eqs: eqs,
        }
    }

    /// Applies every currently-applicable equality (a constant side is
    /// always applicable), eagerly: an equality never grows the batch,
    /// so taking it immediately is never worse.
    fn apply_ready_eqs(&mut self, clause: &Clause) {
        loop {
            let Some(pos) = self.pending_eqs.iter().position(|&i| match &clause.body[i] {
                BodyAtom::Eq(a, b) => self.bound.contains(a) || self.bound.contains(b),
                BodyAtom::EqConst(..) => true,
                BodyAtom::Pred(..) => false,
            }) else {
                return;
            };
            let i = self.pending_eqs.remove(pos);
            let out = match &clause.body[i] {
                BodyAtom::Eq(a, b) => {
                    if self.bound.contains(a) && self.bound.contains(b) {
                        self.n * EQ_FILTER_SEL
                    } else {
                        self.n
                    }
                }
                BodyAtom::EqConst(a, _) => {
                    if self.bound.contains(a) {
                        self.n * EQ_CONST_SEL
                    } else {
                        self.n
                    }
                }
                BodyAtom::Pred(..) => unreachable!("pending_eqs holds equality atoms only"),
            };
            self.cost += self.n;
            self.n = out;
            for v in clause.body[i].vars() {
                self.bound.insert(v);
            }
            self.order.push(i);
            self.access.push(PlannedAccess::Filter);
            self.est.push(out);
        }
    }

    fn apply_pred(
        &mut self,
        clause: &Clause,
        i: usize,
        access: PlannedAccess,
        cost: f64,
        out: f64,
    ) {
        self.cost += cost;
        self.n = out;
        for v in clause.body[i].vars() {
            self.bound.insert(v);
        }
        self.order.push(i);
        self.access.push(access);
        self.est.push(out);
    }

    fn finish(self, clause: &Clause) -> Result<JoinPlan, String> {
        if !self.pending_eqs.is_empty() {
            return Err("equality between variables that are never bound".into());
        }
        debug_assert_eq!(self.order.len(), clause.body.len());
        Ok(JoinPlan {
            order: self.order,
            access: self.access,
            est_rows: self.est,
            est_out: self.n,
            cost: self.cost,
            costed: true,
        })
    }
}

fn pred_args(clause: &Clause, i: usize) -> &[CVar] {
    match &clause.body[i] {
        BodyAtom::Pred(_, args) => args,
        _ => unreachable!("pred atom index"),
    }
}

/// Greedy costed plan: repeatedly take the predicate atom minimising
/// `step cost + estimated output`, interleaving ready equalities.
fn plan_greedy(
    clause: &Clause,
    preds: &[usize],
    infos: &[Option<AtomInfo>],
    eqs: Vec<usize>,
) -> Result<JoinPlan, String> {
    let mut st = PlanState::new(eqs);
    st.apply_ready_eqs(clause);
    let mut remaining: Vec<usize> = preds.to_vec();
    while !remaining.is_empty() {
        let mut best: Option<(usize, PlannedAccess, f64, f64, f64)> = None;
        for (pos, &i) in remaining.iter().enumerate() {
            let info = infos[i].as_ref().unwrap_or_else(|| unreachable!("pred atoms have info"));
            let (access, cost, out) =
                estimate_pred_step(pred_args(clause, i), info, &st.bound, st.n);
            let score = cost + out;
            if best.is_none_or(|(_, _, _, _, s)| score < s) {
                best = Some((pos, access, cost, out, score));
            }
        }
        let (pos, access, cost, out, _) =
            best.unwrap_or_else(|| unreachable!("non-empty remaining"));
        let i = remaining.remove(pos);
        st.apply_pred(clause, i, access, cost, out);
        st.apply_ready_eqs(clause);
    }
    st.finish(clause)
}

/// Exact subset DP over the predicate atoms (Selinger-style): state =
/// set of joined atoms, value = cheapest `PlanState` reaching it.
/// Equalities are folded in eagerly after every transition, exactly as
/// in the greedy search, so any DP order is executable by the kernel.
fn plan_dp(
    clause: &Clause,
    preds: &[usize],
    infos: &[Option<AtomInfo>],
    eqs: Vec<usize>,
) -> Result<JoinPlan, String> {
    let k = preds.len();
    let full = (1usize << k) - 1;
    let mut dp: Vec<Option<PlanState>> = vec![None; full + 1];
    let mut init = PlanState::new(eqs);
    init.apply_ready_eqs(clause);
    dp[0] = Some(init);
    for mask in 0..=full {
        let Some(state) = dp[mask].clone() else { continue };
        for (j, &i) in preds.iter().enumerate() {
            if mask & (1 << j) != 0 {
                continue;
            }
            let info = infos[i].as_ref().unwrap_or_else(|| unreachable!("pred atoms have info"));
            let (access, cost, out) =
                estimate_pred_step(pred_args(clause, i), info, &state.bound, state.n);
            let mut next = state.clone();
            next.apply_pred(clause, i, access, cost, out);
            next.apply_ready_eqs(clause);
            let slot = &mut dp[mask | (1 << j)];
            if slot.as_ref().is_none_or(|s| next.cost < s.cost) {
                *slot = Some(next);
            }
        }
    }
    match dp[full].take() {
        Some(st) => st.finish(clause),
        None => Err("equality between variables that are never bound".into()),
    }
}

/// Bodies up to this many predicate atoms get the exact DP refinement.
const DP_MAX_PREDS: usize = 8;

fn plan_clause_costed(
    program: &Program,
    db: &Database,
    est_pred_rows: &[f64],
    clause: &Clause,
) -> Result<JoinPlan, String> {
    let mut preds = Vec::new();
    let mut eqs = Vec::new();
    let mut infos: Vec<Option<AtomInfo>> = Vec::with_capacity(clause.body.len());
    for (i, atom) in clause.body.iter().enumerate() {
        match atom {
            BodyAtom::Pred(p, _) => {
                preds.push(i);
                infos.push(Some(atom_info(program, db, est_pred_rows, *p)));
            }
            _ => {
                eqs.push(i);
                infos.push(None);
            }
        }
    }
    let greedy = plan_greedy(clause, &preds, &infos, eqs.clone());
    if preds.len() < 2 || preds.len() > DP_MAX_PREDS {
        return greedy;
    }
    let dp = plan_dp(clause, &preds, &infos, eqs);
    match (greedy, dp) {
        (Ok(g), Ok(d)) => Ok(if d.cost + d.est_out < g.cost + g.est_out { d } else { g }),
        (Ok(g), Err(_)) => Ok(g),
        (Err(_), Ok(d)) => Ok(d),
        (Err(e), Err(_)) => Err(e),
    }
}

/// The uncosted plan replicating the seed engines exactly: greedy
/// `join_order`, probe on the first bound column, scan otherwise.
pub fn syntactic_plan(clause: &Clause) -> Result<JoinPlan, String> {
    let order = join_order(clause)?;
    let mut bound: FxHashSet<CVar> = FxHashSet::default();
    let mut access = Vec::with_capacity(order.len());
    for &i in &order {
        match &clause.body[i] {
            BodyAtom::Pred(_, args) => {
                let col = (0..args.len()).find(|&k| bound.contains(&args[k]));
                access.push(match col {
                    Some(column) => PlannedAccess::Probe { column },
                    None => PlannedAccess::Scan,
                });
            }
            BodyAtom::Eq(..) | BodyAtom::EqConst(..) => access.push(PlannedAccess::Filter),
        }
        for v in clause.body[i].vars() {
            bound.insert(v);
        }
    }
    Ok(JoinPlan { order, access, est_rows: Vec::new(), est_out: 0.0, cost: 0.0, costed: false })
}

/// Cost-based plans for every clause, statistics drawn from `db`.
/// A pure function of `(query, db)`: callers may cache the result per
/// database (see `Database::id`) and share it across executions.
pub fn plan_query(query: &NdlQuery, db: &Database) -> QueryPlan {
    PLANS_BUILT.fetch_add(1, Ordering::Relaxed);
    let program = &query.program;
    let nclauses = program.clauses().len();
    let mut est_pred_rows = vec![0.0f64; program.num_preds()];
    for p in program.pred_ids() {
        match program.pred(p).kind {
            PredKind::Idb => {}
            kind => est_pred_rows[p.0 as usize] = db.relation(kind).len() as f64,
        }
    }
    let Some(topo) = topological_order(program) else {
        // Recursive programs are rejected by the engines before planning;
        // degrade to syntactic plans rather than panic.
        return QueryPlan {
            clauses: program.clauses().iter().map(syntactic_plan).collect(),
            est_pred_rows,
            costed: false,
        };
    };
    let mut slots: Vec<Option<Result<JoinPlan, String>>> = vec![None; nclauses];
    for p in topo {
        if !program.is_idb(p) {
            continue;
        }
        let mut total = 0.0;
        for (ci, clause) in program.clauses().iter().enumerate() {
            if clause.head != p {
                continue;
            }
            let plan = plan_clause_costed(program, db, &est_pred_rows, clause);
            if let Ok(jp) = &plan {
                total += jp.est_out;
            }
            slots[ci] = Some(plan);
        }
        est_pred_rows[p.0 as usize] = total;
    }
    let clauses = slots
        .into_iter()
        .zip(program.clauses())
        .map(|(s, c)| s.unwrap_or_else(|| syntactic_plan(c)))
        .collect();
    QueryPlan { clauses, est_pred_rows, costed: true }
}

/// Uncosted plans for every clause (the seed engines' behaviour); needs
/// no database.
pub fn syntactic_query_plan(query: &NdlQuery) -> QueryPlan {
    PLANS_BUILT.fetch_add(1, Ordering::Relaxed);
    let program = &query.program;
    QueryPlan {
        clauses: program.clauses().iter().map(syntactic_plan).collect(),
        est_pred_rows: vec![0.0; program.num_preds()],
        costed: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_owlql::abox::ConstId;
    use obda_owlql::parser::{parse_data, parse_ontology};

    /// R is large (one hub key), S is small, and both atoms share both
    /// variables — syntactically a dead tie that the seed heuristic
    /// breaks towards the *last* atom (the 400-row R), while the costed
    /// plan must start from the 2-row S and probe R.
    fn skew_setup() -> (NdlQuery, Database, usize) {
        let o = parse_ontology("Property R\nProperty S\n").unwrap();
        let mut text = String::new();
        for i in 0..400 {
            text.push_str(&format!("R(h, b{i})\n"));
        }
        text.push_str("S(h, b3)\nS(h, b7)\n");
        let d = parse_data(&text, &o).unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let s = p.edb_prop(v.get_prop("S").unwrap(), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // G(x) ← S(x, y) ∧ R(x, y).
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![
                BodyAtom::Pred(s, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
            ],
            num_vars: 2,
        });
        let db = Database::new(&d);
        (NdlQuery::new(p, g), db, 0)
    }

    #[test]
    fn costed_plan_starts_from_the_small_relation() {
        let (q, db, ci) = skew_setup();
        let plan = plan_query(&q, &db);
        assert!(plan.costed);
        let jp = plan.clauses[ci].as_ref().unwrap();
        // Atom 0 is S (2 rows): scan it, then probe R on its selective
        // column 1 (column 0 is the single hub key, so probing it would
        // fetch all 400 rows).
        assert_eq!(jp.order, vec![0, 1]);
        assert_eq!(jp.access[0], PlannedAccess::Scan);
        assert_eq!(jp.access[1], PlannedAccess::Probe { column: 1 });
        assert_eq!(jp.est_rows.len(), 2);
        assert!(jp.est_out > 0.0);
        // The syntactic tie-break starts from R instead.
        let syn = syntactic_plan(&q.program.clauses()[ci]).unwrap();
        assert_eq!(syn.order, vec![1, 0]);
        assert!(!syn.costed);
    }

    #[test]
    fn total_cost_sums_costed_clauses_and_refuses_syntactic_plans() {
        let (q, db, ci) = skew_setup();
        let plan = plan_query(&q, &db);
        let jp = plan.clauses[ci].as_ref().unwrap();
        let total = plan.total_cost().expect("costed plan must report work");
        assert!(total > 0.0);
        assert_eq!(total, jp.cost + jp.est_out);
        let syn = syntactic_query_plan(&q);
        assert_eq!(syn.total_cost(), None);
    }

    #[test]
    fn idb_estimates_propagate_bottom_up() {
        let o = parse_ontology("Property R\n").unwrap();
        let d = parse_data("R(a, b)\nR(b, c)\nR(c, d)\n", &o).unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let h = p.add_pred("H", 2, PredKind::Idb);
        let g = p.add_pred("G", 2, PredKind::Idb);
        p.add_clause(Clause {
            head: h,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(h, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let db = Database::new(&d);
        let plan = plan_query(&NdlQuery::new(p, g), &db);
        assert_eq!(plan.est_pred_rows[r.0 as usize], 3.0);
        assert_eq!(plan.est_pred_rows[h.0 as usize], 3.0, "copy of R");
        assert_eq!(plan.est_pred_rows[g.0 as usize], 3.0, "copy of H");
    }

    #[test]
    fn sorted_snapshot_relations_get_the_merge_path() {
        use crate::storage::Relation;
        use obda_owlql::util::FxHashMap;
        // A sorted-on-col0 property relation built the snapshot way.
        let o = parse_ontology("Class A\nProperty R\n").unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let v = o.vocab();
        let scanned = Database::new(&d);
        let mut props = FxHashMap::default();
        let col0: Vec<u32> = (0..10_000u32).map(|i| i / 4).collect();
        let col1: Vec<u32> = (0..10_000u32).collect();
        props.insert(v.get_prop("R").unwrap(), Relation::from_sorted_columns(2, &[col0, col1]));
        let mut classes = FxHashMap::default();
        for (c, r) in scanned.class_relations() {
            classes
                .insert(c, Relation::from_sorted_columns(1, &[r.rows().map(|x| x[0]).collect()]));
        }
        let universe = Relation::from_sorted_columns(1, &[vec![0]]);
        let db = Database::from_relations(classes, props, universe, 1);

        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // G(y) ← A(x) ∧ R(x, y): x is bound when R is reached, R is
        // sorted on column 0 and large — the merge path must win over
        // building a fresh hash index.
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(1)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)]), BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let plan = plan_query(&NdlQuery::new(p, g), &db);
        let jp = plan.clauses[0].as_ref().unwrap();
        assert_eq!(jp.order, vec![0, 1]);
        assert_eq!(jp.access[1], PlannedAccess::SortMerge);
    }

    #[test]
    fn unsafe_clause_yields_error_not_panic() {
        let o = parse_ontology("Class A\n").unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(1)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)]), BodyAtom::Eq(CVar(1), CVar(2))],
            num_vars: 3,
        });
        let db = Database::new(&d);
        let plan = plan_query(&NdlQuery::new(p, g), &db);
        assert!(plan.clauses[0].is_err());
    }

    #[test]
    fn all_equality_body_plans_from_the_constant() {
        let mut p = Program::new();
        let g = p.add_pred("G", 2, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::EqConst(CVar(0), ConstId(3)), BodyAtom::Eq(CVar(1), CVar(0))],
            num_vars: 2,
        });
        let o = parse_ontology("Class A\n").unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let db = Database::new(&d);
        let plan = plan_query(&NdlQuery::new(p, g), &db);
        let jp = plan.clauses[0].as_ref().unwrap();
        assert_eq!(jp.order, vec![0, 1]);
        assert_eq!(jp.access, vec![PlannedAccess::Filter, PlannedAccess::Filter]);
    }

    #[test]
    fn plans_are_deterministic() {
        let (q, db, _) = skew_setup();
        let a = plan_query(&q, &db);
        let b = plan_query(&q, &db);
        assert_eq!(a.clauses, b.clauses);
        assert_eq!(a.est_pred_rows, b.est_pred_rows);
    }
}
