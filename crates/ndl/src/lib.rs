#![warn(missing_docs)]

//! # obda-ndl
//!
//! Nonrecursive datalog (NDL) for ontology-mediated query rewriting:
//!
//! * program representation with OWL 2 QL data-vocabulary EDB bindings
//!   ([`program`]);
//! * structural analysis — nonrecursiveness, depth, linearity, width,
//!   weight functions, skinny depth ([`analysis`], Section 3.1 of Bienvenu
//!   et al., PODS 2017);
//! * the Huffman-based skinny transformation of Lemma 5 ([`skinny`]);
//! * the `*`-transformation to arbitrary data instances and Lemma 3's
//!   linearity-preserving variant ([`star`]);
//! * a shared indexed relation storage layer ([`storage`]): columnar
//!   relations with lazy per-column hash indexes, loaded once per data
//!   instance into a [`Database`] reused across evaluations;
//! * two evaluators over that storage: a bottom-up materialising engine
//!   ([`eval`], the stand-in for RDFox in the experiments, using
//!   index-nested-loop joins) and Theorem 2's reachability-based evaluator
//!   for linear programs ([`linear_eval`]);
//! * the original per-call hash-set engine ([`mod@reference`]), kept for
//!   differential tests and as the benchmark baseline;
//! * a goal-directed relevance-pruning pass ([`relevance`]) and a
//!   parallel stratum-scheduled engine ([`engine`]) combining pruning
//!   with scoped-thread evaluation under a shared [`obda_budget`]
//!   allowance;
//! * per-relation cardinality statistics ([`stats`]) feeding a
//!   cost-based clause planner ([`planner`]) that both engines consume:
//!   greedy cost-ordered joins with a dynamic-programming refinement for
//!   small clauses, choosing per-atom access paths (scan, hash probe,
//!   sorted merge) over the columnar storage.

/// Fault-injection shim: with the `faults` feature the substrates call
/// [`obda_faults::inject`] at registered sites; without it every site is
/// an empty inline function the optimiser erases.
pub(crate) mod fault {
    #[cfg(feature = "faults")]
    pub use obda_faults::{inject, site};

    #[cfg(not(feature = "faults"))]
    #[inline(always)]
    pub fn inject(_site: &'static str) {}

    #[cfg(not(feature = "faults"))]
    pub mod site {
        pub const STORAGE_INSERT: &str = "ndl::storage::insert";
        pub const STORAGE_INDEX_BUILD: &str = "ndl::storage::index_build";
        pub const ENGINE_CLAUSE_TASK: &str = "ndl::engine::clause_task";
    }
}

pub mod analysis;
pub mod engine;
pub mod eval;
pub mod explain;
pub mod linear_eval;
pub mod planner;
pub mod program;
pub mod reference;
pub mod relevance;
pub mod skinny;
pub mod star;
pub mod stats;
pub mod storage;

pub use analysis::{analyze, Analysis};
pub use engine::{
    evaluate_engine_on, evaluate_engine_on_budgeted, evaluate_engine_on_traced,
    evaluate_pruned_planned_on_traced, EngineConfig,
};
pub use eval::{
    evaluate, evaluate_on, evaluate_on_budgeted, evaluate_on_traced, EvalError, EvalOptions,
    EvalResult, EvalStats,
};
pub use explain::{
    explain_plan, explain_plan_executed, explain_plan_on, explain_plan_with, AtomAccess,
    ClausePlan, PlanExplanation, StratumPlan,
};
pub use linear_eval::{evaluate_linear, evaluate_linear_on, evaluate_linear_on_budgeted};
pub use planner::{
    plan_query, plans_built, syntactic_query_plan, JoinPlan, PlannedAccess, QueryPlan,
};
pub use program::{BodyAtom, CVar, Clause, NdlQuery, PredId, PredKind, Program, ProgramDisplay};
pub use reference::evaluate_reference;
pub use relevance::{prune_for_goal, PruneStats, PrunedQuery};
pub use skinny::to_skinny;
pub use star::{linear_star_transform, star_transform};
pub use stats::RelStats;
pub use storage::{ArenaWords, ColumnIndex, Database, LazyRelation, Relation};
