#![warn(missing_docs)]

//! # obda-ndl
//!
//! Nonrecursive datalog (NDL) for ontology-mediated query rewriting:
//!
//! * program representation with OWL 2 QL data-vocabulary EDB bindings
//!   ([`program`]);
//! * structural analysis — nonrecursiveness, depth, linearity, width,
//!   weight functions, skinny depth ([`analysis`], Section 3.1 of Bienvenu
//!   et al., PODS 2017);
//! * the Huffman-based skinny transformation of Lemma 5 ([`skinny`]);
//! * the `*`-transformation to arbitrary data instances and Lemma 3's
//!   linearity-preserving variant ([`star`]);
//! * two evaluators: a bottom-up materialising engine ([`eval`], the
//!   stand-in for RDFox in the experiments) and Theorem 2's
//!   reachability-based evaluator for linear programs ([`linear_eval`]).

pub mod analysis;
pub mod eval;
pub mod linear_eval;
pub mod program;
pub mod skinny;
pub mod star;

pub use analysis::{analyze, Analysis};
pub use eval::{evaluate, EvalError, EvalOptions, EvalResult, EvalStats};
pub use linear_eval::evaluate_linear;
pub use program::{BodyAtom, CVar, Clause, NdlQuery, PredId, PredKind, Program, ProgramDisplay};
pub use skinny::to_skinny;
pub use star::{linear_star_transform, star_transform};
