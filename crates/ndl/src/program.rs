//! Nonrecursive datalog (NDL) programs.
//!
//! A datalog program is a finite set of Horn clauses
//! `γ₀ ← γ₁ ∧ … ∧ γₘ` where each `γᵢ` is an atom `Q(y)` or an equality
//! `(z = z′)`; head variables must occur in the body. The predicates in
//! heads are IDB, the rest EDB. A program is *nonrecursive* (NDL) when the
//! dependency digraph of its predicates is acyclic. An NDL *query* is a pair
//! `(Π, G(x))`.
//!
//! EDB predicates are bound to the OWL 2 QL data vocabulary (a class or a
//! property), plus the active-domain predicate `⊤`.

use obda_owlql::abox::ConstId;
use obda_owlql::vocab::{ClassId, PropId, Role, Vocab};
use std::fmt;

/// Identifier of a predicate within a [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PredId(pub u32);

/// What a predicate denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredKind {
    /// EDB: a class `A` of the data vocabulary (arity 1).
    EdbClass(ClassId),
    /// EDB: a property `P` of the data vocabulary (arity 2).
    EdbProp(PropId),
    /// EDB: the active-domain predicate `⊤(x)` (arity 1).
    Top,
    /// IDB: defined by clauses of the program.
    Idb,
}

/// A clause-local variable (scoped to its clause).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CVar(pub u32);

/// A body atom.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BodyAtom {
    /// `Q(y₁, …, yₙ)` over an EDB or IDB predicate.
    Pred(PredId, Vec<CVar>),
    /// `(z = z′)`.
    Eq(CVar, CVar),
    /// `(z = a)` for a data constant `a`. The constant side is always
    /// bound, so evaluation can seed a clause from an all-equality body.
    EqConst(CVar, ConstId),
}

impl BodyAtom {
    /// The variables of the atom.
    pub fn vars(&self) -> Vec<CVar> {
        match self {
            BodyAtom::Pred(_, args) => args.clone(),
            BodyAtom::Eq(a, b) => vec![*a, *b],
            BodyAtom::EqConst(a, _) => vec![*a],
        }
    }
}

/// A Horn clause `head(args) ← body`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clause {
    /// Head predicate.
    pub head: PredId,
    /// Head argument variables.
    pub head_args: Vec<CVar>,
    /// Body atoms.
    pub body: Vec<BodyAtom>,
    /// Number of clause-local variables (`CVar(0)..CVar(num_vars)`).
    pub num_vars: u32,
}

impl Clause {
    /// Returns an error description if the clause is ill-formed (head
    /// variables must occur in a body predicate atom or be equated to one,
    /// and variable indices must be in range).
    fn validate(&self) -> Result<(), String> {
        let in_range = |v: CVar| -> bool { v.0 < self.num_vars };
        for &v in &self.head_args {
            if !in_range(v) {
                return Err(format!("head variable {} out of range", v.0));
            }
        }
        let mut body_vars = Vec::new();
        for atom in &self.body {
            for v in atom.vars() {
                if !in_range(v) {
                    return Err(format!("body variable {} out of range", v.0));
                }
                body_vars.push(v);
            }
        }
        for &v in &self.head_args {
            if !body_vars.contains(&v) {
                return Err(format!("head variable {} does not occur in the body", v.0));
            }
        }
        Ok(())
    }
}

/// Metadata for one predicate.
#[derive(Debug, Clone)]
pub struct PredInfo {
    /// Display name.
    pub name: String,
    /// Arity.
    pub arity: usize,
    /// EDB binding or IDB.
    pub kind: PredKind,
    /// For *ordered* NDL queries: the number of trailing argument positions
    /// that are parameters (instantiated from the candidate answer).
    pub num_params: usize,
}

/// A datalog program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    preds: Vec<PredInfo>,
    clauses: Vec<Clause>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a predicate.
    pub fn add_pred(&mut self, name: impl Into<String>, arity: usize, kind: PredKind) -> PredId {
        let id = PredId(self.preds.len() as u32);
        self.preds.push(PredInfo { name: name.into(), arity, kind, num_params: 0 });
        id
    }

    /// Declares an IDB predicate with trailing parameters.
    pub fn add_idb_with_params(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        num_params: usize,
    ) -> PredId {
        let id = PredId(self.preds.len() as u32);
        assert!(num_params <= arity);
        self.preds.push(PredInfo { name: name.into(), arity, kind: PredKind::Idb, num_params });
        id
    }

    /// Adds a clause.
    ///
    /// # Panics
    /// Panics if the clause is ill-formed, the head is an EDB predicate, or
    /// arities mismatch.
    pub fn add_clause(&mut self, clause: Clause) {
        // Panicking here is the documented contract (see above): programs
        // are built by our rewriters, not parsed from user input.
        #[allow(clippy::expect_used)]
        clause.validate().expect("well-formed clause");
        let head = &self.preds[clause.head.0 as usize];
        assert!(matches!(head.kind, PredKind::Idb), "clause head must be IDB");
        assert_eq!(head.arity, clause.head_args.len(), "head arity mismatch");
        for atom in &clause.body {
            if let BodyAtom::Pred(p, args) = atom {
                assert_eq!(
                    self.preds[p.0 as usize].arity,
                    args.len(),
                    "arity mismatch for {}",
                    self.preds[p.0 as usize].name
                );
            }
        }
        self.clauses.push(clause);
    }

    /// Predicate metadata.
    pub fn pred(&self, id: PredId) -> &PredInfo {
        &self.preds[id.0 as usize]
    }

    /// All predicate ids.
    pub fn pred_ids(&self) -> impl Iterator<Item = PredId> {
        (0..self.preds.len() as u32).map(PredId)
    }

    /// Number of predicates.
    pub fn num_preds(&self) -> usize {
        self.preds.len()
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// The clauses with the given head predicate.
    pub fn clauses_for(&self, head: PredId) -> impl Iterator<Item = &Clause> {
        self.clauses.iter().filter(move |c| c.head == head)
    }

    /// Whether `id` is an IDB predicate.
    pub fn is_idb(&self, id: PredId) -> bool {
        matches!(self.preds[id.0 as usize].kind, PredKind::Idb)
    }

    /// Looks up an EDB predicate for a class, declaring it on first use.
    pub fn edb_class(&mut self, class: ClassId, vocab: &Vocab) -> PredId {
        if let Some(id) =
            self.pred_ids().find(|&id| self.preds[id.0 as usize].kind == PredKind::EdbClass(class))
        {
            return id;
        }
        self.add_pred(vocab.class_name(class), 1, PredKind::EdbClass(class))
    }

    /// Looks up an EDB predicate for a property, declaring it on first use.
    pub fn edb_prop(&mut self, prop: PropId, vocab: &Vocab) -> PredId {
        if let Some(id) =
            self.pred_ids().find(|&id| self.preds[id.0 as usize].kind == PredKind::EdbProp(prop))
        {
            return id;
        }
        self.add_pred(vocab.prop_name(prop), 2, PredKind::EdbProp(prop))
    }

    /// Looks up the active-domain predicate `⊤`, declaring it on first use.
    pub fn edb_top(&mut self) -> PredId {
        if let Some(id) =
            self.pred_ids().find(|&id| self.preds[id.0 as usize].kind == PredKind::Top)
        {
            return id;
        }
        self.add_pred("TOP", 1, PredKind::Top)
    }

    /// Adds a body atom `̺(u, v)` (i.e. `P(u,v)` or `P(v,u)`) for a role.
    pub fn role_atom(&mut self, role: Role, u: CVar, v: CVar, vocab: &Vocab) -> BodyAtom {
        let p = self.edb_prop(role.prop, vocab);
        if role.inverse {
            BodyAtom::Pred(p, vec![v, u])
        } else {
            BodyAtom::Pred(p, vec![u, v])
        }
    }

    /// Total number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Program size `|Π|`: total number of atoms (heads plus bodies).
    pub fn size(&self) -> usize {
        self.clauses.iter().map(|c| 1 + c.body.len()).sum()
    }
}

/// An NDL query `(Π, G(x))`.
#[derive(Debug, Clone)]
pub struct NdlQuery {
    /// The program.
    pub program: Program,
    /// The goal predicate `G`.
    pub goal: PredId,
}

impl NdlQuery {
    /// Creates a query, asserting the goal exists.
    pub fn new(program: Program, goal: PredId) -> Self {
        assert!((goal.0 as usize) < program.num_preds());
        NdlQuery { program, goal }
    }

    /// Goal arity (number of answer variables).
    pub fn arity(&self) -> usize {
        self.program.pred(self.goal).arity
    }
}

/// Pretty-printer: renders the program in datalog syntax.
pub struct ProgramDisplay<'a> {
    /// Program to print.
    pub program: &'a Program,
}

impl fmt::Display for ProgramDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let var = |v: CVar| format!("v{}", v.0);
        for c in self.program.clauses() {
            let head = &self.program.pred(c.head).name;
            let args: Vec<String> = c.head_args.iter().map(|&v| var(v)).collect();
            write!(f, "{}({}) :- ", head, args.join(", "))?;
            let body: Vec<String> = c
                .body
                .iter()
                .map(|atom| match atom {
                    BodyAtom::Pred(p, args) => {
                        let args: Vec<String> = args.iter().map(|&v| var(v)).collect();
                        format!("{}({})", self.program.pred(*p).name, args.join(", "))
                    }
                    BodyAtom::Eq(a, b) => format!("{} = {}", var(*a), var(*b)),
                    BodyAtom::EqConst(a, c) => format!("{} = #{}", var(*a), c.0),
                })
                .collect();
            writeln!(f, "{}", body.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_vocab() -> Vocab {
        let mut v = Vocab::new();
        v.class("A");
        v.prop("R");
        v
    }

    #[test]
    fn builds_a_program() {
        let vocab = sample_vocab();
        let mut p = Program::new();
        let a = p.edb_class(ClassId(0), &vocab);
        let r = p.edb_prop(PropId(0), &vocab);
        let g = p.add_idb_with_params("G", 1, 1);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)]), BodyAtom::Pred(a, vec![CVar(1)])],
            num_vars: 2,
        });
        assert_eq!(p.num_clauses(), 1);
        assert_eq!(p.size(), 3);
        assert!(p.is_idb(g));
        assert!(!p.is_idb(a));
        // EDB lookup is idempotent.
        let mut p2 = p.clone();
        assert_eq!(p2.edb_class(ClassId(0), &vocab), a);
        let q = NdlQuery::new(p, g);
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn role_atom_orientation() {
        let vocab = sample_vocab();
        let mut p = Program::new();
        let atom = p.role_atom(Role::inverse_of(PropId(0)), CVar(0), CVar(1), &vocab);
        assert_eq!(atom.vars(), vec![CVar(1), CVar(0)]);
    }

    #[test]
    #[should_panic(expected = "well-formed clause")]
    fn rejects_unsafe_head_variable() {
        let vocab = sample_vocab();
        let mut p = Program::new();
        let a = p.edb_class(ClassId(0), &vocab);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(1)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)])],
            num_vars: 2,
        });
    }

    #[test]
    fn display_renders_datalog() {
        let vocab = sample_vocab();
        let mut p = Program::new();
        let a = p.edb_class(ClassId(0), &vocab);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)]), BodyAtom::Eq(CVar(0), CVar(0))],
            num_vars: 1,
        });
        let s = format!("{}", ProgramDisplay { program: &p });
        assert_eq!(s.trim(), "G(v0) :- A(v0), v0 = v0");
    }
}
