//! Per-relation cardinality statistics for the cost-based planner.
//!
//! [`RelStats`] summarises one [`crate::storage::Relation`]: its row
//! count, a per-column distinct-value count, and whether the rows are
//! sorted (non-decreasingly) on column 0. The planner in
//! [`crate::planner`] turns these into selectivity estimates — the
//! expected number of rows matching a probe of column `c` is
//! `rows / distinct[c]` under the usual uniformity assumption — and into
//! access-path choices (a sorted column 0 enables the binary-search
//! merge path without building a hash index).
//!
//! Stats are computed lazily, at most once per relation, behind a
//! `OnceLock` (see [`crate::storage::Relation::stats`]); the snapshot
//! store persists them in a flag-gated `.obdb` section and presets them
//! on open, so reopening a snapshot never re-scans the columns.

use crate::storage::Relation;
use obda_owlql::util::FxHashSet;

/// Summary statistics of one relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelStats {
    /// Number of rows at the time the stats were computed.
    pub rows: usize,
    /// Distinct values per column (length = arity).
    pub distinct: Vec<u64>,
    /// Whether column 0 is sorted non-decreasingly (snapshot segments
    /// are; this enables the kernel's binary-search merge access path).
    pub sorted_col0: bool,
}

impl RelStats {
    /// Computes the stats with one pass per column.
    pub fn compute(rel: &Relation) -> RelStats {
        let arity = rel.arity();
        let rows = rel.len();
        let mut distinct = Vec::with_capacity(arity);
        let mut sorted_col0 = arity > 0;
        for c in 0..arity {
            let mut seen: FxHashSet<u32> = FxHashSet::default();
            let mut prev: Option<u32> = None;
            for row in rel.rows() {
                let v = row[c];
                seen.insert(v);
                if c == 0 {
                    if let Some(p) = prev {
                        if v < p {
                            sorted_col0 = false;
                        }
                    }
                    prev = Some(v);
                }
            }
            distinct.push(seen.len() as u64);
        }
        RelStats { rows, distinct, sorted_col0 }
    }

    /// Stats assembled from persisted per-column distinct counts (the
    /// snapshot open path; segment rows are sorted by construction).
    pub fn from_persisted(rows: usize, distinct: Vec<u64>, sorted_col0: bool) -> RelStats {
        RelStats { rows, distinct, sorted_col0 }
    }

    /// Expected rows matching one key of column `c`: `rows / distinct[c]`,
    /// at least 0 and never NaN (empty relations estimate 0 matches).
    pub fn matches_per_key(&self, c: usize) -> f64 {
        let d = self.distinct.get(c).copied().unwrap_or(0).max(1) as f64;
        self.rows as f64 / d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_counts_distinct_and_sortedness() {
        let mut r = Relation::new(2);
        r.push(&[1, 10]);
        r.push(&[1, 20]);
        r.push(&[2, 10]);
        let s = RelStats::compute(&r);
        assert_eq!(s.rows, 3);
        assert_eq!(s.distinct, vec![2, 2]);
        assert!(s.sorted_col0);
        assert_eq!(s.matches_per_key(0), 1.5);

        let mut unsorted = Relation::new(2);
        unsorted.push(&[5, 0]);
        unsorted.push(&[3, 0]);
        let s = RelStats::compute(&unsorted);
        assert!(!s.sorted_col0);
        assert_eq!(s.distinct, vec![2, 1]);
    }

    #[test]
    fn empty_and_zero_arity_relations() {
        let s = RelStats::compute(&Relation::new(2));
        assert_eq!(s.rows, 0);
        assert_eq!(s.distinct, vec![0, 0]);
        assert!(s.sorted_col0, "vacuously sorted");
        assert_eq!(s.matches_per_key(0), 0.0);

        let s0 = RelStats::compute(&Relation::new(0));
        assert_eq!(s0.distinct.len(), 0);
        assert!(!s0.sorted_col0, "no column 0 to be sorted on");
    }
}
