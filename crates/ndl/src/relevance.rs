//! Goal-directed relevance pruning of NDL queries (magic-set lite).
//!
//! The bottom-up engine of [`crate::eval`] materialises every
//! goal-reachable IDB predicate in full — faithful to how the paper runs
//! rewritings on RDFox, but wasteful as a production engine: the
//! structure-sharing rewritings (Lin/Log/Tw/Presto-like) introduce many
//! *definitional* predicates that are mere renamings of other relations
//! or are consumed exactly once. This module rewrites an [`NdlQuery`]
//! into an answer-equivalent one that materialises strictly fewer
//! tuples, in the goal-directed spirit of Presto's nonrecursive
//! rewritings (Rosati & Almatelli):
//!
//! 1. **Reachability** — drop clauses whose head the goal cannot reach.
//! 2. **Alias elimination** — a predicate defined by the single clause
//!    `P(x̄) ← Q(ȳ)` with `x̄` distinct and `vars(ȳ) ⊆ x̄` is a renaming
//!    of `Q`; calls to `P` are rewritten to call `Q` directly.
//! 3. **Used-once unfolding** — a predicate with one defining clause,
//!    consumed by exactly one body atom, whose definition introduces no
//!    existential variables, is inlined at its call site. (The
//!    existential guard keeps projections materialised: unfolding them
//!    would trade a small deduplicated relation for a larger join.)
//! 4. **Head merging** — a copy clause `H(x̄) ← P(ȳ)` with `ȳ` distinct
//!    where `P` is consumed only here retargets `P`'s defining clauses
//!    to derive `H` directly, skipping the intermediate relation.
//! 5. **Dead-column projection** — argument positions of an IDB
//!    predicate whose bindings are never consumed (not joined, not
//!    equated, not answered at a live head position) are dropped,
//!    shrinking the materialised relation to its live columns.
//!
//! All passes preserve the certain answers exactly (the differential
//! suite in `tests/props.rs` checks this against the unpruned engines
//! and the chase oracle); only `generated_tuples` — the paper's Tables
//! 3–5 metric — shrinks.

use crate::program::{BodyAtom, CVar, Clause, NdlQuery, PredId, PredInfo, PredKind, Program};

/// What the pruning passes did, for logs and `BENCH_eval.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Clauses in the input program.
    pub clauses_before: usize,
    /// Clauses in the pruned program.
    pub clauses_after: usize,
    /// Goal-reachable IDB predicates before pruning (what the baseline
    /// engine would materialise).
    pub preds_before: usize,
    /// Goal-reachable IDB predicates after pruning.
    pub preds_after: usize,
    /// Renaming predicates eliminated (pass 2).
    pub aliases_inlined: usize,
    /// Used-once predicates unfolded into their call site (pass 3).
    pub unfolded: usize,
    /// Copy clauses collapsed by retargeting heads (pass 4).
    pub heads_merged: usize,
    /// Dead argument positions projected away (pass 5).
    pub dead_columns: usize,
}

/// An answer-equivalent, relevance-pruned query plus the bookkeeping to
/// map its statistics back onto the original program.
#[derive(Debug, Clone)]
pub struct PrunedQuery {
    /// The pruned query. Predicate ids of the original program are
    /// preserved (pruned-away predicates simply lose their clauses);
    /// dead-column projection may append fresh predicates at the end.
    pub query: NdlQuery,
    /// For every predicate of the pruned program, the predicate of the
    /// *original* program its tuples account to. Identity for surviving
    /// predicates; projections map to the predicate they project.
    pub origin: Vec<PredId>,
    /// Pass-by-pass summary.
    pub stats: PruneStats,
}

/// Working state shared by the passes: a mutable copy of the program's
/// predicate table and clause list.
struct Pruner {
    preds: Vec<PredInfo>,
    clauses: Vec<Clause>,
    goal: PredId,
    origin: Vec<PredId>,
    stats: PruneStats,
}

/// Runs the pruning pipeline on `query` until a fixpoint.
pub fn prune_for_goal(query: &NdlQuery) -> PrunedQuery {
    let program = &query.program;
    let mut pruner = Pruner {
        preds: program.pred_ids().map(|p| program.pred(p).clone()).collect(),
        clauses: program.clauses().to_vec(),
        goal: query.goal,
        origin: program.pred_ids().collect(),
        stats: PruneStats {
            clauses_before: program.num_clauses(),
            preds_before: 0, // filled below
            ..PruneStats::default()
        },
    };
    pruner.stats.preds_before = pruner.reachable_idb_count();
    // Each pass strictly shrinks the program (clauses, predicate uses or
    // live columns), so the fixpoint terminates; the bound is a
    // belt-and-braces guard against a pass miscounting "changed".
    for _ in 0..64 {
        let mut changed = pruner.drop_unreachable();
        changed |= pruner.eliminate_aliases();
        changed |= pruner.unfold_used_once();
        changed |= pruner.merge_heads();
        changed |= pruner.project_dead_columns();
        if !changed {
            break;
        }
    }
    pruner.drop_unreachable();
    pruner.stats.clauses_after = pruner.clauses.len();
    pruner.stats.preds_after = pruner.reachable_idb_count();
    pruner.into_pruned()
}

impl Pruner {
    fn is_idb(&self, p: PredId) -> bool {
        matches!(self.preds[p.0 as usize].kind, PredKind::Idb)
    }

    /// A predicate the passes may touch: IDB, not the goal, and not an
    /// ordered-NDL predicate with trailing parameters (those encode a
    /// bound pattern the linear evaluator relies on).
    fn prunable(&self, p: PredId) -> bool {
        p != self.goal && self.is_idb(p) && self.preds[p.0 as usize].num_params == 0
    }

    /// Number of body atoms over each predicate.
    fn use_counts(&self) -> Vec<usize> {
        let mut uses = vec![0usize; self.preds.len()];
        for c in &self.clauses {
            for a in &c.body {
                if let BodyAtom::Pred(p, _) = a {
                    uses[p.0 as usize] += 1;
                }
            }
        }
        uses
    }

    fn reachable(&self) -> Vec<bool> {
        let mut reachable = vec![false; self.preds.len()];
        reachable[self.goal.0 as usize] = true;
        let mut stack = vec![self.goal];
        while let Some(p) = stack.pop() {
            for c in self.clauses.iter().filter(|c| c.head == p) {
                for a in &c.body {
                    if let BodyAtom::Pred(q, _) = a {
                        if !reachable[q.0 as usize] {
                            reachable[q.0 as usize] = true;
                            stack.push(*q);
                        }
                    }
                }
            }
        }
        reachable
    }

    fn reachable_idb_count(&self) -> usize {
        let reachable = self.reachable();
        (0..self.preds.len())
            .filter(|&i| reachable[i] && matches!(self.preds[i].kind, PredKind::Idb))
            .count()
    }

    /// Pass 1: drops clauses whose head the goal cannot reach.
    fn drop_unreachable(&mut self) -> bool {
        let reachable = self.reachable();
        let before = self.clauses.len();
        self.clauses.retain(|c| reachable[c.head.0 as usize]);
        self.clauses.len() != before
    }

    /// Pass 2: eliminates renaming predicates. `P(x̄) ← Q(ȳ)` with `P`
    /// defined by this single clause, `x̄` distinct and `vars(ȳ) ⊆ x̄`
    /// makes `P` a (possibly permuted, possibly diagonal) renaming of
    /// `Q`: every call `P(t̄)` is replaced by `Q(ȳ[x̄ ↦ t̄])` and the
    /// defining clause is dropped, saving `|P|` materialised tuples.
    fn eliminate_aliases(&mut self) -> bool {
        let mut changed = false;
        loop {
            let Some((def_idx, callee, pos_map)) = self.find_alias() else {
                return changed;
            };
            let alias = self.clauses[def_idx].head;
            let callee_args_of =
                |call: &[CVar]| -> Vec<CVar> { pos_map.iter().map(|&j| call[j]).collect() };
            for c in &mut self.clauses {
                for a in &mut c.body {
                    if let BodyAtom::Pred(p, args) = a {
                        if *p == alias {
                            let new_args = callee_args_of(args);
                            *p = callee;
                            *args = new_args;
                        }
                    }
                }
            }
            self.clauses.remove(def_idx);
            self.stats.aliases_inlined += 1;
            changed = true;
        }
    }

    /// Finds a renaming definition: returns the defining clause index,
    /// the callee, and for each callee position the head position whose
    /// variable fills it.
    fn find_alias(&self) -> Option<(usize, PredId, Vec<usize>)> {
        for (i, c) in self.clauses.iter().enumerate() {
            if !self.prunable(c.head)
                || self.clauses.iter().filter(|d| d.head == c.head).count() != 1
            {
                continue;
            }
            let [BodyAtom::Pred(q, args)] = c.body.as_slice() else { continue };
            if *q == c.head || !distinct(&c.head_args) {
                continue;
            }
            let pos_map: Option<Vec<usize>> =
                args.iter().map(|v| c.head_args.iter().position(|h| h == v)).collect();
            if let Some(pos_map) = pos_map {
                return Some((i, *q, pos_map));
            }
        }
        None
    }

    /// Pass 3: unfolds a predicate with exactly one defining clause and
    /// exactly one call site into that call site, provided the
    /// definition has no existential variables (`vars(body) ⊆ head
    /// vars`) — otherwise materialising the deduplicated projection is
    /// the cheaper plan — and a distinct-variable head.
    fn unfold_used_once(&mut self) -> bool {
        let mut changed = false;
        'outer: loop {
            let uses = self.use_counts();
            for def_idx in 0..self.clauses.len() {
                let def = &self.clauses[def_idx];
                let p = def.head;
                if !self.prunable(p)
                    || uses[p.0 as usize] != 1
                    || self.clauses.iter().filter(|d| d.head == p).count() != 1
                    || !distinct(&def.head_args)
                {
                    continue;
                }
                let head_vars = &def.head_args;
                let no_existentials =
                    def.body.iter().all(|a| a.vars().iter().all(|v| head_vars.contains(v)));
                if !no_existentials {
                    continue;
                }
                let Some((call_idx, atom_idx)) = self.find_call_site(p, def_idx) else { continue };
                let def = self.clauses[def_idx].clone();
                let call = &mut self.clauses[call_idx];
                let BodyAtom::Pred(_, call_args) = call.body.remove(atom_idx) else {
                    unreachable!("find_call_site returns a Pred atom")
                };
                let image = |v: CVar| -> CVar {
                    // Invariant: the `no_existentials` guard above admits
                    // only definitions whose body variables all occur in
                    // the head, so the position always exists.
                    #[allow(clippy::expect_used)]
                    let k = def
                        .head_args
                        .iter()
                        .position(|&h| h == v)
                        .expect("no_existentials puts every body variable in the head");
                    call_args[k]
                };
                for a in &def.body {
                    call.body.push(match a {
                        BodyAtom::Pred(q, args) => {
                            BodyAtom::Pred(*q, args.iter().map(|&v| image(v)).collect())
                        }
                        BodyAtom::Eq(a, b) => BodyAtom::Eq(image(*a), image(*b)),
                        BodyAtom::EqConst(a, c) => BodyAtom::EqConst(image(*a), *c),
                    });
                }
                self.clauses.remove(def_idx);
                self.stats.unfolded += 1;
                changed = true;
                continue 'outer;
            }
            return changed;
        }
    }

    /// The unique clause and body-atom index calling `p`, excluding the
    /// defining clause itself (which cannot call `p`: the program is
    /// nonrecursive).
    fn find_call_site(&self, p: PredId, def_idx: usize) -> Option<(usize, usize)> {
        for (ci, c) in self.clauses.iter().enumerate() {
            if ci == def_idx {
                continue;
            }
            for (ai, a) in c.body.iter().enumerate() {
                if matches!(a, BodyAtom::Pred(q, _) if *q == p) {
                    return Some((ci, ai));
                }
            }
        }
        None
    }

    /// Pass 4: collapses copy clauses. For `H(x̄) ← P(ȳ)` with `ȳ`
    /// distinct and `P` consumed by no other atom, `P`'s defining
    /// clauses are retargeted to derive `H` directly (projecting /
    /// permuting their heads through the copy), and both the copy
    /// clause and `P` disappear. This is the caller-side dual of
    /// pass 3 and handles multi-clause `P` (e.g. the `G ← G~k` goal
    /// clauses of the tree-witness UCQ rewriting).
    fn merge_heads(&mut self) -> bool {
        let mut changed = false;
        'outer: loop {
            let uses = self.use_counts();
            for copy_idx in 0..self.clauses.len() {
                let copy = &self.clauses[copy_idx];
                let [BodyAtom::Pred(p, args)] = copy.body.as_slice() else { continue };
                let (p, args) = (*p, args.clone());
                if !self.prunable(p)
                    || p == copy.head
                    || uses[p.0 as usize] != 1
                    || !distinct(&args)
                {
                    continue;
                }
                // For each head position of the copy, the position of
                // `P` that supplies its value.
                let pos_map: Option<Vec<usize>> = self.clauses[copy_idx]
                    .head_args
                    .iter()
                    .map(|h| args.iter().position(|a| a == h))
                    .collect();
                let Some(pos_map) = pos_map else { continue };
                let new_head = self.clauses[copy_idx].head;
                let retargeted: Vec<Clause> = self
                    .clauses
                    .iter()
                    .filter(|d| d.head == p)
                    .map(|d| Clause {
                        head: new_head,
                        head_args: pos_map.iter().map(|&i| d.head_args[i]).collect(),
                        body: d.body.clone(),
                        num_vars: d.num_vars,
                    })
                    .collect();
                self.stats.heads_merged += 1;
                self.clauses.remove(copy_idx);
                self.clauses.retain(|d| d.head != p);
                self.clauses.extend(retargeted);
                changed = true;
                continue 'outer;
            }
            return changed;
        }
    }

    /// Pass 5: projects away dead argument positions. Position `k` of
    /// an IDB predicate `P` is *live* iff some call `P(ȳ)` consumes
    /// `ȳₖ`: the variable is repeated inside the atom, occurs in
    /// another body atom or equality of the same clause, or reaches a
    /// live head position. Liveness is a least fixpoint seeded by the
    /// goal (whose columns are the answer). Dead columns are dropped by
    /// introducing a fresh narrower predicate, shrinking both the
    /// materialised relation and the dedup work.
    fn project_dead_columns(&mut self) -> bool {
        let num = self.preds.len();
        let mut live: Vec<Vec<bool>> = (0..num)
            .map(|i| {
                let p = &self.preds[i];
                let all = PredId(i as u32) == self.goal
                    || !self.prunable(PredId(i as u32))
                    || p.arity == 0;
                vec![all; p.arity]
            })
            .collect();
        loop {
            let mut grew = false;
            for c in &self.clauses {
                for (ai, a) in c.body.iter().enumerate() {
                    let BodyAtom::Pred(p, args) = a else { continue };
                    for (k, v) in args.iter().enumerate() {
                        if live[p.0 as usize][k] {
                            continue;
                        }
                        let consumed = args.iter().enumerate().any(|(k2, v2)| k2 != k && v2 == v)
                            || c.body
                                .iter()
                                .enumerate()
                                .any(|(aj, other)| aj != ai && other.vars().contains(v))
                            || c.head_args
                                .iter()
                                .enumerate()
                                .any(|(j, h)| h == v && live[c.head.0 as usize][j]);
                        if consumed {
                            live[p.0 as usize][k] = true;
                            grew = true;
                        }
                    }
                }
            }
            if !grew {
                break;
            }
        }
        // A predicate whose columns are all dead still carries a
        // boolean fact; keep one column so the relation has rows.
        for lv in &mut live {
            if !lv.is_empty() && lv.iter().all(|&b| !b) {
                lv[0] = true;
            }
        }
        let mut proj: Vec<Option<(PredId, Vec<usize>)>> = vec![None; num];
        let reachable = self.reachable();
        for i in 0..num {
            let p = PredId(i as u32);
            if !reachable[i] || live[i].iter().all(|&b| b) || !self.prunable(p) {
                continue;
            }
            let keep: Vec<usize> = (0..live[i].len()).filter(|&k| live[i][k]).collect();
            let id = PredId(self.preds.len() as u32);
            self.preds.push(PredInfo {
                name: format!("{}\u{2193}", self.preds[i].name),
                arity: keep.len(),
                kind: PredKind::Idb,
                num_params: 0,
            });
            self.origin.push(self.origin[i]);
            self.stats.dead_columns += live[i].len() - keep.len();
            proj[i] = Some((id, keep));
        }
        if proj.iter().all(|p| p.is_none()) {
            return false;
        }
        for c in &mut self.clauses {
            if let Some((id, keep)) = &proj[c.head.0 as usize] {
                c.head = *id;
                c.head_args = keep.iter().map(|&k| c.head_args[k]).collect();
            }
            for a in &mut c.body {
                if let BodyAtom::Pred(p, args) = a {
                    if let Some((id, keep)) = &proj[p.0 as usize] {
                        *p = *id;
                        *args = keep.iter().map(|&k| args[k]).collect();
                    }
                }
            }
        }
        true
    }

    /// Rebuilds a [`Program`] (re-running clause validation as a sanity
    /// gate) and packages the result.
    fn into_pruned(self) -> PrunedQuery {
        let mut program = Program::new();
        for info in &self.preds {
            match info.kind {
                PredKind::Idb if info.num_params > 0 => {
                    program.add_idb_with_params(info.name.clone(), info.arity, info.num_params)
                }
                kind => program.add_pred(info.name.clone(), info.arity, kind),
            };
        }
        for clause in self.clauses {
            program.add_clause(clause);
        }
        PrunedQuery {
            query: NdlQuery::new(program, self.goal),
            origin: self.origin,
            stats: self.stats,
        }
    }
}

fn distinct(vars: &[CVar]) -> bool {
    vars.iter().enumerate().all(|(i, v)| !vars[..i].contains(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};
    use obda_owlql::Ontology;

    fn setup() -> (Ontology, obda_owlql::abox::DataInstance) {
        let o = parse_ontology("Class A\nClass B\nProperty R\nProperty S\n").unwrap();
        let d = parse_data("R(a, b)\nR(b, c)\nR(c, a)\nS(c, d)\nS(a, b)\nA(b)\nA(c)\nB(d)\n", &o)
            .unwrap();
        (o, d)
    }

    /// Pruning must preserve answers while never generating more tuples.
    fn check_equivalent(query: &NdlQuery, data: &obda_owlql::abox::DataInstance) -> PrunedQuery {
        let pruned = prune_for_goal(query);
        let base = evaluate(query, data, &EvalOptions::default()).unwrap();
        let opt = evaluate(&pruned.query, data, &EvalOptions::default()).unwrap();
        assert_eq!(base.answers, opt.answers, "pruning changed the answers");
        assert!(
            opt.stats.generated_tuples <= base.stats.generated_tuples,
            "pruning increased materialisation: {} > {}",
            opt.stats.generated_tuples,
            base.stats.generated_tuples
        );
        pruned
    }

    #[test]
    fn alias_chain_collapses_to_the_edb() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let t1 = p.add_pred("T1", 2, PredKind::Idb);
        let t2 = p.add_pred("T2", 2, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // T1 renames R, T2 renames T1 with swapped columns, G consumes T2.
        p.add_clause(Clause {
            head: t1,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: t2,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(t1, vec![CVar(1), CVar(0)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(t2, vec![CVar(0), CVar(0)])],
            num_vars: 1,
        });
        let query = NdlQuery::new(p, g);
        let pruned = check_equivalent(&query, &d);
        assert_eq!(pruned.stats.aliases_inlined, 2);
        // Only the goal itself is materialised now.
        let body = &pruned.query.program.clauses()[0].body;
        assert!(matches!(body.as_slice(), [BodyAtom::Pred(q, _)] if *q == r));
    }

    #[test]
    fn diagonal_alias_preserves_repeated_columns() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let t = p.add_pred("T", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // T(x) ← R(x, x) is a diagonal selection, still a renaming.
        p.add_clause(Clause {
            head: t,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(0)])],
            num_vars: 1,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(t, vec![CVar(0)])],
            num_vars: 1,
        });
        let query = NdlQuery::new(p, g);
        let pruned = check_equivalent(&query, &d);
        assert_eq!(pruned.stats.aliases_inlined, 1);
    }

    #[test]
    fn projection_is_not_an_alias() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let t = p.add_pred("T", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // T(x) ← R(x, y) projects away y: must stay materialised
        // (used twice, so unfolding is also off the table).
        p.add_clause(Clause {
            head: t,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        for _ in 0..2 {
            p.add_clause(Clause {
                head: g,
                head_args: vec![CVar(0)],
                body: vec![BodyAtom::Pred(t, vec![CVar(0)])],
                num_vars: 1,
            });
        }
        let query = NdlQuery::new(p, g);
        let pruned = check_equivalent(&query, &d);
        assert_eq!(pruned.stats.aliases_inlined, 0);
        assert_eq!(pruned.stats.unfolded, 0);
    }

    #[test]
    fn used_once_view_is_unfolded() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let w = p.add_pred("W", 2, PredKind::Idb);
        let g = p.add_pred("G", 2, PredKind::Idb);
        // W(x, y) ← A(x) ∧ (y = x): the Presto-like W-view shape.
        p.add_clause(Clause {
            head: w,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)]), BodyAtom::Eq(CVar(1), CVar(0))],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(w, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let query = NdlQuery::new(p, g);
        let pruned = check_equivalent(&query, &d);
        assert_eq!(pruned.stats.unfolded, 1);
        assert_eq!(pruned.stats.preds_after, 1, "only the goal survives");
    }

    #[test]
    fn existential_view_stays_materialised() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let s = p.edb_prop(v.get_prop("S").unwrap(), v);
        let t = p.add_pred("T", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // T(x) ← R(x, y): existential y means T deduplicates; keep it.
        p.add_clause(Clause {
            head: t,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(t, vec![CVar(0)]), BodyAtom::Pred(s, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let query = NdlQuery::new(p, g);
        let pruned = check_equivalent(&query, &d);
        assert_eq!(pruned.stats.unfolded, 0);
    }

    #[test]
    fn copy_clause_retargets_multi_clause_definition() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let s = p.edb_prop(v.get_prop("S").unwrap(), v);
        let u = p.add_pred("U", 2, PredKind::Idb);
        let g = p.add_pred("G", 2, PredKind::Idb);
        // U has two clauses; G ← U is a pure copy (the TwUCQ shape).
        for e in [r, s] {
            p.add_clause(Clause {
                head: u,
                head_args: vec![CVar(0), CVar(1)],
                body: vec![BodyAtom::Pred(e, vec![CVar(0), CVar(1)])],
                num_vars: 2,
            });
        }
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(1), CVar(0)],
            body: vec![BodyAtom::Pred(u, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let query = NdlQuery::new(p, g);
        let pruned = check_equivalent(&query, &d);
        assert_eq!(pruned.stats.heads_merged, 1);
        assert_eq!(pruned.stats.preds_after, 1);
        assert_eq!(pruned.query.program.num_clauses(), 2);
    }

    #[test]
    fn dead_column_is_projected() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let s = p.edb_prop(v.get_prop("S").unwrap(), v);
        let t = p.add_pred("T", 2, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // T's second column is never consumed by either call site.
        for e in [r, s] {
            p.add_clause(Clause {
                head: t,
                head_args: vec![CVar(0), CVar(1)],
                body: vec![BodyAtom::Pred(e, vec![CVar(0), CVar(1)])],
                num_vars: 2,
            });
        }
        for e in [r, s] {
            p.add_clause(Clause {
                head: g,
                head_args: vec![CVar(0)],
                body: vec![
                    BodyAtom::Pred(t, vec![CVar(0), CVar(1)]),
                    BodyAtom::Pred(e, vec![CVar(2), CVar(0)]),
                ],
                num_vars: 3,
            });
        }
        let query = NdlQuery::new(p, g);
        let pruned = check_equivalent(&query, &d);
        assert_eq!(pruned.stats.dead_columns, 1);
        // The projection accounts to the original T.
        let narrow = pruned
            .query
            .program
            .pred_ids()
            .find(|&i| {
                pruned.query.program.pred(i).name.starts_with('T')
                    && pruned.query.program.pred(i).arity == 1
            })
            .expect("projected T↓ exists");
        assert_eq!(pruned.origin[narrow.0 as usize], t);
    }

    #[test]
    fn unreachable_clauses_are_dropped() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let dead = p.add_pred("DEAD", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: dead,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)])],
            num_vars: 1,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)])],
            num_vars: 1,
        });
        let query = NdlQuery::new(p, g);
        let pruned = check_equivalent(&query, &d);
        assert_eq!(pruned.query.program.num_clauses(), 1);
        assert_eq!(pruned.stats.preds_after, 1);
    }

    #[test]
    fn goal_is_never_pruned_away() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let g = p.add_pred("G", 2, PredKind::Idb);
        // The goal itself is alias-shaped; it must stay.
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let query = NdlQuery::new(p, g);
        let pruned = check_equivalent(&query, &d);
        assert_eq!(pruned.stats.aliases_inlined, 0);
        assert_eq!(pruned.query.goal, g);
        assert_eq!(pruned.query.program.num_clauses(), 1);
    }
}
