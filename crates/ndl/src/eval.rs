//! Bottom-up evaluation of NDL queries over data instances.
//!
//! This is the workspace's stand-in for the RDFox engine used in the
//! paper's experiments: it materialises every IDB predicate in dependency
//! order with hash joins, without magic sets or program optimisation, so
//! that the relative costs of different rewritings have the same cause as in
//! the paper (the number of materialised tuples). It reports both answers
//! and the total number of generated tuples, as Tables 3–5 do.

use crate::analysis::topological_order;
use crate::program::{BodyAtom, Clause, CVar, NdlQuery, PredId, PredKind, Program};
use obda_owlql::abox::{ConstId, DataInstance};
use obda_owlql::util::{FxHashMap, FxHashSet};
use std::time::{Duration, Instant};

/// Evaluation limits.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// Wall-clock budget; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Cap on total generated tuples; `None` = unlimited.
    pub max_tuples: Option<usize>,
}

/// Evaluation metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Total tuples materialised across all IDB predicates.
    pub generated_tuples: usize,
    /// Number of answers (tuples in the goal relation).
    pub num_answers: usize,
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The wall-clock budget was exhausted.
    Timeout,
    /// The tuple cap was exceeded.
    TupleLimit,
    /// The program is recursive.
    Recursive,
    /// A clause cannot be range-restricted (e.g. an equality between two
    /// never-bound variables).
    Unsafe(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Timeout => write!(f, "evaluation timed out"),
            EvalError::TupleLimit => write!(f, "tuple limit exceeded"),
            EvalError::Recursive => write!(f, "program is recursive"),
            EvalError::Unsafe(msg) => write!(f, "unsafe clause: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The result of evaluating `(Π, G)` over a data instance.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The goal relation, sorted.
    pub answers: Vec<Vec<ConstId>>,
    /// Metrics.
    pub stats: EvalStats,
}

type Row = Vec<u32>;
type Relation = FxHashSet<Row>;

const UNBOUND: u32 = u32::MAX;

/// Materialises the EDB relation of a predicate from the data instance.
fn edb_relation(kind: PredKind, data: &DataInstance) -> Relation {
    let mut rel = Relation::default();
    match kind {
        PredKind::EdbClass(c) => {
            for (class, a) in data.class_atoms() {
                if class == c {
                    rel.insert(vec![a.0]);
                }
            }
        }
        PredKind::EdbProp(p) => {
            for (prop, a, b) in data.prop_atoms() {
                if prop == p {
                    rel.insert(vec![a.0, b.0]);
                }
            }
        }
        PredKind::Top => {
            for a in data.individuals() {
                rel.insert(vec![a.0]);
            }
        }
        PredKind::Idb => unreachable!("IDB relations are computed, not loaded"),
    }
    rel
}

/// Greedy join order for a clause body: equalities as soon as one side is
/// bound, otherwise the predicate atom with the most bound variables.
fn join_order(clause: &Clause) -> Result<Vec<usize>, EvalError> {
    let mut remaining: Vec<usize> = (0..clause.body.len()).collect();
    let mut bound: FxHashSet<CVar> = FxHashSet::default();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // Equality with a bound side first.
        if let Some(pos) = remaining.iter().position(|&i| match &clause.body[i] {
            BodyAtom::Eq(a, b) => bound.contains(a) || bound.contains(b),
            _ => false,
        }) {
            let i = remaining.remove(pos);
            for v in clause.body[i].vars() {
                bound.insert(v);
            }
            order.push(i);
            continue;
        }
        // Otherwise the predicate atom with the most bound variables,
        // breaking ties towards the fewest *unbound* variables (keeps the
        // first join of a clause on a small binary relation instead of a
        // wide intermediate predicate).
        let best = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &i)| matches!(clause.body[i], BodyAtom::Pred(..)))
            .max_by_key(|&(_, &i)| {
                let vars = clause.body[i].vars();
                let bound_count = vars.iter().filter(|v| bound.contains(v)).count();
                let unbound: std::collections::BTreeSet<_> =
                    vars.iter().filter(|v| !bound.contains(v)).collect();
                (bound_count, std::cmp::Reverse(unbound.len()))
            });
        match best {
            Some((pos, _)) => {
                let i = remaining.remove(pos);
                for v in clause.body[i].vars() {
                    bound.insert(v);
                }
                order.push(i);
            }
            None => {
                return Err(EvalError::Unsafe(
                    "equality between variables that are never bound".into(),
                ));
            }
        }
    }
    Ok(order)
}

struct Engine<'a> {
    program: &'a Program,
    data: &'a DataInstance,
    relations: Vec<Option<Relation>>,
    deadline: Option<Instant>,
    max_tuples: Option<usize>,
    generated: usize,
    ticks: u32,
}

impl<'a> Engine<'a> {
    fn check_budget(&mut self) -> Result<(), EvalError> {
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(4096) {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    return Err(EvalError::Timeout);
                }
            }
        }
        if let Some(cap) = self.max_tuples {
            if self.generated > cap {
                return Err(EvalError::TupleLimit);
            }
        }
        Ok(())
    }

    /// Takes the relation of `p` out of the engine (materialising an EDB
    /// relation on first use); the caller must put it back with
    /// [`Engine::restore`].
    fn take_relation(&mut self, p: PredId) -> Relation {
        let idx = p.0 as usize;
        match self.relations[idx].take() {
            Some(rel) => rel,
            // IDB predicates are evaluated in dependency order, so an
            // untouched slot can only mean "no clauses" (empty relation).
            None => match self.program.pred(p).kind {
                PredKind::Idb => Relation::default(),
                kind => edb_relation(kind, self.data),
            },
        }
    }

    fn restore(&mut self, p: PredId, rel: Relation) {
        self.relations[p.0 as usize] = Some(rel);
    }

    /// Evaluates one clause, inserting derived head rows into `out`.
    fn eval_clause(&mut self, clause: &Clause, out: &mut Relation) -> Result<(), EvalError> {
        let order = join_order(clause)?;
        let mut bindings: Vec<Row> = vec![vec![UNBOUND; clause.num_vars as usize]];
        let mut bound: FxHashSet<CVar> = FxHashSet::default();
        for &i in &order {
            if bindings.is_empty() {
                break;
            }
            match &clause.body[i] {
                BodyAtom::Eq(a, b) => {
                    let (a, b) = (*a, *b);
                    let mut next = Vec::with_capacity(bindings.len());
                    for mut binding in bindings {
                        self.check_budget()?;
                        let va = binding[a.0 as usize];
                        let vb = binding[b.0 as usize];
                        match (va == UNBOUND, vb == UNBOUND) {
                            (false, false) => {
                                if va == vb {
                                    next.push(binding);
                                }
                            }
                            (false, true) => {
                                binding[b.0 as usize] = va;
                                next.push(binding);
                            }
                            (true, false) => {
                                binding[a.0 as usize] = vb;
                                next.push(binding);
                            }
                            (true, true) => unreachable!("join order binds one side first"),
                        }
                    }
                    bindings = next;
                    bound.insert(a);
                    bound.insert(b);
                }
                BodyAtom::Pred(p, args) => {
                    let p = *p;
                    let args = args.clone();
                    let bound_positions: Vec<usize> = (0..args.len())
                        .filter(|&k| bound.contains(&args[k]))
                        .collect();
                    // Index the relation on the bound positions.
                    let rel = self.take_relation(p);
                    let mut index: FxHashMap<Vec<u32>, Vec<&Row>> = FxHashMap::default();
                    for row in rel.iter() {
                        let key: Vec<u32> =
                            bound_positions.iter().map(|&k| row[k]).collect();
                        index.entry(key).or_default().push(row);
                    }
                    let mut next = Vec::new();
                    let mut failure = None;
                    for binding in &bindings {
                        if let Err(e) = self.check_budget() {
                            failure = Some(e);
                            break;
                        }
                        // Intermediate join results count against the tuple
                        // budget too — a join can explode without ever
                        // reaching the head.
                        if let Some(cap) = self.max_tuples {
                            if next.len() > cap {
                                failure = Some(EvalError::TupleLimit);
                                break;
                            }
                        }
                        let key: Vec<u32> = bound_positions
                            .iter()
                            .map(|&k| binding[args[k].0 as usize])
                            .collect();
                        let Some(rows) = index.get(&key) else { continue };
                        'rows: for row in rows {
                            let mut extended = binding.clone();
                            for (k, &var) in args.iter().enumerate() {
                                let slot = &mut extended[var.0 as usize];
                                if *slot == UNBOUND {
                                    *slot = row[k];
                                } else if *slot != row[k] {
                                    continue 'rows;
                                }
                            }
                            next.push(extended);
                        }
                    }
                    drop(index);
                    self.restore(p, rel);
                    if let Some(e) = failure {
                        return Err(e);
                    }
                    bindings = next;
                    for &v in &args {
                        bound.insert(v);
                    }
                }
            }
        }
        for binding in bindings {
            let row: Row = clause
                .head_args
                .iter()
                .map(|&v| {
                    let val = binding[v.0 as usize];
                    debug_assert_ne!(val, UNBOUND, "head variable left unbound");
                    val
                })
                .collect();
            if out.insert(row) {
                self.generated += 1;
            }
            self.check_budget()?;
        }
        Ok(())
    }
}

/// The IDB predicates reachable from the goal through clause bodies.
fn reachable_from_goal(query: &NdlQuery) -> Vec<bool> {
    let mut reachable = vec![false; query.program.num_preds()];
    reachable[query.goal.0 as usize] = true;
    let mut stack = vec![query.goal];
    while let Some(p) = stack.pop() {
        for c in query.program.clauses_for(p) {
            for a in &c.body {
                if let BodyAtom::Pred(q, _) = a {
                    if !reachable[q.0 as usize] {
                        reachable[q.0 as usize] = true;
                        stack.push(*q);
                    }
                }
            }
        }
    }
    reachable
}

/// Evaluates `(Π, G)` over `data`, materialising all goal-reachable IDB
/// predicates in dependency order (the naive strategy the paper attributes
/// to RDFox — every predicate of the program is materialised in full, with
/// no magic sets; unreachable predicates cannot affect the answer and are
/// skipped).
pub fn evaluate(
    query: &NdlQuery,
    data: &DataInstance,
    opts: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    let order = topological_order(&query.program).ok_or(EvalError::Recursive)?;
    let reachable = reachable_from_goal(query);
    let mut engine = Engine {
        program: &query.program,
        data,
        relations: vec![None; query.program.num_preds()],
        deadline: opts.timeout.map(|t| Instant::now() + t),
        max_tuples: opts.max_tuples,
        generated: 0,
        ticks: 0,
    };
    for p in order {
        if !reachable[p.0 as usize] {
            continue;
        }
        let mut rel = Relation::default();
        for clause in query.program.clauses() {
            if clause.head == p {
                engine.eval_clause(clause, &mut rel)?;
            }
        }
        engine.relations[p.0 as usize] = Some(rel);
    }
    let goal_rel = engine.relations[query.goal.0 as usize]
        .take()
        .unwrap_or_default();
    let mut answers: Vec<Vec<ConstId>> = goal_rel
        .into_iter()
        .map(|row| row.into_iter().map(ConstId).collect())
        .collect();
    answers.sort();
    let stats = EvalStats { generated_tuples: engine.generated, num_answers: answers.len() };
    Ok(EvalResult { answers, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Clause, CVar};
    use obda_owlql::parser::{parse_data, parse_ontology};
    use obda_owlql::Ontology;

    fn setup() -> (Ontology, DataInstance) {
        let o = parse_ontology("Class A\nClass B\nProperty R\nProperty S\n").unwrap();
        let d = parse_data(
            "R(a, b)\nR(b, c)\nS(c, d)\nA(b)\nA(c)\nB(d)\n",
            &o,
        )
        .unwrap();
        (o, d)
    }

    #[test]
    fn simple_join() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // G(x) ← R(x, y) ∧ A(y): answers a, b.
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(a, vec![CVar(1)]),
            ],
            num_vars: 2,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        let name = |c: ConstId| d.constant_name(c).to_owned();
        let names: Vec<String> = res.answers.iter().map(|t| name(t[0])).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(res.stats.num_answers, 2);
        assert_eq!(res.stats.generated_tuples, 2);
    }

    #[test]
    fn chained_idb_predicates() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let s = p.edb_prop(v.get_prop("S").unwrap(), v);
        let h = p.add_pred("H", 2, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // H(x, z) ← R(x, y) ∧ R(y, z); G(x) ← H(x, z) ∧ S(z, w).
        p.add_clause(Clause {
            head: h,
            head_args: vec![CVar(0), CVar(2)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(r, vec![CVar(1), CVar(2)]),
            ],
            num_vars: 3,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![
                BodyAtom::Pred(h, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(s, vec![CVar(1), CVar(2)]),
            ],
            num_vars: 3,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 1); // only a: R(a,b), R(b,c), S(c,d)
        assert_eq!(res.stats.generated_tuples, 2); // H(a,c) and G(a)
    }

    #[test]
    fn equality_atoms() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let g = p.add_pred("G", 2, PredKind::Idb);
        // G(x, y) ← A(x) ∧ (x = y): diagonal over A.
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)]), BodyAtom::Eq(CVar(0), CVar(1))],
            num_vars: 2,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 2);
        for t in &res.answers {
            assert_eq!(t[0], t[1]);
        }
    }

    #[test]
    fn top_predicate_is_active_domain() {
        let (o, d) = setup();
        let _ = o;
        let mut p = Program::new();
        let top = p.edb_top();
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(top, vec![CVar(0)])],
            num_vars: 1,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), d.num_individuals());
    }

    #[test]
    fn unsafe_equality_rejected() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // G(y) ← A(x) ∧ (y = z): y and z are never bound.
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(1)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)]), BodyAtom::Eq(CVar(1), CVar(2))],
            num_vars: 3,
        });
        let err = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::Unsafe(_)));
    }

    #[test]
    fn tuple_limit_enforced() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let g = p.add_pred("G", 2, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let opts = EvalOptions { max_tuples: Some(1), ..Default::default() };
        assert_eq!(
            evaluate(&NdlQuery::new(p, g), &d, &opts).unwrap_err(),
            EvalError::TupleLimit
        );
    }

    #[test]
    fn repeated_variable_in_atom() {
        let (o, _) = setup();
        let v = o.vocab();
        let d = parse_data("R(a, a)\nR(a, b)\n", &o).unwrap();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // G(x) ← R(x, x).
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(0)])],
            num_vars: 1,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 1);
        assert_eq!(d.constant_name(res.answers[0][0]), "a");
    }
}
