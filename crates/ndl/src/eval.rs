//! Bottom-up evaluation of NDL queries over data instances.
//!
//! This is the workspace's stand-in for the RDFox engine used in the
//! paper's experiments: it materialises every IDB predicate in dependency
//! order, without magic sets or program optimisation, so that the relative
//! costs of different rewritings have the same cause as in the paper (the
//! number of materialised tuples). It reports both answers and the total
//! number of generated tuples, as Tables 3–5 do.
//!
//! Clauses are evaluated as bound-pattern-specialised index-nested-loop
//! joins over the shared [`Database`] of [`crate::storage`]: for every
//! predicate atom the greedy `join_order` determines which argument
//! positions are bound by the time the atom is reached, and the engine
//! probes the relation's lazy [`crate::storage::ColumnIndex`] on the first
//! bound column (falling back to a scan when no position is bound),
//! verifying the remaining positions against each candidate row. The
//! original per-call hash-set engine survives as [`crate::reference`] for
//! differential tests and benchmarks.

use crate::analysis::topological_order;
use crate::planner::{plan_query, JoinPlan, PlannedAccess, QueryPlan};
use crate::program::{BodyAtom, CVar, Clause, NdlQuery, PredId, PredKind, Program};
use crate::storage::{Database, Relation};
use obda_budget::{Budget, BudgetExceeded, BudgetOps, Resource};
use obda_owlql::abox::{ConstId, DataInstance};
use obda_owlql::util::FxHashSet;
use obda_telemetry::Telemetry;
use std::time::{Duration, Instant};

/// Evaluation limits. A convenience facade over [`Budget`]: callers that
/// only need a timeout and a tuple cap keep using this; callers sharing
/// a budget across pipeline stages use the `*_budgeted` entry points.
#[derive(Debug, Clone, Default)]
pub struct EvalOptions {
    /// Wall-clock budget; `None` = unlimited.
    pub timeout: Option<Duration>,
    /// Cap on total generated tuples; `None` = unlimited.
    pub max_tuples: Option<usize>,
}

impl EvalOptions {
    /// Starts a [`Budget`] enforcing exactly these options.
    pub fn to_budget(&self) -> Budget {
        let mut b = match self.timeout {
            Some(t) => Budget::with_timeout(t),
            None => Budget::unlimited(),
        };
        if let Some(cap) = self.max_tuples {
            b = b.max_tuples(cap as u64);
        }
        b
    }
}

/// Evaluation metrics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EvalStats {
    /// Total tuples materialised across all IDB predicates.
    pub generated_tuples: usize,
    /// Number of answers (tuples in the goal relation).
    pub num_answers: usize,
    /// Wall-clock time spent evaluating.
    pub duration: Duration,
    /// Tuples materialised per predicate, indexed by [`PredId`] (zero for
    /// EDB predicates). Populated by every evaluator; on success the counts
    /// equal the distinct-tuple sizes of the materialised relations, so they
    /// are deterministic regardless of clause scheduling or thread count.
    pub per_predicate: Vec<usize>,
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The wall-clock budget was exhausted; carries the partial stats at
    /// the moment evaluation was interrupted.
    Timeout(EvalStats),
    /// The tuple cap was exceeded; carries the partial stats at the moment
    /// evaluation was interrupted.
    TupleLimit(EvalStats),
    /// The program is recursive.
    Recursive,
    /// A clause cannot be range-restricted (e.g. an equality between two
    /// never-bound variables).
    Unsafe(String),
    /// A transient fault (injected via `obda-faults` or raised by a
    /// recoverable substrate hiccup) interrupted evaluation; retrying the
    /// same evaluation may succeed. Carries the originating site tag.
    Transient(&'static str),
    /// A panic escaped the evaluation kernel and was caught at an
    /// isolation boundary. Not retryable: it indicates a bug (or an
    /// injected deliberate panic exercising the isolation path).
    Internal {
        /// The isolation boundary that caught the panic.
        site: String,
        /// The panic message, when it was a string payload.
        payload: String,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Timeout(stats) => {
                write!(f, "evaluation timed out after {} tuples", stats.generated_tuples)
            }
            EvalError::TupleLimit(stats) => {
                write!(f, "tuple limit exceeded after {} tuples", stats.generated_tuples)
            }
            EvalError::Recursive => write!(f, "program is recursive"),
            EvalError::Unsafe(msg) => write!(f, "unsafe clause: {msg}"),
            EvalError::Transient(site) => write!(f, "transient fault at {site}"),
            EvalError::Internal { site, payload } => {
                write!(f, "internal error: panic caught at {site}: {payload}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The result of evaluating `(Π, G)` over a data instance.
#[derive(Debug, Clone)]
pub struct EvalResult {
    /// The goal relation, sorted.
    pub answers: Vec<Vec<ConstId>>,
    /// Metrics.
    pub stats: EvalStats,
}

pub(crate) type Row = Vec<u32>;

pub(crate) const UNBOUND: u32 = u32::MAX;

/// Internal interruption reason raised deep inside join loops; partial
/// statistics are attached at the `evaluate_on` boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Halt {
    /// The shared [`Budget`] tripped (deadline, step cap or tuple cap).
    Budget(BudgetExceeded),
    Unsafe(String),
    /// A transient injected fault unwound out of the kernel and was
    /// downcast back to its typed payload at an isolation boundary. Only
    /// constructed when the `faults` feature compiles the injection
    /// sites in; always matched so downstream mapping stays total.
    #[cfg_attr(not(feature = "faults"), allow(dead_code))]
    Fault(&'static str),
    /// A genuine panic was caught at an isolation boundary.
    Panic {
        site: &'static str,
        payload: String,
    },
}

impl From<BudgetExceeded> for Halt {
    fn from(e: BudgetExceeded) -> Self {
        Halt::Budget(e)
    }
}

/// Renders a panic payload for error reports: string payloads verbatim,
/// anything else a placeholder.
pub(crate) fn describe_panic(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Classifies a payload caught by `catch_unwind` at the isolation
/// boundary `site`: an injected transient fault becomes [`Halt::Fault`]
/// (retryable), everything else [`Halt::Panic`] (a bug).
pub(crate) fn halt_from_panic(site: &'static str, payload: Box<dyn std::any::Any + Send>) -> Halt {
    #[cfg(feature = "faults")]
    if let Some(fault) = payload.downcast_ref::<obda_faults::FaultError>() {
        return Halt::Fault(fault.site);
    }
    Halt::Panic { site, payload: describe_panic(payload.as_ref()) }
}

/// Maps a [`Halt`] onto the public [`EvalError`] taxonomy, attaching the
/// partial statistics gathered before the interruption.
pub(crate) fn halt_to_error(halt: Halt, stats: EvalStats) -> EvalError {
    match halt {
        Halt::Budget(e) => budget_error(e, stats),
        Halt::Unsafe(msg) => EvalError::Unsafe(msg),
        Halt::Fault(site) => EvalError::Transient(site),
        Halt::Panic { site, payload } => EvalError::Internal { site: site.to_owned(), payload },
    }
}

/// Maps a budget trip onto the legacy [`EvalError`] taxonomy: tuple-cap
/// trips become [`EvalError::TupleLimit`], everything else (deadline,
/// step cap) becomes [`EvalError::Timeout`].
pub(crate) fn budget_error(e: BudgetExceeded, stats: EvalStats) -> EvalError {
    match e.resource {
        Resource::Tuples => EvalError::TupleLimit(stats),
        _ => EvalError::Timeout(stats),
    }
}

/// Greedy join order for a clause body: equalities as soon as one side is
/// bound (a constant side is always bound), otherwise the predicate atom
/// with the most bound variables, preferring constant-bound variables on
/// ties.
pub(crate) fn join_order(clause: &Clause) -> Result<Vec<usize>, String> {
    let mut remaining: Vec<usize> = (0..clause.body.len()).collect();
    let mut bound: FxHashSet<CVar> = FxHashSet::default();
    // Variables pinned to a constant (directly by an `EqConst`, or
    // transitively through an applied `Eq`): probing on one touches a
    // single key, so ties between equally-bound atoms break towards them.
    let mut const_bound: FxHashSet<CVar> = FxHashSet::default();
    let mut order = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        // Equality with a bound side first.
        if let Some(pos) = remaining.iter().position(|&i| match &clause.body[i] {
            BodyAtom::Eq(a, b) => bound.contains(a) || bound.contains(b),
            BodyAtom::EqConst(..) => true,
            _ => false,
        }) {
            let i = remaining.remove(pos);
            match &clause.body[i] {
                BodyAtom::EqConst(a, _) => {
                    const_bound.insert(*a);
                }
                BodyAtom::Eq(a, b) => {
                    if const_bound.contains(a) || const_bound.contains(b) {
                        const_bound.insert(*a);
                        const_bound.insert(*b);
                    }
                }
                BodyAtom::Pred(..) => {}
            }
            for v in clause.body[i].vars() {
                bound.insert(v);
            }
            order.push(i);
            continue;
        }
        // Otherwise the predicate atom with the most bound variables,
        // breaking ties towards the fewest *unbound* variables (keeps the
        // first join of a clause on a small binary relation instead of a
        // wide intermediate predicate), then towards the most
        // constant-bound variables (a constant-pinned probe touches one
        // key; a join-bound probe touches one key per binding).
        let best = remaining
            .iter()
            .enumerate()
            .filter(|&(_, &i)| matches!(clause.body[i], BodyAtom::Pred(..)))
            .max_by_key(|&(_, &i)| {
                let vars = clause.body[i].vars();
                let bound_count = vars.iter().filter(|v| bound.contains(v)).count();
                let unbound: std::collections::BTreeSet<_> =
                    vars.iter().filter(|v| !bound.contains(v)).collect();
                let const_count = vars.iter().filter(|v| const_bound.contains(v)).count();
                (bound_count, std::cmp::Reverse(unbound.len()), const_count)
            });
        match best {
            Some((pos, _)) => {
                let i = remaining.remove(pos);
                for v in clause.body[i].vars() {
                    bound.insert(v);
                }
                order.push(i);
            }
            None => {
                return Err("equality between variables that are never bound".into());
            }
        }
    }
    Ok(order)
}

/// The relation of a predicate: EDB relations live in the database, IDB
/// relations in the engine's materialisation table.
pub(crate) fn relation<'r>(
    program: &Program,
    db: &'r Database,
    idb: &'r [Relation],
    p: PredId,
) -> &'r Relation {
    match program.pred(p).kind {
        PredKind::Idb => &idb[p.0 as usize],
        kind => db.relation(kind),
    }
}

struct Counters {
    generated: usize,
    per_pred: Vec<usize>,
}

/// Join-kernel observability counters, accumulated per clause evaluation.
/// Always counted — a handful of `u64` adds per *batch* of candidate rows,
/// noise next to the hash probes they sit beside — and attached to the
/// clause span only when tracing is on (`experiments benchguard` holds the
/// kernel to this).
#[derive(Debug, Default, Clone)]
pub(crate) struct JoinCounters {
    /// Candidate rows examined, across scan and index-probe paths.
    pub scanned: u64,
    /// Candidate rows obtained via a column-index probe (⊆ `scanned`).
    pub index_hits: u64,
    /// Head rows handed to the emit callback (before deduplication).
    pub emitted: u64,
    /// Binding-batch size after each executed plan step, parallel to the
    /// plan's `order` (the *actual* counterpart of the plan's `est_rows`;
    /// shorter if the batch emptied early).
    pub atom_rows: Vec<u64>,
}

impl JoinCounters {
    /// Accumulates `other` (a chunk task's counters) into `self`;
    /// per-step batch sizes add element-wise.
    pub fn absorb(&mut self, other: &JoinCounters) {
        self.scanned += other.scanned;
        self.index_hits += other.index_hits;
        self.emitted += other.emitted;
        if self.atom_rows.len() < other.atom_rows.len() {
            self.atom_rows.resize(other.atom_rows.len(), 0);
        }
        for (a, &b) in self.atom_rows.iter_mut().zip(&other.atom_rows) {
            *a += b;
        }
    }
}

/// Partial statistics carried by an [`EvalError`], when the failure class
/// has any (budget trips carry the stats at interruption; the rest don't).
pub(crate) fn error_stats(e: &EvalError) -> Option<&EvalStats> {
    match e {
        EvalError::Timeout(stats) | EvalError::TupleLimit(stats) => Some(stats),
        _ => None,
    }
}

/// Verifies `row` against `binding` and, on success, appends the
/// extended binding to the flat `next` arena. Every argument position is
/// checked — bound slots must match, and repeated variables inside the
/// atom must agree — so the kernel is correct for *any* atom order and
/// access path the planner chooses.
#[inline]
fn extend_binding<B: BudgetOps>(
    binding: &[u32],
    row: &[u32],
    args: &[CVar],
    next: &mut Vec<u32>,
    next_len: &mut usize,
    budget: &mut B,
) -> Result<(), Halt> {
    budget.tick()?;
    for (k, &var) in args.iter().enumerate() {
        let slot = binding[var.0 as usize];
        if slot != UNBOUND {
            if slot != row[k] {
                return Ok(());
            }
        } else if let Some(j) = args[..k].iter().position(|&w| w == var) {
            if row[j] != row[k] {
                return Ok(());
            }
        }
    }
    let base = next.len();
    next.extend_from_slice(binding);
    for (k, &var) in args.iter().enumerate() {
        next[base + var.0 as usize] = row[k];
    }
    *next_len += 1;
    // Intermediate join results count against the tuple budget too — a
    // join can explode without ever reaching the head.
    budget.check_tuple_headroom(*next_len as u64)?;
    Ok(())
}

/// The kernel's row sink: called once per satisfying head binding, with
/// the budget threaded through so emission can halt the join.
pub(crate) type EmitFn<'a, B> = dyn FnMut(&[u32], &mut B) -> Result<(), Halt> + 'a;

/// Evaluates one clause body batch-at-a-time along `plan`, calling
/// `emit` for every binding that satisfies the body. Bindings live in a
/// flat `num_vars`-strided arena ping-ponged between two buffers — no
/// per-row allocation — and each plan step processes the whole batch
/// against one relation: a chunked scan, a hash-index probe on the
/// planned column, or a binary-search merge on sorted column 0.
///
/// When `first_range = Some((lo, hi))` and the first planned step is a
/// scan, only rows `lo..hi` of its relation seed the join — the
/// parallel engine partitions large outer loops this way. Generic over
/// [`BudgetOps`] so the sequential engine (exclusive [`Budget`]) and
/// the worker pool (`WorkerBudget` over a shared atomic allowance) run
/// the same kernel.
#[allow(clippy::too_many_arguments)] // one kernel shared by both engines
pub(crate) fn eval_clause_into<B: BudgetOps>(
    program: &Program,
    db: &Database,
    idb: &[Relation],
    budget: &mut B,
    clause: &Clause,
    plan: &JoinPlan,
    first_range: Option<(usize, usize)>,
    counters: &mut JoinCounters,
    emit: &mut EmitFn<'_, B>,
) -> Result<(), Halt> {
    // `stride` may be 0 (Boolean clauses), so the row count is explicit.
    let stride = clause.num_vars as usize;
    let mut cur: Vec<u32> = vec![UNBOUND; stride];
    let mut cur_len: usize = 1;
    let mut next: Vec<u32> = Vec::new();
    for (oi, (&i, access)) in plan.order.iter().zip(&plan.access).enumerate() {
        if cur_len == 0 {
            break;
        }
        match &clause.body[i] {
            BodyAtom::Eq(a, b) => {
                let (a, b) = (a.0 as usize, b.0 as usize);
                let mut w = 0usize;
                for r in 0..cur_len {
                    budget.tick()?;
                    let base = r * stride;
                    let va = cur[base + a];
                    let vb = cur[base + b];
                    let keep = match (va == UNBOUND, vb == UNBOUND) {
                        (false, false) => va == vb,
                        (false, true) => {
                            cur[base + b] = va;
                            true
                        }
                        (true, false) => {
                            cur[base + a] = vb;
                            true
                        }
                        (true, true) => unreachable!("join order binds one side first"),
                    };
                    if keep {
                        if w != r {
                            cur.copy_within(base..base + stride, w * stride);
                        }
                        w += 1;
                    }
                }
                cur_len = w;
                cur.truncate(cur_len * stride);
            }
            BodyAtom::EqConst(a, c) => {
                let (a, c) = (a.0 as usize, c.0);
                let mut w = 0usize;
                for r in 0..cur_len {
                    budget.tick()?;
                    let base = r * stride;
                    let va = cur[base + a];
                    let keep = if va == UNBOUND {
                        cur[base + a] = c;
                        true
                    } else {
                        va == c
                    };
                    if keep {
                        if w != r {
                            cur.copy_within(base..base + stride, w * stride);
                        }
                        w += 1;
                    }
                }
                cur_len = w;
                cur.truncate(cur_len * stride);
            }
            BodyAtom::Pred(p, args) => {
                let rel = relation(program, db, idb, *p);
                next.clear();
                let mut next_len = 0usize;
                match access {
                    PlannedAccess::Scan => {
                        let (lo, hi) = match first_range {
                            Some(range) if oi == 0 => range,
                            _ => (0, rel.len()),
                        };
                        for r in 0..cur_len {
                            budget.tick()?;
                            counters.scanned += (hi - lo) as u64;
                            let binding = &cur[r * stride..r * stride + stride];
                            for rr in lo..hi {
                                extend_binding(
                                    binding,
                                    rel.row(rr),
                                    args,
                                    &mut next,
                                    &mut next_len,
                                    budget,
                                )?;
                            }
                        }
                    }
                    PlannedAccess::Probe { column } => {
                        let col = *column;
                        let index = rel.column_index(col);
                        let key_var = args[col].0 as usize;
                        for r in 0..cur_len {
                            budget.tick()?;
                            let binding = &cur[r * stride..r * stride + stride];
                            let hits = index.probe(binding[key_var]);
                            counters.scanned += hits.len() as u64;
                            counters.index_hits += hits.len() as u64;
                            for &row_id in hits {
                                extend_binding(
                                    binding,
                                    rel.row(row_id as usize),
                                    args,
                                    &mut next,
                                    &mut next_len,
                                    budget,
                                )?;
                            }
                        }
                    }
                    PlannedAccess::SortMerge if rel.stats().sorted_col0 => {
                        // Binary-search merge on sorted column 0; the
                        // last key's range is memoised, so batches with
                        // key locality pay one search per distinct key.
                        let key_var = args[0].0 as usize;
                        let mut memo: Option<(u32, (usize, usize))> = None;
                        for r in 0..cur_len {
                            budget.tick()?;
                            let binding = &cur[r * stride..r * stride + stride];
                            let key = binding[key_var];
                            let (lo, hi) = match memo {
                                Some((k, range)) if k == key => range,
                                _ => {
                                    let range = rel.equal_range_col0(key);
                                    memo = Some((key, range));
                                    range
                                }
                            };
                            counters.scanned += (hi - lo) as u64;
                            for rr in lo..hi {
                                extend_binding(
                                    binding,
                                    rel.row(rr),
                                    args,
                                    &mut next,
                                    &mut next_len,
                                    budget,
                                )?;
                            }
                        }
                    }
                    // A merge planned against a relation that is no
                    // longer sorted (the plan outlived a mutation), or a
                    // filter access on a predicate atom: fall back to
                    // the always-correct probe on the first bound-able
                    // column 0 — correctness never depends on the plan.
                    PlannedAccess::SortMerge | PlannedAccess::Filter => {
                        let index = rel.column_index(0);
                        let key_var = args[0].0 as usize;
                        for r in 0..cur_len {
                            budget.tick()?;
                            let binding = &cur[r * stride..r * stride + stride];
                            let hits = index.probe(binding[key_var]);
                            counters.scanned += hits.len() as u64;
                            counters.index_hits += hits.len() as u64;
                            for &row_id in hits {
                                extend_binding(
                                    binding,
                                    rel.row(row_id as usize),
                                    args,
                                    &mut next,
                                    &mut next_len,
                                    budget,
                                )?;
                            }
                        }
                    }
                }
                std::mem::swap(&mut cur, &mut next);
                cur_len = next_len;
            }
        }
        counters.atom_rows.push(cur_len as u64);
    }
    let mut head_row: Row = vec![0u32; clause.head_args.len()];
    for r in 0..cur_len {
        budget.tick()?;
        counters.emitted += 1;
        let base = r * stride;
        for (j, &v) in clause.head_args.iter().enumerate() {
            let val = cur[base + v.0 as usize];
            debug_assert_ne!(val, UNBOUND, "head variable left unbound");
            head_row[j] = val;
        }
        emit(&head_row, budget)?;
    }
    Ok(())
}

/// Evaluates one clause along its plan, inserting derived head rows into
/// `out`. When tracing is on, the clause gets its own join span carrying
/// the [`JoinCounters`] plus the plan's estimated vs. actual output rows
/// (`est_rows` / `actual_rows`, for misestimation tracking).
#[allow(clippy::too_many_arguments)] // internal driver mirroring the kernel
fn eval_clause(
    program: &Program,
    db: &Database,
    idb: &[Relation],
    budget: &mut Budget,
    counters: &mut Counters,
    clause: &Clause,
    plan: &Result<JoinPlan, String>,
    out: &mut Relation,
    telem: &Telemetry<'_>,
    obs: Option<&mut JoinCounters>,
) -> Result<(), Halt> {
    let plan = plan.as_ref().map_err(|e| Halt::Unsafe(e.clone()))?;
    let span = telem.tracer.enabled().then(|| telem.span("clause"));
    let mut join = JoinCounters::default();
    let before = counters.per_pred[clause.head.0 as usize];
    let result = eval_clause_into(
        program,
        db,
        idb,
        budget,
        clause,
        plan,
        None,
        &mut join,
        &mut |row, budget| {
            if out.insert_if_new(row) {
                counters.generated += 1;
                counters.per_pred[clause.head.0 as usize] += 1;
                budget.charge_tuples(1)?;
            }
            Ok(())
        },
    );
    if let Some(span) = &span {
        span.attr_str("head", &program.pred(clause.head).name);
        span.attr("rows_scanned", join.scanned);
        span.attr("index_hits", join.index_hits);
        span.attr("rows_emitted", join.emitted);
        if plan.costed {
            span.attr("est_rows", plan.est_out.round().max(0.0) as u64);
            span.attr("actual_rows", join.emitted);
        }
        span.attr("tuples", (counters.per_pred[clause.head.0 as usize] - before) as u64);
        if let Err(halt) = &result {
            span.error(&format!("{halt:?}"));
        }
    }
    if let Some(obs) = obs {
        obs.absorb(&join);
    }
    result
}

/// The IDB predicates reachable from the goal through clause bodies.
pub(crate) fn reachable_from_goal(query: &NdlQuery) -> Vec<bool> {
    let mut reachable = vec![false; query.program.num_preds()];
    reachable[query.goal.0 as usize] = true;
    let mut stack = vec![query.goal];
    while let Some(p) = stack.pop() {
        for c in query.program.clauses_for(p) {
            for a in &c.body {
                if let BodyAtom::Pred(q, _) = a {
                    if !reachable[q.0 as usize] {
                        reachable[q.0 as usize] = true;
                        stack.push(*q);
                    }
                }
            }
        }
    }
    reachable
}

/// Evaluates `(Π, G)` over a pre-built [`Database`], materialising all
/// goal-reachable IDB predicates in dependency order (the naive strategy
/// the paper attributes to RDFox — every predicate of the program is
/// materialised in full, with no magic sets; unreachable predicates cannot
/// affect the answer and are skipped).
///
/// The database is shared: EDB column indexes built here stay cached for
/// later evaluations over the same data.
pub fn evaluate_on(
    query: &NdlQuery,
    db: &Database,
    opts: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    evaluate_on_budgeted(query, db, &mut opts.to_budget())
}

/// Like [`evaluate_on`], but draws on a caller-supplied [`Budget`] shared
/// with other pipeline stages: time, steps and tuples charged here count
/// against the same allowance as rewriting or chase construction.
pub fn evaluate_on_budgeted(
    query: &NdlQuery,
    db: &Database,
    budget: &mut Budget,
) -> Result<EvalResult, EvalError> {
    evaluate_on_traced(query, db, budget, Telemetry::disabled())
}

/// Like [`evaluate_on_budgeted`], recording spans and metrics through
/// `telem`: one `eval` span with a `clause` child per clause evaluated
/// (join counters attached), plus `ndl_tuples_generated` and
/// `ndl_budget_ticks` counters when a registry is present.
pub fn evaluate_on_traced(
    query: &NdlQuery,
    db: &Database,
    budget: &mut Budget,
    telem: Telemetry<'_>,
) -> Result<EvalResult, EvalError> {
    let span = telem.span("eval");
    span.attr_str("engine", "sequential");
    let ticks_before = budget.spent_steps();
    let qplan = plan_query(query, db);
    let result = evaluate_inner(query, db, budget, &telem.under(&span), &qplan, None);
    let tuples = match &result {
        Ok(res) => res.stats.generated_tuples,
        Err(e) => error_stats(e).map_or(0, |s| s.generated_tuples),
    };
    match &result {
        Ok(res) => {
            span.attr("tuples", tuples as u64);
            span.attr("answers", res.stats.num_answers as u64);
        }
        Err(e) => span.error(&e.to_string()),
    }
    if let Some(metrics) = telem.metrics {
        metrics.counter("ndl_tuples_generated").add(tuples as u64);
        metrics.counter("ndl_budget_ticks").add(budget.spent_steps() - ticks_before);
    }
    result
}

/// Like [`evaluate_on_budgeted`], but also returning the accumulated
/// per-clause [`JoinCounters`] (indexed by clause position). The CLI's
/// costed `explain` uses this to print estimated vs. actual
/// cardinalities from one real evaluation.
pub(crate) fn evaluate_collecting(
    query: &NdlQuery,
    db: &Database,
    budget: &mut Budget,
    qplan: &QueryPlan,
) -> Result<(EvalResult, Vec<JoinCounters>), EvalError> {
    let mut obs = vec![JoinCounters::default(); query.program.clauses().len()];
    let res = evaluate_inner(query, db, budget, &Telemetry::disabled(), qplan, Some(&mut obs))?;
    Ok((res, obs))
}

fn evaluate_inner(
    query: &NdlQuery,
    db: &Database,
    budget: &mut Budget,
    telem: &Telemetry<'_>,
    qplan: &QueryPlan,
    mut obs: Option<&mut Vec<JoinCounters>>,
) -> Result<EvalResult, EvalError> {
    let start = Instant::now();
    let program = &query.program;
    let order = topological_order(program).ok_or(EvalError::Recursive)?;
    let reachable = reachable_from_goal(query);
    let mut idb: Vec<Relation> = program
        .pred_ids()
        .map(|p| match program.pred(p).kind {
            PredKind::Idb => Relation::new(program.pred(p).arity),
            _ => Relation::new(0),
        })
        .collect();
    let mut counters = Counters { generated: 0, per_pred: vec![0; program.num_preds()] };
    let stats_at = |counters: &Counters, num_answers: usize, start: Instant| EvalStats {
        generated_tuples: counters.generated,
        num_answers,
        duration: start.elapsed(),
        per_predicate: counters.per_pred.clone(),
    };
    for p in order {
        if !reachable[p.0 as usize] {
            continue;
        }
        let mut out = Relation::new(program.pred(p).arity);
        for (ci, clause) in program.clauses().iter().enumerate() {
            if clause.head == p {
                if let Err(halt) = eval_clause(
                    program,
                    db,
                    &idb,
                    budget,
                    &mut counters,
                    clause,
                    &qplan.clauses[ci],
                    &mut out,
                    telem,
                    obs.as_deref_mut().map(|v| &mut v[ci]),
                ) {
                    let goal_answers = counters.per_pred[query.goal.0 as usize];
                    return Err(halt_to_error(halt, stats_at(&counters, goal_answers, start)));
                }
            }
        }
        idb[p.0 as usize] = out;
    }
    let goal_rel = std::mem::replace(&mut idb[query.goal.0 as usize], Relation::new(0));
    let mut answers: Vec<Vec<ConstId>> =
        goal_rel.rows().map(|row| row.iter().copied().map(ConstId).collect()).collect();
    answers.sort();
    let stats = stats_at(&counters, answers.len(), start);
    Ok(EvalResult { answers, stats })
}

/// Evaluates `(Π, G)` over `data`, building a throwaway [`Database`] first.
///
/// Callers evaluating many queries over the same data should build the
/// [`Database`] once and use [`evaluate_on`], which shares the loaded
/// relations and their indexes across evaluations.
pub fn evaluate(
    query: &NdlQuery,
    data: &DataInstance,
    opts: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    let db = Database::new(data);
    evaluate_on(query, &db, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CVar, Clause};
    use obda_owlql::parser::{parse_data, parse_ontology};
    use obda_owlql::Ontology;

    fn setup() -> (Ontology, DataInstance) {
        let o = parse_ontology("Class A\nClass B\nProperty R\nProperty S\n").unwrap();
        let d = parse_data("R(a, b)\nR(b, c)\nS(c, d)\nA(b)\nA(c)\nB(d)\n", &o).unwrap();
        (o, d)
    }

    #[test]
    fn simple_join() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // G(x) ← R(x, y) ∧ A(y): answers a, b.
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)]), BodyAtom::Pred(a, vec![CVar(1)])],
            num_vars: 2,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        let name = |c: ConstId| d.constant_name(c).to_owned();
        let names: Vec<String> = res.answers.iter().map(|t| name(t[0])).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(res.stats.num_answers, 2);
        assert_eq!(res.stats.generated_tuples, 2);
        assert_eq!(res.stats.per_predicate[g.0 as usize], 2);
        assert!(res.stats.duration > Duration::ZERO);
    }

    #[test]
    fn chained_idb_predicates() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let s = p.edb_prop(v.get_prop("S").unwrap(), v);
        let h = p.add_pred("H", 2, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // H(x, z) ← R(x, y) ∧ R(y, z); G(x) ← H(x, z) ∧ S(z, w).
        p.add_clause(Clause {
            head: h,
            head_args: vec![CVar(0), CVar(2)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(r, vec![CVar(1), CVar(2)]),
            ],
            num_vars: 3,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![
                BodyAtom::Pred(h, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(s, vec![CVar(1), CVar(2)]),
            ],
            num_vars: 3,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 1); // only a: R(a,b), R(b,c), S(c,d)
        assert_eq!(res.stats.generated_tuples, 2); // H(a,c) and G(a)
    }

    #[test]
    fn equality_atoms() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let g = p.add_pred("G", 2, PredKind::Idb);
        // G(x, y) ← A(x) ∧ (x = y): diagonal over A.
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)]), BodyAtom::Eq(CVar(0), CVar(1))],
            num_vars: 2,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 2);
        for t in &res.answers {
            assert_eq!(t[0], t[1]);
        }
    }

    #[test]
    fn top_predicate_is_active_domain() {
        let (o, d) = setup();
        let _ = o;
        let mut p = Program::new();
        let top = p.edb_top();
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(top, vec![CVar(0)])],
            num_vars: 1,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), d.num_individuals());
    }

    #[test]
    fn unsafe_equality_rejected() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // G(y) ← A(x) ∧ (y = z): y and z are never bound.
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(1)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)]), BodyAtom::Eq(CVar(1), CVar(2))],
            num_vars: 3,
        });
        let err = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap_err();
        assert!(matches!(err, EvalError::Unsafe(_)));
    }

    #[test]
    fn tuple_limit_enforced() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let g = p.add_pred("G", 2, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let opts = EvalOptions { max_tuples: Some(1), ..Default::default() };
        let err = evaluate(&NdlQuery::new(p, g), &d, &opts).unwrap_err();
        assert!(matches!(err, EvalError::TupleLimit(_)));
    }

    #[test]
    fn tuple_limit_carries_partial_stats() {
        let (o, d) = setup();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let h = p.add_pred("H", 2, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // H copies R (2 tuples, within budget); G's join then trips the cap.
        p.add_clause(Clause {
            head: h,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(h, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let opts = EvalOptions { max_tuples: Some(3), ..Default::default() };
        let err = evaluate(&NdlQuery::new(p, g), &d, &opts).unwrap_err();
        match err {
            EvalError::TupleLimit(stats) => {
                assert_eq!(stats.generated_tuples, 2, "H was fully materialised");
                assert_eq!(stats.per_predicate[h.0 as usize], 2);
                assert_eq!(stats.per_predicate[g.0 as usize], 0);
            }
            other => panic!("expected TupleLimit, got {other:?}"),
        }
    }

    #[test]
    fn repeated_variable_in_atom() {
        let (o, _) = setup();
        let v = o.vocab();
        let d = parse_data("R(a, a)\nR(a, b)\n", &o).unwrap();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // G(x) ← R(x, x).
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(0)])],
            num_vars: 1,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers.len(), 1);
        assert_eq!(d.constant_name(res.answers[0][0]), "a");
    }

    #[test]
    fn shared_database_reused_across_evaluations() {
        let (o, d) = setup();
        let v = o.vocab();
        let db = Database::new(&d);
        let before = Database::build_count();
        for class in ["A", "B"] {
            let mut p = Program::new();
            let c = p.edb_class(v.get_class(class).unwrap(), v);
            let g = p.add_pred("G", 1, PredKind::Idb);
            p.add_clause(Clause {
                head: g,
                head_args: vec![CVar(0)],
                body: vec![BodyAtom::Pred(c, vec![CVar(0)])],
                num_vars: 1,
            });
            evaluate_on(&NdlQuery::new(p, g), &db, &EvalOptions::default()).unwrap();
        }
        assert_eq!(Database::build_count(), before, "evaluate_on must not rebuild");
    }

    // --- join_order edge cases -------------------------------------------

    #[test]
    fn join_order_rejects_never_bound_equality() {
        let clause = Clause {
            head: PredId(0),
            head_args: vec![],
            body: vec![BodyAtom::Eq(CVar(0), CVar(1))],
            num_vars: 2,
        };
        assert!(join_order(&clause).is_err());
    }

    #[test]
    fn join_order_counts_constants_as_bound() {
        // (x = a) seeds the bindings, so (y = x) becomes orderable.
        let clause = Clause {
            head: PredId(0),
            head_args: vec![CVar(1)],
            body: vec![BodyAtom::Eq(CVar(1), CVar(0)), BodyAtom::EqConst(CVar(0), ConstId(7))],
            num_vars: 2,
        };
        assert_eq!(join_order(&clause).unwrap(), vec![1, 0]);
    }

    #[test]
    fn join_order_prefers_constant_bound_atoms_on_ties() {
        // After the EqConst pins x and R(x, y) probes on it, P(x, u, w)
        // and Q(y, v, z) are equally bound (one bound, two unbound
        // variables each) — but P's bound variable is pinned to a
        // constant, so its probe touches a single key. The tie must
        // break towards P, not syntactic position (which would pick Q).
        let clause = Clause {
            head: PredId(3),
            head_args: vec![],
            body: vec![
                BodyAtom::EqConst(CVar(0), ConstId(1)),
                BodyAtom::Pred(PredId(0), vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(PredId(1), vec![CVar(0), CVar(2), CVar(3)]),
                BodyAtom::Pred(PredId(2), vec![CVar(1), CVar(4), CVar(5)]),
            ],
            num_vars: 6,
        };
        assert_eq!(join_order(&clause).unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn join_order_propagates_constant_bounds_through_equalities() {
        // x0 = c, x1 = x0: x1 is constant-bound *transitively*, so the
        // ternary probing on x1 beats the equally-bound ternary probing
        // on the join-bound x2 (the old tie-break picked the later atom).
        let clause = Clause {
            head: PredId(3),
            head_args: vec![],
            body: vec![
                BodyAtom::EqConst(CVar(0), ConstId(1)),
                BodyAtom::Eq(CVar(1), CVar(0)),
                BodyAtom::Pred(PredId(0), vec![CVar(1), CVar(2)]),
                BodyAtom::Pred(PredId(1), vec![CVar(1), CVar(3), CVar(4)]),
                BodyAtom::Pred(PredId(2), vec![CVar(2), CVar(5), CVar(6)]),
            ],
            num_vars: 7,
        };
        assert_eq!(join_order(&clause).unwrap(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn join_order_handles_all_equality_body() {
        // x = a, y = x, z = y: orderable front to back from the constant.
        let clause = Clause {
            head: PredId(0),
            head_args: vec![CVar(2)],
            body: vec![
                BodyAtom::EqConst(CVar(0), ConstId(3)),
                BodyAtom::Eq(CVar(1), CVar(0)),
                BodyAtom::Eq(CVar(2), CVar(1)),
            ],
            num_vars: 3,
        };
        assert_eq!(join_order(&clause).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn all_equality_clause_evaluates_from_constant() {
        let (o, d) = setup();
        let _ = o;
        let g_const = d.individuals().next().unwrap();
        let mut p = Program::new();
        let g = p.add_pred("G", 2, PredKind::Idb);
        // G(x, y) ← (x = a) ∧ (y = x): the single row (a, a).
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::EqConst(CVar(0), g_const), BodyAtom::Eq(CVar(1), CVar(0))],
            num_vars: 2,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers, vec![vec![g_const, g_const]]);
    }

    #[test]
    fn eq_const_filters_bound_variable() {
        let (o, d) = setup();
        let v = o.vocab();
        let b_const = d.individuals().find(|&c| d.constant_name(c) == "b").unwrap();
        let mut p = Program::new();
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // G(x) ← A(x) ∧ (x = b): A = {b, c}, so only b survives.
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)]), BodyAtom::EqConst(CVar(0), b_const)],
            num_vars: 1,
        });
        let res = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        assert_eq!(res.answers, vec![vec![b_const]]);
    }
}
