//! Reachability-based evaluation of *linear* NDL queries (Theorem 2).
//!
//! Theorem 2 of the paper shows that evaluating linear NDL queries of
//! bounded width is NL-complete: deciding `Π, A ⊨ G(a)` reduces to finding
//! a path in the *grounding graph* `G` from the set `X` of ground IDB atoms
//! derivable by IDB-free clauses to `G(a)`, where `G` has an edge from
//! `Q(c)` to `Q′(c′)` whenever a ground clause instance derives the latter
//! from the former using EDB atoms of the instance.
//!
//! This module implements that evaluation strategy directly as a forward
//! breadth-first search over derived ground atoms (the worklist never holds
//! more than the ground atoms of the grounding graph). EDB atoms are
//! resolved against the same shared [`Database`] as the bottom-up engine,
//! probing the lazy per-column indexes when a join position is already
//! bound. It is cross-checked against the bottom-up materialising evaluator
//! in tests and used as an evaluator ablation in the benchmark suite.

use crate::analysis::is_linear;
use crate::eval::{EvalError, EvalOptions, EvalResult, EvalStats, Halt, Row, UNBOUND};
use crate::program::{BodyAtom, Clause, NdlQuery, PredId, Program};
use crate::storage::Database;
use obda_budget::Budget;
use obda_owlql::abox::{ConstId, DataInstance};
use obda_owlql::util::{FxHashMap, FxHashSet};
use std::collections::VecDeque;
use std::time::Instant;

/// Evaluates a linear NDL query by forward reachability over ground IDB
/// atoms (Theorem 2's strategy), resolving EDB atoms against a pre-built
/// [`Database`].
///
/// Returns [`EvalError::Unsafe`] if the program is not linear.
pub fn evaluate_linear_on(
    query: &NdlQuery,
    db: &Database,
    opts: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    evaluate_linear_on_budgeted(query, db, &mut opts.to_budget())
}

/// Like [`evaluate_linear_on`], but draws on a caller-supplied [`Budget`]
/// shared with other pipeline stages.
pub fn evaluate_linear_on_budgeted(
    query: &NdlQuery,
    db: &Database,
    budget: &mut Budget,
) -> Result<EvalResult, EvalError> {
    if !is_linear(&query.program) {
        return Err(EvalError::Unsafe("program is not linear".into()));
    }
    let start = Instant::now();
    let program = &query.program;

    // Derived ground atoms per IDB predicate, plus a worklist.
    let mut derived: FxHashMap<PredId, FxHashSet<Row>> = FxHashMap::default();
    let mut queue: VecDeque<(PredId, Row)> = VecDeque::new();
    let mut generated = 0usize;
    let mut per_pred = vec![0usize; program.num_preds()];

    let push = |p: PredId,
                row: Row,
                derived: &mut FxHashMap<PredId, FxHashSet<Row>>,
                queue: &mut VecDeque<(PredId, Row)>,
                generated: &mut usize,
                per_pred: &mut [usize],
                budget: &mut Budget|
     -> Result<(), Halt> {
        if derived.entry(p).or_default().insert(row.clone()) {
            *generated += 1;
            per_pred[p.0 as usize] += 1;
            queue.push_back((p, row));
            budget.charge_tuples(1)?;
        }
        Ok(())
    };

    let stats_at = |generated: usize, per_pred: &[usize], num_answers: usize| EvalStats {
        generated_tuples: generated,
        num_answers,
        duration: start.elapsed(),
        per_predicate: per_pred.to_vec(),
    };
    let interrupt = |halt: Halt, generated: usize, per_pred: &[usize]| {
        crate::eval::halt_to_error(halt, stats_at(generated, per_pred, 0))
    };

    // Seed: clauses without IDB body atoms.
    for clause in program.clauses() {
        let idb_atom = clause
            .body
            .iter()
            .position(|a| matches!(a, BodyAtom::Pred(p, _) if program.is_idb(*p)));
        if idb_atom.is_none() {
            let rows = ground_clause(program, clause, None, db, budget)
                .map_err(|h| interrupt(h, generated, &per_pred))?;
            for row in rows {
                push(
                    clause.head,
                    row,
                    &mut derived,
                    &mut queue,
                    &mut generated,
                    &mut per_pred,
                    budget,
                )
                .map_err(|h| interrupt(h, generated, &per_pred))?;
            }
        }
    }

    // Propagate: a derived atom Q(c) fires every clause with Q in the body.
    while let Some((p, row)) = queue.pop_front() {
        if let Err(h) = budget.tick() {
            return Err(interrupt(h.into(), generated, &per_pred));
        }
        for clause in program.clauses() {
            let has_p = clause
                .body
                .iter()
                .any(|a| matches!(a, BodyAtom::Pred(q, _) if *q == p && program.is_idb(*q)));
            if !has_p {
                continue;
            }
            let rows = ground_clause(program, clause, Some((p, &row)), db, budget)
                .map_err(|h| interrupt(h, generated, &per_pred))?;
            for out in rows {
                push(
                    clause.head,
                    out,
                    &mut derived,
                    &mut queue,
                    &mut generated,
                    &mut per_pred,
                    budget,
                )
                .map_err(|h| interrupt(h, generated, &per_pred))?;
            }
        }
    }

    let mut answers: Vec<Vec<ConstId>> = derived
        .remove(&query.goal)
        .unwrap_or_default()
        .into_iter()
        .map(|row| row.into_iter().map(ConstId).collect())
        .collect();
    answers.sort();
    let stats = stats_at(generated, &per_pred, answers.len());
    Ok(EvalResult { answers, stats })
}

/// Evaluates a linear NDL query over `data`, building a throwaway
/// [`Database`] first; see [`evaluate_linear_on`].
pub fn evaluate_linear(
    query: &NdlQuery,
    data: &DataInstance,
    opts: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    let db = Database::new(data);
    evaluate_linear_on(query, &db, opts)
}

/// Grounds one clause: if `idb_fact` is provided, the clause's (unique) IDB
/// atom is bound to it; all remaining atoms are EDB or equalities and are
/// joined against the database, probing the relation's column index when a
/// position is already bound. Returns the derived head rows.
fn ground_clause(
    program: &Program,
    clause: &Clause,
    idb_fact: Option<(PredId, &Row)>,
    db: &Database,
    budget: &mut Budget,
) -> Result<Vec<Row>, Halt> {
    let mut bindings: Vec<Row> = vec![vec![UNBOUND; clause.num_vars as usize]];
    // Bind the IDB atom first, if any.
    let mut skip_index = usize::MAX;
    if let Some((p, fact)) = idb_fact {
        // Invariant: `ground_clause` is only called with `(p, fact)` pairs
        // discovered by scanning this clause's body for `p`.
        #[allow(clippy::expect_used)]
        let pos = clause
            .body
            .iter()
            .position(|a| matches!(a, BodyAtom::Pred(q, _) if *q == p))
            .expect("caller checked the clause uses p");
        skip_index = pos;
        if let BodyAtom::Pred(_, args) = &clause.body[pos] {
            let mut binding = vec![UNBOUND; clause.num_vars as usize];
            let mut ok = true;
            for (k, &var) in args.iter().enumerate() {
                let slot = &mut binding[var.0 as usize];
                if *slot == UNBOUND {
                    *slot = fact[k];
                } else if *slot != fact[k] {
                    ok = false;
                    break;
                }
            }
            bindings = if ok { vec![binding] } else { Vec::new() };
        }
    }

    // Remaining atoms, equalities deferred until a side is bound.
    let mut remaining: Vec<usize> = (0..clause.body.len()).filter(|&i| i != skip_index).collect();
    while !remaining.is_empty() && !bindings.is_empty() {
        budget.tick()?;
        // Prefer an equality with a bound side (a constant side is always
        // bound), then any predicate atom.
        let next = remaining
            .iter()
            .position(|&i| match &clause.body[i] {
                BodyAtom::Eq(a, b) => {
                    bindings[0][a.0 as usize] != UNBOUND || bindings[0][b.0 as usize] != UNBOUND
                }
                BodyAtom::EqConst(..) => true,
                _ => false,
            })
            .or_else(|| {
                remaining.iter().position(|&i| matches!(clause.body[i], BodyAtom::Pred(..)))
            });
        let Some(pos) = next else {
            return Err(Halt::Unsafe("equality between variables that are never bound".into()));
        };
        let i = remaining.remove(pos);
        match &clause.body[i] {
            BodyAtom::Eq(a, b) => {
                let mut next_b = Vec::with_capacity(bindings.len());
                for mut binding in bindings {
                    let va = binding[a.0 as usize];
                    let vb = binding[b.0 as usize];
                    match (va == UNBOUND, vb == UNBOUND) {
                        (false, false) if va == vb => next_b.push(binding),
                        (false, false) => {}
                        (false, true) => {
                            binding[b.0 as usize] = va;
                            next_b.push(binding);
                        }
                        (true, false) => {
                            binding[a.0 as usize] = vb;
                            next_b.push(binding);
                        }
                        (true, true) => unreachable!("a side is bound by choice of atom"),
                    }
                }
                bindings = next_b;
            }
            BodyAtom::EqConst(a, c) => {
                let c = c.0;
                let mut next_b = Vec::with_capacity(bindings.len());
                for mut binding in bindings {
                    let va = binding[a.0 as usize];
                    if va == UNBOUND {
                        binding[a.0 as usize] = c;
                        next_b.push(binding);
                    } else if va == c {
                        next_b.push(binding);
                    }
                }
                bindings = next_b;
            }
            BodyAtom::Pred(p, args) => {
                debug_assert!(
                    !program.is_idb(*p),
                    "linear clause has a single IDB atom, already consumed"
                );
                let rel = db.relation(program.pred(*p).kind);
                // All bindings at this stage share the same bound-variable
                // pattern, so probe on the first position bound in any.
                let probe_col =
                    (0..args.len()).find(|&k| bindings[0][args[k].0 as usize] != UNBOUND);
                let mut next_b = Vec::new();
                let extend = |binding: &Row, row: &[u32], next_b: &mut Vec<Row>| {
                    let mut extended = binding.clone();
                    for (k, &var) in args.iter().enumerate() {
                        let slot = &mut extended[var.0 as usize];
                        if *slot == UNBOUND {
                            *slot = row[k];
                        } else if *slot != row[k] {
                            return;
                        }
                    }
                    next_b.push(extended);
                };
                match probe_col {
                    None => {
                        for binding in &bindings {
                            budget.tick()?;
                            for row in rel.rows() {
                                budget.tick()?;
                                extend(binding, row, &mut next_b);
                            }
                        }
                    }
                    Some(col) => {
                        let index = rel.column_index(col);
                        for binding in &bindings {
                            budget.tick()?;
                            let key = binding[args[col].0 as usize];
                            for &row_id in index.probe(key) {
                                budget.tick()?;
                                extend(binding, rel.row(row_id as usize), &mut next_b);
                            }
                        }
                    }
                }
                bindings = next_b;
            }
        }
    }

    Ok(bindings
        .into_iter()
        .map(|binding| clause.head_args.iter().map(|&v| binding[v.0 as usize]).collect())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, evaluate_on};
    use crate::program::{CVar, Clause, PredKind};
    use obda_owlql::parser::{parse_data, parse_ontology};

    /// A linear program computing 2-step R-reachability into A.
    fn linear_query(o: &obda_owlql::Ontology) -> NdlQuery {
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let q1 = p.add_pred("Q1", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // Q1(x) ← R(x, y) ∧ A(y);  G(x) ← R(x, y) ∧ Q1(y).
        p.add_clause(Clause {
            head: q1,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)]), BodyAtom::Pred(a, vec![CVar(1)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(q1, vec![CVar(1)]),
            ],
            num_vars: 2,
        });
        NdlQuery::new(p, g)
    }

    #[test]
    fn agrees_with_bottom_up() {
        let o = parse_ontology("Class A\nProperty R\n").unwrap();
        let d = parse_data("R(a, b)\nR(b, c)\nR(c, c)\nA(c)\n", &o).unwrap();
        let q = linear_query(&o);
        let lin = evaluate_linear(&q, &d, &EvalOptions::default()).unwrap();
        let bu = evaluate(&q, &d, &EvalOptions::default()).unwrap();
        assert_eq!(lin.answers, bu.answers);
        assert!(!lin.answers.is_empty());
        assert_eq!(lin.stats.generated_tuples, bu.stats.generated_tuples);
    }

    #[test]
    fn both_evaluators_share_one_database() {
        let o = parse_ontology("Class A\nProperty R\n").unwrap();
        let d = parse_data("R(a, b)\nR(b, c)\nR(c, c)\nA(c)\n", &o).unwrap();
        let q = linear_query(&o);
        let db = Database::new(&d);
        let before = Database::build_count();
        let lin = evaluate_linear_on(&q, &db, &EvalOptions::default()).unwrap();
        let bu = evaluate_on(&q, &db, &EvalOptions::default()).unwrap();
        assert_eq!(Database::build_count(), before, "no rebuild for either engine");
        assert_eq!(lin.answers, bu.answers);
        assert_eq!(lin.stats.per_predicate, bu.stats.per_predicate);
    }

    #[test]
    fn rejects_nonlinear() {
        let o = parse_ontology("Class A\n").unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let q1 = p.add_pred("Q1", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: q1,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)])],
            num_vars: 1,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(q1, vec![CVar(0)]), BodyAtom::Pred(q1, vec![CVar(0)])],
            num_vars: 1,
        });
        let d = parse_data("A(a)\n", &o).unwrap();
        assert!(matches!(
            evaluate_linear(&NdlQuery::new(p, g), &d, &EvalOptions::default()),
            Err(EvalError::Unsafe(_))
        ));
    }
}
