//! Reachability-based evaluation of *linear* NDL queries (Theorem 2).
//!
//! Theorem 2 of the paper shows that evaluating linear NDL queries of
//! bounded width is NL-complete: deciding `Π, A ⊨ G(a)` reduces to finding
//! a path in the *grounding graph* `G` from the set `X` of ground IDB atoms
//! derivable by IDB-free clauses to `G(a)`, where `G` has an edge from
//! `Q(c)` to `Q′(c′)` whenever a ground clause instance derives the latter
//! from the former using EDB atoms of the instance.
//!
//! This module implements that evaluation strategy directly as a forward
//! breadth-first search over derived ground atoms (the worklist never holds
//! more than the ground atoms of the grounding graph). It is cross-checked
//! against the bottom-up materialising evaluator in tests and used as an
//! evaluator ablation in the benchmark suite.

use crate::analysis::is_linear;
use crate::eval::{EvalError, EvalOptions, EvalResult, EvalStats};
use crate::program::{BodyAtom, Clause, NdlQuery, PredId, PredKind, Program};
use obda_owlql::abox::{ConstId, DataInstance};
use obda_owlql::util::{FxHashMap, FxHashSet};
use std::collections::VecDeque;
use std::time::Instant;

type Row = Vec<u32>;

const UNBOUND: u32 = u32::MAX;

/// Evaluates a linear NDL query by forward reachability over ground IDB
/// atoms (Theorem 2's strategy).
///
/// Returns [`EvalError::Unsafe`] if the program is not linear.
pub fn evaluate_linear(
    query: &NdlQuery,
    data: &DataInstance,
    opts: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    if !is_linear(&query.program) {
        return Err(EvalError::Unsafe("program is not linear".into()));
    }
    let program = &query.program;
    let deadline = opts.timeout.map(|t| Instant::now() + t);

    // Pre-materialise EDB relations with a per-predicate index used by the
    // per-clause joins.
    let mut edb: FxHashMap<PredId, Vec<Row>> = FxHashMap::default();
    for p in program.pred_ids() {
        match program.pred(p).kind {
            PredKind::EdbClass(c) => {
                let rows = data
                    .class_atoms()
                    .filter(|&(class, _)| class == c)
                    .map(|(_, a)| vec![a.0])
                    .collect();
                edb.insert(p, rows);
            }
            PredKind::EdbProp(pr) => {
                let rows = data
                    .prop_atoms()
                    .filter(|&(prop, _, _)| prop == pr)
                    .map(|(_, a, b)| vec![a.0, b.0])
                    .collect();
                edb.insert(p, rows);
            }
            PredKind::Top => {
                edb.insert(p, data.individuals().map(|a| vec![a.0]).collect());
            }
            PredKind::Idb => {}
        }
    }

    // Derived ground atoms per IDB predicate, plus a worklist.
    let mut derived: FxHashMap<PredId, FxHashSet<Row>> = FxHashMap::default();
    let mut queue: VecDeque<(PredId, Row)> = VecDeque::new();
    let mut generated = 0usize;
    let mut ticks = 0u32;

    let push = |p: PredId,
                    row: Row,
                    derived: &mut FxHashMap<PredId, FxHashSet<Row>>,
                    queue: &mut VecDeque<(PredId, Row)>,
                    generated: &mut usize| {
        if derived.entry(p).or_default().insert(row.clone()) {
            *generated += 1;
            queue.push_back((p, row));
        }
    };

    // Seed: clauses without IDB body atoms.
    for clause in program.clauses() {
        let idb_atom = clause.body.iter().position(
            |a| matches!(a, BodyAtom::Pred(p, _) if program.is_idb(*p)),
        );
        if idb_atom.is_none() {
            for row in ground_clause(program, clause, None, &edb, deadline, &mut ticks)? {
                push(clause.head, row, &mut derived, &mut queue, &mut generated);
            }
        }
    }

    // Propagate: a derived atom Q(c) fires every clause with Q in the body.
    while let Some((p, row)) = queue.pop_front() {
        if let Some(d) = deadline {
            if Instant::now() > d {
                return Err(EvalError::Timeout);
            }
        }
        if let Some(cap) = opts.max_tuples {
            if generated > cap {
                return Err(EvalError::TupleLimit);
            }
        }
        for clause in program.clauses() {
            let has_p = clause
                .body
                .iter()
                .any(|a| matches!(a, BodyAtom::Pred(q, _) if *q == p && program.is_idb(*q)));
            if !has_p {
                continue;
            }
            for out in
                ground_clause(program, clause, Some((p, &row)), &edb, deadline, &mut ticks)?
            {
                push(clause.head, out, &mut derived, &mut queue, &mut generated);
            }
        }
    }

    let mut answers: Vec<Vec<ConstId>> = derived
        .remove(&query.goal)
        .unwrap_or_default()
        .into_iter()
        .map(|row| row.into_iter().map(ConstId).collect())
        .collect();
    answers.sort();
    let stats = EvalStats { generated_tuples: generated, num_answers: answers.len() };
    Ok(EvalResult { answers, stats })
}

/// Grounds one clause: if `idb_fact` is provided, the clause's (unique) IDB
/// atom is bound to it; all remaining atoms are EDB or equalities and are
/// joined naively. Returns the derived head rows.
fn ground_clause(
    program: &Program,
    clause: &Clause,
    idb_fact: Option<(PredId, &Row)>,
    edb: &FxHashMap<PredId, Vec<Row>>,
    deadline: Option<Instant>,
    ticks: &mut u32,
) -> Result<Vec<Row>, EvalError> {
    let mut bindings: Vec<Row> = vec![vec![UNBOUND; clause.num_vars as usize]];
    // Bind the IDB atom first, if any.
    let mut skip_index = usize::MAX;
    if let Some((p, fact)) = idb_fact {
        let pos = clause
            .body
            .iter()
            .position(|a| matches!(a, BodyAtom::Pred(q, _) if *q == p))
            .expect("caller checked the clause uses p");
        skip_index = pos;
        if let BodyAtom::Pred(_, args) = &clause.body[pos] {
            let mut binding = vec![UNBOUND; clause.num_vars as usize];
            let mut ok = true;
            for (k, &var) in args.iter().enumerate() {
                let slot = &mut binding[var.0 as usize];
                if *slot == UNBOUND {
                    *slot = fact[k];
                } else if *slot != fact[k] {
                    ok = false;
                    break;
                }
            }
            bindings = if ok { vec![binding] } else { Vec::new() };
        }
    }

    // Remaining atoms, equalities deferred until a side is bound.
    let mut remaining: Vec<usize> =
        (0..clause.body.len()).filter(|&i| i != skip_index).collect();
    while !remaining.is_empty() && !bindings.is_empty() {
        *ticks = ticks.wrapping_add(1);
        if (*ticks).is_multiple_of(1024) {
            if let Some(d) = deadline {
                if Instant::now() > d {
                    return Err(EvalError::Timeout);
                }
            }
        }
        // Prefer an equality with a bound side, then any predicate atom.
        let next = remaining
            .iter()
            .position(|&i| match &clause.body[i] {
                BodyAtom::Eq(a, b) => {
                    bindings[0][a.0 as usize] != UNBOUND || bindings[0][b.0 as usize] != UNBOUND
                }
                _ => false,
            })
            .or_else(|| {
                remaining
                    .iter()
                    .position(|&i| matches!(clause.body[i], BodyAtom::Pred(..)))
            });
        let Some(pos) = next else {
            return Err(EvalError::Unsafe(
                "equality between variables that are never bound".into(),
            ));
        };
        let i = remaining.remove(pos);
        match &clause.body[i] {
            BodyAtom::Eq(a, b) => {
                let mut next_b = Vec::with_capacity(bindings.len());
                for mut binding in bindings {
                    let va = binding[a.0 as usize];
                    let vb = binding[b.0 as usize];
                    match (va == UNBOUND, vb == UNBOUND) {
                        (false, false) if va == vb => next_b.push(binding),
                        (false, false) => {}
                        (false, true) => {
                            binding[b.0 as usize] = va;
                            next_b.push(binding);
                        }
                        (true, false) => {
                            binding[a.0 as usize] = vb;
                            next_b.push(binding);
                        }
                        (true, true) => unreachable!("a side is bound by choice of atom"),
                    }
                }
                bindings = next_b;
            }
            BodyAtom::Pred(p, args) => {
                debug_assert!(
                    !program.is_idb(*p),
                    "linear clause has a single IDB atom, already consumed"
                );
                let rows = edb.get(p).map(Vec::as_slice).unwrap_or(&[]);
                let mut next_b = Vec::new();
                for binding in &bindings {
                    'rows: for row in rows {
                        let mut extended = binding.clone();
                        for (k, &var) in args.iter().enumerate() {
                            let slot = &mut extended[var.0 as usize];
                            if *slot == UNBOUND {
                                *slot = row[k];
                            } else if *slot != row[k] {
                                continue 'rows;
                            }
                        }
                        next_b.push(extended);
                    }
                }
                bindings = next_b;
            }
        }
    }

    Ok(bindings
        .into_iter()
        .map(|binding| {
            clause
                .head_args
                .iter()
                .map(|&v| binding[v.0 as usize])
                .collect()
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::program::{CVar, Clause};
    use obda_owlql::parser::{parse_data, parse_ontology};

    /// A linear program computing 2-step R-reachability into A.
    fn linear_query(o: &obda_owlql::Ontology) -> NdlQuery {
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let q1 = p.add_pred("Q1", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        // Q1(x) ← R(x, y) ∧ A(y);  G(x) ← R(x, y) ∧ Q1(y).
        p.add_clause(Clause {
            head: q1,
            head_args: vec![CVar(0)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(a, vec![CVar(1)]),
            ],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(q1, vec![CVar(1)]),
            ],
            num_vars: 2,
        });
        NdlQuery::new(p, g)
    }

    #[test]
    fn agrees_with_bottom_up() {
        let o = parse_ontology("Class A\nProperty R\n").unwrap();
        let d = parse_data("R(a, b)\nR(b, c)\nR(c, c)\nA(c)\n", &o).unwrap();
        let q = linear_query(&o);
        let lin = evaluate_linear(&q, &d, &EvalOptions::default()).unwrap();
        let bu = evaluate(&q, &d, &EvalOptions::default()).unwrap();
        assert_eq!(lin.answers, bu.answers);
        assert!(!lin.answers.is_empty());
        assert_eq!(lin.stats.generated_tuples, bu.stats.generated_tuples);
    }

    #[test]
    fn rejects_nonlinear() {
        let o = parse_ontology("Class A\n").unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let q1 = p.add_pred("Q1", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: q1,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)])],
            num_vars: 1,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![
                BodyAtom::Pred(q1, vec![CVar(0)]),
                BodyAtom::Pred(q1, vec![CVar(0)]),
            ],
            num_vars: 1,
        });
        let d = parse_data("A(a)\n", &o).unwrap();
        assert!(matches!(
            evaluate_linear(&NdlQuery::new(p, g), &d, &EvalOptions::default()),
            Err(EvalError::Unsafe(_))
        ));
    }
}
