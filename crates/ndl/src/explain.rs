//! Query-plan explanation: the stratum schedule and per-clause join
//! plans the engine will use.
//!
//! Three entry points at increasing fidelity (and cost):
//!
//! * [`explain_plan`] — static, database-free: the longest-path
//!   layering into strata and the *syntactic* join order of every
//!   goal-reachable clause (the seed engine's greedy order);
//! * [`explain_plan_on`] — the cost-based plan the engines actually
//!   run against a given [`Database`], with the planner's estimated
//!   batch cardinality after every step;
//! * [`explain_plan_executed`] — additionally evaluates the query,
//!   recording the *actual* batch cardinality after every step, so
//!   misestimation is visible per atom.
//!
//! The CLI's `obda explain` command renders these for the rewriting and
//! for the pruned program.

use crate::eval::{evaluate_collecting, reachable_from_goal, EvalError, EvalResult, JoinCounters};
use crate::planner::{plan_query, syntactic_query_plan, JoinPlan, PlannedAccess, QueryPlan};
use crate::program::{BodyAtom, NdlQuery, PredId, PredKind, Program};
use crate::storage::Database;
use obda_budget::Budget;

/// How the join kernel reaches one body atom's candidate rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomAccess {
    /// Full scan of the atom's relation (no argument bound yet); these
    /// are the outer loops the engine chunks across workers.
    Scan,
    /// Probe of the lazy column index on the given argument position.
    Probe {
        /// The argument position whose index is probed.
        column: usize,
    },
    /// An equality atom (filter or variable binding, no relation access).
    Filter,
    /// Binary-search merge on column 0 of a relation sorted on it (no
    /// hash index build).
    SortMerge,
}

/// The planned evaluation of one clause: its join order and the access
/// path of every body atom, in execution order.
#[derive(Debug, Clone)]
pub struct ClausePlan {
    /// Head predicate.
    pub head: PredId,
    /// Body atom indices in the order the kernel joins them.
    pub order: Vec<usize>,
    /// Access path per executed atom, parallel to `order`.
    pub access: Vec<AtomAccess>,
    /// Human-readable rendering of each executed atom (`R(x0, x1)`).
    pub atoms: Vec<String>,
    /// Estimated binding-batch size after each executed atom, parallel
    /// to `order`; empty when the plan was not costed (static explain).
    pub est_rows: Vec<f64>,
    /// Observed binding-batch size after each executed atom, parallel
    /// to `order`; empty unless the query was actually evaluated
    /// ([`explain_plan_executed`]).
    pub actual_rows: Vec<u64>,
    /// The error, if the clause cannot be ordered (unsafe equality).
    pub error: Option<String>,
}

/// One stratum: predicates at the same longest-path level, mutually
/// independent and evaluated concurrently by the engine.
#[derive(Debug, Clone)]
pub struct StratumPlan {
    /// Longest-path level (1 = depends only on EDB relations).
    pub level: usize,
    /// The clause plans of this stratum, grouped by head predicate in
    /// topological order.
    pub clauses: Vec<ClausePlan>,
}

/// The full predicted plan for a query.
#[derive(Debug, Clone)]
pub struct PlanExplanation {
    /// Strata in evaluation order.
    pub strata: Vec<StratumPlan>,
    /// Goal-reachable predicates (the ones the engine materialises).
    pub reachable_preds: usize,
    /// Total clauses planned.
    pub clauses: usize,
}

fn atom_text(program: &Program, atom: &BodyAtom) -> String {
    match atom {
        BodyAtom::Pred(p, args) => {
            let args: Vec<String> = args.iter().map(|v| format!("x{}", v.0)).collect();
            format!("{}({})", program.pred(*p).name, args.join(", "))
        }
        BodyAtom::Eq(a, b) => format!("x{} = x{}", a.0, b.0),
        BodyAtom::EqConst(a, c) => format!("x{} = #{}", a.0, c.0),
    }
}

fn clause_plan_from(
    program: &Program,
    clause: &crate::program::Clause,
    plan: &Result<JoinPlan, String>,
    actual: Vec<u64>,
) -> ClausePlan {
    let jp = match plan {
        Ok(jp) => jp,
        Err(msg) => {
            return ClausePlan {
                head: clause.head,
                order: Vec::new(),
                access: Vec::new(),
                atoms: Vec::new(),
                est_rows: Vec::new(),
                actual_rows: Vec::new(),
                error: Some(msg.clone()),
            };
        }
    };
    let atoms = jp.order.iter().map(|&i| atom_text(program, &clause.body[i])).collect();
    let access = jp
        .access
        .iter()
        .map(|a| match a {
            PlannedAccess::Filter => AtomAccess::Filter,
            PlannedAccess::Scan => AtomAccess::Scan,
            PlannedAccess::Probe { column } => AtomAccess::Probe { column: *column },
            PlannedAccess::SortMerge => AtomAccess::SortMerge,
        })
        .collect();
    ClausePlan {
        head: clause.head,
        order: jp.order.clone(),
        access,
        atoms,
        est_rows: jp.est_rows.clone(),
        actual_rows: actual,
        error: None,
    }
}

/// Predicts the engine's *syntactic* plan for `query` without touching
/// any data: longest-path strata and the greedy join order plus access
/// path of every goal-reachable clause. Mirrors `engine::run` with
/// [`crate::engine::EngineConfig::plan`] disabled.
pub fn explain_plan(query: &NdlQuery) -> PlanExplanation {
    build_explanation(query, &syntactic_query_plan(query), None)
}

/// The cost-based plan the engines run for `query` against `db`,
/// including the planner's estimated cardinality after every step.
pub fn explain_plan_on(query: &NdlQuery, db: &Database) -> PlanExplanation {
    build_explanation(query, &plan_query(query, db), None)
}

/// [`explain_plan_on`] from an already-computed [`QueryPlan`] for
/// `query`, for callers that cache plans (e.g. prepared queries). The
/// plan must have been built for this `query`'s program.
pub fn explain_plan_with(query: &NdlQuery, qplan: &QueryPlan) -> PlanExplanation {
    build_explanation(query, qplan, None)
}

/// Plans *and evaluates* `query` on `db`, returning the explanation
/// with both estimated and actual per-step cardinalities, alongside the
/// evaluation result. The evaluation runs on the sequential engine
/// under `budget`.
pub fn explain_plan_executed(
    query: &NdlQuery,
    db: &Database,
    budget: &mut Budget,
) -> Result<(PlanExplanation, EvalResult), EvalError> {
    let qplan = plan_query(query, db);
    let (result, obs) = evaluate_collecting(query, db, budget, &qplan)?;
    Ok((build_explanation(query, &qplan, Some(&obs)), result))
}

fn build_explanation(
    query: &NdlQuery,
    qplan: &QueryPlan,
    actuals: Option<&[JoinCounters]>,
) -> PlanExplanation {
    let program = &query.program;
    let num_preds = program.num_preds();
    let reachable = reachable_from_goal(query);
    let order = crate::analysis::topological_order(program).unwrap_or_default();

    let mut level = vec![0usize; num_preds];
    let mut num_levels = 1;
    for &p in &order {
        if !reachable[p.0 as usize] || !program.is_idb(p) {
            continue;
        }
        let mut lv = 1;
        for clause in program.clauses_for(p) {
            for atom in &clause.body {
                if let BodyAtom::Pred(q, _) = atom {
                    if program.is_idb(*q) {
                        lv = lv.max(level[q.0 as usize] + 1);
                    }
                }
            }
        }
        level[p.0 as usize] = lv;
        num_levels = num_levels.max(lv + 1);
    }
    let mut strata: Vec<Vec<PredId>> = vec![Vec::new(); num_levels];
    for &p in &order {
        if reachable[p.0 as usize] && program.is_idb(p) {
            strata[level[p.0 as usize]].push(p);
        }
    }

    let mut plan = PlanExplanation { strata: Vec::new(), reachable_preds: 0, clauses: 0 };
    plan.reachable_preds = (0..num_preds)
        .filter(|&i| reachable[i] && matches!(program.pred(PredId(i as u32)).kind, PredKind::Idb))
        .count();
    for (lv, stratum) in strata.iter().enumerate() {
        if stratum.is_empty() {
            continue;
        }
        let mut clauses = Vec::new();
        for &p in stratum {
            for (ci, clause) in program.clauses().iter().enumerate() {
                if clause.head != p {
                    continue;
                }
                let actual = actuals.map(|a| a[ci].atom_rows.clone()).unwrap_or_default();
                clauses.push(clause_plan_from(program, clause, &qplan.clauses[ci], actual));
            }
        }
        plan.clauses += clauses.len();
        plan.strata.push(StratumPlan { level: lv, clauses });
    }
    plan
}

/// Renders the plan for terminal output, one stratum per block.
pub struct PlanDisplay<'a> {
    plan: &'a PlanExplanation,
    program: &'a Program,
}

impl PlanExplanation {
    /// A displayable rendering resolving predicate names via `program`.
    pub fn display<'a>(&'a self, program: &'a Program) -> PlanDisplay<'a> {
        PlanDisplay { plan: self, program }
    }
}

impl std::fmt::Display for PlanDisplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "plan: {} strata, {} clauses, {} reachable predicates",
            self.plan.strata.len(),
            self.plan.clauses,
            self.plan.reachable_preds
        )?;
        for stratum in &self.plan.strata {
            writeln!(f, "stratum {} ({} clauses):", stratum.level, stratum.clauses.len())?;
            for clause in &stratum.clauses {
                let head = &self.program.pred(clause.head).name;
                if let Some(err) = &clause.error {
                    writeln!(f, "  {head} <- unsafe: {err}")?;
                    continue;
                }
                let steps: Vec<String> = clause
                    .atoms
                    .iter()
                    .zip(&clause.access)
                    .enumerate()
                    .map(|(k, (atom, access))| {
                        let mut s = match access {
                            AtomAccess::Scan => format!("scan {atom}"),
                            AtomAccess::Probe { column } => format!("probe[{column}] {atom}"),
                            AtomAccess::Filter => format!("filter {atom}"),
                            AtomAccess::SortMerge => format!("merge[0] {atom}"),
                        };
                        if let Some(est) = clause.est_rows.get(k) {
                            s.push_str(&format!(" est\u{2248}{}", est.round().max(0.0) as u64));
                        }
                        if let Some(actual) = clause.actual_rows.get(k) {
                            s.push_str(&format!(" actual={actual}"));
                        }
                        s
                    })
                    .collect();
                writeln!(f, "  {head} <- {}", steps.join(" ; "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CVar, Clause};

    fn sample() -> NdlQuery {
        let mut p = Program::new();
        let r = p.add_pred("R", 2, PredKind::Top);
        let t = p.add_pred("T", 2, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: t,
            head_args: vec![CVar(0), CVar(2)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(r, vec![CVar(1), CVar(2)]),
            ],
            num_vars: 3,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(t, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        NdlQuery::new(p, g)
    }

    #[test]
    fn strata_follow_dependencies() {
        let q = sample();
        let plan = explain_plan(&q);
        assert_eq!(plan.strata.len(), 2);
        assert_eq!(plan.strata[0].level, 1);
        assert_eq!(plan.strata[1].level, 2);
        assert_eq!(plan.clauses, 2);
        assert_eq!(plan.reachable_preds, 2);
    }

    #[test]
    fn first_atom_scans_then_probes() {
        let q = sample();
        let plan = explain_plan(&q);
        let t_clause = &plan.strata[0].clauses[0];
        assert_eq!(t_clause.access[0], AtomAccess::Scan);
        assert!(matches!(t_clause.access[1], AtomAccess::Probe { .. }));
    }

    #[test]
    fn unsafe_clause_reported_not_panicked() {
        let mut p = Program::new();
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Eq(CVar(0), CVar(1))],
            num_vars: 2,
        });
        let plan = explain_plan(&NdlQuery::new(p, g));
        assert_eq!(plan.strata.len(), 1);
        assert!(plan.strata[0].clauses[0].error.is_some());
    }

    #[test]
    fn display_renders_access_paths() {
        let q = sample();
        let plan = explain_plan(&q);
        let text = plan.display(&q.program).to_string();
        assert!(text.contains("stratum 1"), "{text}");
        assert!(text.contains("scan R("), "{text}");
        assert!(text.contains("probe["), "{text}");
        // Static explain carries no cardinalities.
        assert!(!text.contains("est\u{2248}"), "{text}");
        assert!(!text.contains("actual="), "{text}");
    }

    fn sample_db() -> (NdlQuery, Database) {
        use obda_owlql::parser::{parse_data, parse_ontology};
        let o = parse_ontology("Property R\n").unwrap();
        let d = parse_data("R(a, b)\nR(b, c)\nR(c, d)\n", &o).unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let t = p.add_pred("T", 2, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: t,
            head_args: vec![CVar(0), CVar(2)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(r, vec![CVar(1), CVar(2)]),
            ],
            num_vars: 3,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(t, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        (NdlQuery::new(p, g), Database::new(&d))
    }

    #[test]
    fn costed_explain_carries_estimates() {
        let (q, db) = sample_db();
        let plan = explain_plan_on(&q, &db);
        let t_clause = &plan.strata[0].clauses[0];
        assert_eq!(t_clause.est_rows.len(), t_clause.order.len());
        assert!(t_clause.actual_rows.is_empty());
        let text = plan.display(&q.program).to_string();
        assert!(text.contains("est\u{2248}"), "{text}");
        assert!(!text.contains("actual="), "{text}");
    }

    #[test]
    fn executed_explain_reports_est_and_actual() {
        let (q, db) = sample_db();
        let mut budget = Budget::unlimited();
        let (plan, result) = explain_plan_executed(&q, &db, &mut budget).unwrap();
        assert_eq!(result.answers.len(), 2, "a and b reach a 2-chain");
        let t_clause = &plan.strata[0].clauses[0];
        assert_eq!(t_clause.actual_rows.len(), t_clause.order.len());
        // R ⋈ R over the 3-row chain leaves 2 bindings after the probe.
        assert_eq!(t_clause.actual_rows[1], 2);
        let text = plan.display(&q.program).to_string();
        assert!(text.contains("est\u{2248}"), "{text}");
        assert!(text.contains("actual="), "{text}");
    }
}
