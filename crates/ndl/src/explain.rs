//! Query-plan explanation: the stratum schedule and per-clause join
//! orders the engine *would* use, without evaluating anything.
//!
//! [`explain_plan`] replays the planning decisions of [`crate::engine`] —
//! the longest-path layering into strata and the greedy join order of
//! every goal-reachable clause — and records, for each body atom, whether
//! the kernel will probe a column index or fall back to a scan. The CLI's
//! `obda explain` command renders this for the rewriting and for the
//! pruned program.

use crate::eval::{join_order, reachable_from_goal};
use crate::program::{BodyAtom, NdlQuery, PredId, PredKind, Program};
use obda_owlql::util::FxHashSet;

/// How the join kernel reaches one body atom's candidate rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtomAccess {
    /// Full scan of the atom's relation (no argument bound yet); these
    /// are the outer loops the engine chunks across workers.
    Scan,
    /// Probe of the lazy column index on the given argument position.
    Probe {
        /// The argument position whose index is probed.
        column: usize,
    },
    /// An equality atom (filter or variable binding, no relation access).
    Filter,
}

/// The planned evaluation of one clause: its join order and the access
/// path of every body atom, in execution order.
#[derive(Debug, Clone)]
pub struct ClausePlan {
    /// Head predicate.
    pub head: PredId,
    /// Body atom indices in the order the kernel joins them.
    pub order: Vec<usize>,
    /// Access path per executed atom, parallel to `order`.
    pub access: Vec<AtomAccess>,
    /// Human-readable rendering of each executed atom (`R(x0, x1)`).
    pub atoms: Vec<String>,
    /// The error, if the clause cannot be ordered (unsafe equality).
    pub error: Option<String>,
}

/// One stratum: predicates at the same longest-path level, mutually
/// independent and evaluated concurrently by the engine.
#[derive(Debug, Clone)]
pub struct StratumPlan {
    /// Longest-path level (1 = depends only on EDB relations).
    pub level: usize,
    /// The clause plans of this stratum, grouped by head predicate in
    /// topological order.
    pub clauses: Vec<ClausePlan>,
}

/// The full predicted plan for a query.
#[derive(Debug, Clone)]
pub struct PlanExplanation {
    /// Strata in evaluation order.
    pub strata: Vec<StratumPlan>,
    /// Goal-reachable predicates (the ones the engine materialises).
    pub reachable_preds: usize,
    /// Total clauses planned.
    pub clauses: usize,
}

fn atom_text(program: &Program, atom: &BodyAtom) -> String {
    match atom {
        BodyAtom::Pred(p, args) => {
            let args: Vec<String> = args.iter().map(|v| format!("x{}", v.0)).collect();
            format!("{}({})", program.pred(*p).name, args.join(", "))
        }
        BodyAtom::Eq(a, b) => format!("x{} = x{}", a.0, b.0),
        BodyAtom::EqConst(a, c) => format!("x{} = #{}", a.0, c.0),
    }
}

fn plan_clause(program: &Program, clause: &crate::program::Clause) -> ClausePlan {
    let order = match join_order(clause) {
        Ok(order) => order,
        Err(msg) => {
            return ClausePlan {
                head: clause.head,
                order: Vec::new(),
                access: Vec::new(),
                atoms: Vec::new(),
                error: Some(msg),
            };
        }
    };
    // Replay the kernel's binding discipline to predict each access path.
    let mut bound: FxHashSet<crate::program::CVar> = FxHashSet::default();
    let mut access = Vec::with_capacity(order.len());
    let mut atoms = Vec::with_capacity(order.len());
    for &i in &order {
        let atom = &clause.body[i];
        atoms.push(atom_text(program, atom));
        match atom {
            BodyAtom::Pred(_, args) => {
                let col = (0..args.len()).find(|&k| bound.contains(&args[k]));
                access.push(match col {
                    Some(column) => AtomAccess::Probe { column },
                    None => AtomAccess::Scan,
                });
            }
            BodyAtom::Eq(..) | BodyAtom::EqConst(..) => access.push(AtomAccess::Filter),
        }
        for v in atom.vars() {
            bound.insert(v);
        }
    }
    ClausePlan { head: clause.head, order, access, atoms, error: None }
}

/// Predicts the engine's plan for `query`: longest-path strata and the
/// greedy join order plus access path of every goal-reachable clause.
/// Mirrors `engine::run` exactly, but performs no evaluation.
pub fn explain_plan(query: &NdlQuery) -> PlanExplanation {
    let program = &query.program;
    let num_preds = program.num_preds();
    let reachable = reachable_from_goal(query);
    let order = crate::analysis::topological_order(program).unwrap_or_default();

    let mut level = vec![0usize; num_preds];
    let mut num_levels = 1;
    for &p in &order {
        if !reachable[p.0 as usize] || !program.is_idb(p) {
            continue;
        }
        let mut lv = 1;
        for clause in program.clauses_for(p) {
            for atom in &clause.body {
                if let BodyAtom::Pred(q, _) = atom {
                    if program.is_idb(*q) {
                        lv = lv.max(level[q.0 as usize] + 1);
                    }
                }
            }
        }
        level[p.0 as usize] = lv;
        num_levels = num_levels.max(lv + 1);
    }
    let mut strata: Vec<Vec<PredId>> = vec![Vec::new(); num_levels];
    for &p in &order {
        if reachable[p.0 as usize] && program.is_idb(p) {
            strata[level[p.0 as usize]].push(p);
        }
    }

    let mut plan = PlanExplanation { strata: Vec::new(), reachable_preds: 0, clauses: 0 };
    plan.reachable_preds = (0..num_preds)
        .filter(|&i| reachable[i] && matches!(program.pred(PredId(i as u32)).kind, PredKind::Idb))
        .count();
    for (lv, stratum) in strata.iter().enumerate() {
        if stratum.is_empty() {
            continue;
        }
        let mut clauses = Vec::new();
        for &p in stratum {
            for clause in program.clauses_for(p) {
                clauses.push(plan_clause(program, clause));
            }
        }
        plan.clauses += clauses.len();
        plan.strata.push(StratumPlan { level: lv, clauses });
    }
    plan
}

/// Renders the plan for terminal output, one stratum per block.
pub struct PlanDisplay<'a> {
    plan: &'a PlanExplanation,
    program: &'a Program,
}

impl PlanExplanation {
    /// A displayable rendering resolving predicate names via `program`.
    pub fn display<'a>(&'a self, program: &'a Program) -> PlanDisplay<'a> {
        PlanDisplay { plan: self, program }
    }
}

impl std::fmt::Display for PlanDisplay<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "plan: {} strata, {} clauses, {} reachable predicates",
            self.plan.strata.len(),
            self.plan.clauses,
            self.plan.reachable_preds
        )?;
        for stratum in &self.plan.strata {
            writeln!(f, "stratum {} ({} clauses):", stratum.level, stratum.clauses.len())?;
            for clause in &stratum.clauses {
                let head = &self.program.pred(clause.head).name;
                if let Some(err) = &clause.error {
                    writeln!(f, "  {head} <- unsafe: {err}")?;
                    continue;
                }
                let steps: Vec<String> = clause
                    .atoms
                    .iter()
                    .zip(&clause.access)
                    .map(|(atom, access)| match access {
                        AtomAccess::Scan => format!("scan {atom}"),
                        AtomAccess::Probe { column } => format!("probe[{column}] {atom}"),
                        AtomAccess::Filter => format!("filter {atom}"),
                    })
                    .collect();
                writeln!(f, "  {head} <- {}", steps.join(" ; "))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CVar, Clause};

    fn sample() -> NdlQuery {
        let mut p = Program::new();
        let r = p.add_pred("R", 2, PredKind::Top);
        let t = p.add_pred("T", 2, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: t,
            head_args: vec![CVar(0), CVar(2)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(r, vec![CVar(1), CVar(2)]),
            ],
            num_vars: 3,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(t, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        NdlQuery::new(p, g)
    }

    #[test]
    fn strata_follow_dependencies() {
        let q = sample();
        let plan = explain_plan(&q);
        assert_eq!(plan.strata.len(), 2);
        assert_eq!(plan.strata[0].level, 1);
        assert_eq!(plan.strata[1].level, 2);
        assert_eq!(plan.clauses, 2);
        assert_eq!(plan.reachable_preds, 2);
    }

    #[test]
    fn first_atom_scans_then_probes() {
        let q = sample();
        let plan = explain_plan(&q);
        let t_clause = &plan.strata[0].clauses[0];
        assert_eq!(t_clause.access[0], AtomAccess::Scan);
        assert!(matches!(t_clause.access[1], AtomAccess::Probe { .. }));
    }

    #[test]
    fn unsafe_clause_reported_not_panicked() {
        let mut p = Program::new();
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Eq(CVar(0), CVar(1))],
            num_vars: 2,
        });
        let plan = explain_plan(&NdlQuery::new(p, g));
        assert_eq!(plan.strata.len(), 1);
        assert!(plan.strata[0].clauses[0].error.is_some());
    }

    #[test]
    fn display_renders_access_paths() {
        let q = sample();
        let plan = explain_plan(&q);
        let text = plan.display(&q.program).to_string();
        assert!(text.contains("stratum 1"), "{text}");
        assert!(text.contains("scan R("), "{text}");
        assert!(text.contains("probe["), "{text}");
    }
}
