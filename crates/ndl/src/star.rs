//! The `*`-transformation: rewritings over complete data instances become
//! rewritings over arbitrary data instances (Section 2), plus Lemma 3's
//! linearity-preserving variant.
//!
//! Given an NDL-rewriting `(Π, G(x))` over complete instances, `Π*` replaces
//! every predicate `S` with a fresh IDB predicate `S*` and adds
//!
//! ```text
//! A*(x)   ← τ(x)      if T ⊨ τ(x) → A(x)
//! P*(x,y) ← ̺(x,y)    if T ⊨ ̺(x,y) → P(x,y)
//! P*(x,x) ← ⊤(x)      if T ⊨ P(x,x)
//! ```
//!
//! with `⊤` the active-domain predicate, so `|Π*| ≤ |Π| + |T|²`.
//!
//! The naive transformation destroys linearity (the derived `A*`/`P*`
//! predicates are IDB, so clause bodies may gain several IDB atoms).
//! Lemma 3 instead rewrites each clause `Q(z) ← I ∧ EQ ∧ E₁ ∧ … ∧ Eₙ` into a
//! chain `Q₀ ← I`, `Qᵢ₊₁ ← Qᵢ ∧ E′ᵢ` with `E′ᵢ ∈ υ(Eᵢ)` ranging over the
//! atoms that imply `Eᵢ` under `T`, keeping the program linear at width
//! `≤ w + 1`.

use crate::program::{BodyAtom, CVar, Clause, NdlQuery, PredId, PredKind, Program};
use obda_owlql::axiom::ClassExpr;
use obda_owlql::saturation::Taxonomy;
use obda_owlql::util::FxHashMap;
use obda_owlql::vocab::{Role, Vocab};

/// The atoms `υ(E)` that imply an EDB atom `E` under the ontology, as
/// (body-atom templates, fresh-variable count) pairs. A template uses the
/// original atom's variables plus possibly one fresh variable slot.
fn implying_atoms(
    program: &mut Program,
    kind: PredKind,
    args: &[CVar],
    fresh: CVar,
    taxonomy: &Taxonomy,
    vocab: &Vocab,
) -> Vec<(Vec<BodyAtom>, bool)> {
    let mut out: Vec<(Vec<BodyAtom>, bool)> = Vec::new();
    match kind {
        PredKind::EdbClass(a) => {
            let target = ClassExpr::Class(a);
            for sub in taxonomy.sub_classes(target).collect::<Vec<_>>() {
                match sub {
                    ClassExpr::Class(b) => {
                        let p = program.edb_class(b, vocab);
                        out.push((vec![BodyAtom::Pred(p, vec![args[0]])], false));
                    }
                    ClassExpr::Exists(r) => {
                        let atom = program.role_atom(r, args[0], fresh, vocab);
                        out.push((vec![atom], true));
                    }
                    ClassExpr::Top => {
                        // ⊤ ⊑ A only for trivial ontologies; keep soundness
                        // by using the active domain.
                        if taxonomy.sub_class(ClassExpr::Top, target) {
                            let top = program.edb_top();
                            out.push((vec![BodyAtom::Pred(top, vec![args[0]])], false));
                        }
                    }
                }
            }
        }
        PredKind::EdbProp(p) => {
            let target = Role::direct(p);
            for sub in taxonomy.sub_roles(target).collect::<Vec<_>>() {
                let atom = program.role_atom(sub, args[0], args[1], vocab);
                out.push((vec![atom], false));
            }
            if taxonomy.is_reflexive(target) {
                let top = program.edb_top();
                out.push((
                    vec![BodyAtom::Pred(top, vec![args[0]]), BodyAtom::Eq(args[0], args[1])],
                    false,
                ));
            }
        }
        PredKind::Top => {
            let top = program.edb_top();
            out.push((vec![BodyAtom::Pred(top, vec![args[0]])], false));
        }
        PredKind::Idb => unreachable!("only EDB atoms are expanded"),
    }
    out
}

/// The naive `*`-transformation: every EDB predicate `S` of the rewriting
/// becomes an IDB predicate `S*` defined from the atoms that imply it.
pub fn star_transform(query: &NdlQuery, taxonomy: &Taxonomy, vocab: &Vocab) -> NdlQuery {
    let mut out = Program::new();
    let mut pred_map: FxHashMap<PredId, PredId> = FxHashMap::default();
    // Recreate predicates: EDB → starred IDB; IDB → as-is.
    for p in query.program.pred_ids() {
        let info = query.program.pred(p).clone();
        let np = match info.kind {
            PredKind::Idb => out.add_idb_with_params(info.name, info.arity, info.num_params),
            PredKind::EdbClass(_) | PredKind::EdbProp(_) | PredKind::Top => {
                out.add_idb_with_params(format!("{}*", info.name), info.arity, 0)
            }
        };
        pred_map.insert(p, np);
    }
    // Original clauses, with every predicate replaced by its image.
    for c in query.program.clauses() {
        out.add_clause(Clause {
            head: pred_map[&c.head],
            head_args: c.head_args.clone(),
            body: c
                .body
                .iter()
                .map(|a| match a {
                    BodyAtom::Pred(p, args) => BodyAtom::Pred(pred_map[p], args.clone()),
                    other => other.clone(),
                })
                .collect(),
            num_vars: c.num_vars,
        });
    }
    // Defining clauses for the starred predicates.
    for p in query.program.pred_ids() {
        let info = query.program.pred(p).clone();
        if matches!(info.kind, PredKind::Idb) {
            continue;
        }
        let arity = info.arity as u32;
        let args: Vec<CVar> = (0..arity).map(CVar).collect();
        let fresh = CVar(arity);
        for (body, uses_fresh) in implying_atoms(&mut out, info.kind, &args, fresh, taxonomy, vocab)
        {
            out.add_clause(Clause {
                head: pred_map[&p],
                head_args: args.clone(),
                body,
                num_vars: arity + u32::from(uses_fresh),
            });
        }
    }
    NdlQuery::new(out, pred_map[&query.goal])
}

/// Lemma 3: the linearity-preserving `*`-transformation.
///
/// Each clause `Q(z) ← I ∧ EQ ∧ E₁ ∧ … ∧ Eₙ` (with `I` the unique IDB atom,
/// if any) becomes a chain of fresh predicates threading the bound variables
/// forward, with each `Eᵢ` replaced by one of the atoms in `υ(Eᵢ)`.
///
/// # Panics
/// Panics if the input program is not linear.
pub fn linear_star_transform(query: &NdlQuery, taxonomy: &Taxonomy, vocab: &Vocab) -> NdlQuery {
    assert!(crate::analysis::is_linear(&query.program), "input must be linear");
    let mut out = Program::new();
    let mut pred_map: FxHashMap<PredId, PredId> = FxHashMap::default();
    for p in query.program.pred_ids() {
        let info = query.program.pred(p).clone();
        if matches!(info.kind, PredKind::Idb) {
            let np = out.add_idb_with_params(info.name, info.arity, info.num_params);
            pred_map.insert(p, np);
        }
    }
    let mut fresh_counter = 0usize;
    for c in query.program.clauses() {
        // Partition the body.
        let mut idb_atom: Option<BodyAtom> = None;
        let mut equalities: Vec<BodyAtom> = Vec::new();
        let mut edb_atoms: Vec<(PredKind, Vec<CVar>)> = Vec::new();
        for a in &c.body {
            match a {
                BodyAtom::Pred(p, args) if query.program.is_idb(*p) => {
                    idb_atom = Some(BodyAtom::Pred(pred_map[p], args.clone()));
                }
                BodyAtom::Pred(p, args) => {
                    edb_atoms.push((query.program.pred(*p).kind, args.clone()));
                }
                eq @ (BodyAtom::Eq(..) | BodyAtom::EqConst(..)) => equalities.push(eq.clone()),
            }
        }

        // Variables needed strictly after EDB position i: later EDB atoms,
        // the equalities, and the head.
        let n = edb_atoms.len();
        let mut needed_after: Vec<Vec<CVar>> = vec![Vec::new(); n + 1];
        let mut acc: Vec<CVar> = c.head_args.clone();
        acc.extend(equalities.iter().flat_map(|e| e.vars()));
        needed_after[n] = sorted_dedup(acc.clone());
        for i in (0..n).rev() {
            acc.extend(edb_atoms[i].1.iter().copied());
            needed_after[i] = sorted_dedup(acc.clone());
        }

        // Parameter variables of the clause (trailing head positions of an
        // ordered query); chain predicates keep them as parameters so that
        // the width bound `w + 1` of Lemma 3 holds.
        let head_info = query.program.pred(c.head).clone();
        let param_vars: Vec<CVar> = c.head_args[head_info.arity - head_info.num_params..].to_vec();

        // The chain starts from the IDB atom (or from the first EDB atom).
        let mut num_vars = c.num_vars;
        let mut prev: Option<(BodyAtom, Vec<CVar>)> = idb_atom.map(|atom| {
            let bound = sorted_dedup(atom.vars());
            (atom, bound)
        });
        for (i, (kind, args)) in edb_atoms.iter().enumerate() {
            let fresh = CVar(num_vars);
            let variants = implying_atoms(&mut out, *kind, args, fresh, taxonomy, vocab);
            let uses_fresh = variants.iter().any(|&(_, f)| f);
            if uses_fresh {
                num_vars += 1;
            }
            // Bound variables after this stage.
            let mut bound: Vec<CVar> = prev.as_ref().map(|(_, b)| b.clone()).unwrap_or_default();
            bound.extend(args.iter().copied());
            let bound = sorted_dedup(bound);
            // The stage predicate keeps the bound variables needed later,
            // non-parameters first so that parameters stay trailing.
            let mut keep: Vec<CVar> = bound
                .iter()
                .copied()
                .filter(|v| needed_after[i + 1].contains(v) && !param_vars.contains(v))
                .collect();
            let stage_params: Vec<CVar> =
                param_vars.iter().copied().filter(|v| bound.contains(v)).collect();
            let num_stage_params = stage_params.len();
            keep.extend(stage_params);
            let name = format!("{}~{}", query.program.pred(c.head).name, fresh_counter);
            fresh_counter += 1;
            let stage = out.add_idb_with_params(name, keep.len(), num_stage_params);
            for (variant, _) in variants {
                let mut body: Vec<BodyAtom> = Vec::with_capacity(2);
                if let Some((prev_atom, _)) = &prev {
                    body.push(prev_atom.clone());
                }
                body.extend(variant);
                out.add_clause(Clause { head: stage, head_args: keep.clone(), body, num_vars });
            }
            prev = Some((BodyAtom::Pred(stage, keep.clone()), keep));
        }

        // Final clause: head from the last stage plus the equalities.
        let mut body: Vec<BodyAtom> = Vec::new();
        if let Some((prev_atom, _)) = prev {
            body.push(prev_atom);
        }
        body.extend(equalities);
        out.add_clause(Clause {
            head: pred_map[&c.head],
            head_args: c.head_args.clone(),
            body,
            num_vars,
        });
    }
    NdlQuery::new(out, pred_map[&query.goal])
}

fn sorted_dedup(mut v: Vec<CVar>) -> Vec<CVar> {
    v.sort_unstable();
    v.dedup();
    v
}

/// Convenience: `|T|²`-bounded size increase sanity measure used in tests
/// and reporting — the number of clauses the transformation added.
pub fn star_overhead(original: &NdlQuery, starred: &NdlQuery) -> usize {
    starred.program.num_clauses().saturating_sub(original.program.num_clauses())
}

/// Declares every class and property of the vocabulary as EDB predicates of
/// a fresh program (helper for tests and rewriters).
pub fn declare_vocab(program: &mut Program, vocab: &Vocab) -> (Vec<PredId>, Vec<PredId>) {
    let classes: Vec<PredId> = vocab.class_ids().map(|c| program.edb_class(c, vocab)).collect();
    let props: Vec<PredId> = vocab.prop_ids().map(|p| program.edb_prop(p, vocab)).collect();
    (classes, props)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{is_linear, width};
    use crate::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};
    use obda_owlql::Ontology;

    /// Π: G(x) ← R(x, y) ∧ B(y) over complete instances.
    fn sample(o: &Ontology) -> NdlQuery {
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let b = p.edb_class(v.get_class("B").unwrap(), v);
        let g = p.add_idb_with_params("G", 1, 1);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)]), BodyAtom::Pred(b, vec![CVar(1)])],
            num_vars: 2,
        });
        NdlQuery::new(p, g)
    }

    fn fixture() -> (Ontology, obda_owlql::DataInstance) {
        // B is implied by A and by having an incoming S-edge; S implies R.
        let o = parse_ontology(
            "A SubClassOf B\n\
             exists S- SubClassOf B\n\
             S SubPropertyOf R\n",
        )
        .unwrap();
        // Raw (incomplete) data: neither B nor R appear explicitly.
        let d = parse_data("S(u, w)\nA(z)\nS(z, z2)\n", &o).unwrap();
        (o, d)
    }

    #[test]
    fn star_matches_evaluation_over_completed_data() {
        let (o, d) = fixture();
        let tx = o.taxonomy();
        let q = sample(&o);
        let starred = star_transform(&q, &tx, o.vocab());
        let r_star = evaluate(&starred, &d, &EvalOptions::default()).unwrap();
        let r_complete = evaluate(&q, &d.complete(&tx), &EvalOptions::default()).unwrap();
        assert_eq!(r_star.answers, r_complete.answers);
        // u has an S-edge to w which implies R(u, w) and B(w); likewise z.
        assert_eq!(r_star.answers.len(), 2);
    }

    #[test]
    fn linear_star_matches_and_stays_linear() {
        let (o, d) = fixture();
        let tx = o.taxonomy();
        let q = sample(&o);
        assert!(is_linear(&q.program));
        let starred = linear_star_transform(&q, &tx, o.vocab());
        assert!(is_linear(&starred.program), "Lemma 3 must preserve linearity");
        let r_lin = evaluate(&starred, &d, &EvalOptions::default()).unwrap();
        let r_complete = evaluate(&q, &d.complete(&tx), &EvalOptions::default()).unwrap();
        assert_eq!(r_lin.answers, r_complete.answers);
        // Width grows by at most one (Lemma 3).
        assert!(width(&starred.program) <= width(&q.program) + 1);
    }

    #[test]
    fn naive_star_is_not_linear_in_general() {
        let (o, _) = fixture();
        let tx = o.taxonomy();
        let q = sample(&o);
        let starred = star_transform(&q, &tx, o.vocab());
        // R* and B* are IDB, so the main clause has two IDB atoms.
        assert!(!is_linear(&starred.program));
    }

    #[test]
    fn reflexive_roles_add_diagonal() {
        let o = parse_ontology("Reflexive R\nClass B\n").unwrap();
        let tx = o.taxonomy();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let g = p.add_idb_with_params("G", 2, 2);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        let q = NdlQuery::new(p, g);
        let starred = star_transform(&q, &tx, v);
        let d = parse_data("B(a)\nB(b)\n", &o).unwrap();
        let res = evaluate(&starred, &d, &EvalOptions::default()).unwrap();
        // R*(x,x) holds for every individual.
        assert_eq!(res.answers.len(), 2);
        for t in &res.answers {
            assert_eq!(t[0], t[1]);
        }
    }

    #[test]
    fn equalities_survive_linear_transform() {
        let (o, d) = fixture();
        let tx = o.taxonomy();
        let v = o.vocab();
        let mut p = Program::new();
        let b = p.edb_class(v.get_class("B").unwrap(), v);
        let g = p.add_idb_with_params("G", 2, 2);
        // G(x, y) ← B(x) ∧ (x = y).
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(b, vec![CVar(0)]), BodyAtom::Eq(CVar(0), CVar(1))],
            num_vars: 2,
        });
        let q = NdlQuery::new(p, g);
        let starred = linear_star_transform(&q, &tx, v);
        let r_lin = evaluate(&starred, &d, &EvalOptions::default()).unwrap();
        let r_complete = evaluate(&q, &d.complete(&tx), &EvalOptions::default()).unwrap();
        assert_eq!(r_lin.answers, r_complete.answers);
        assert!(!r_lin.answers.is_empty());
    }
}
