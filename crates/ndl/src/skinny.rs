//! The skinny transformation (Lemma 5).
//!
//! Any NDL query `(Π, G(x))` is equivalent to a *skinny* one (at most two
//! body atoms per clause) with `|Π′| = O(|Π|²)`, `d(Π′, G) ≤ sd(Π, G)` and
//! `w(Π′, G) ≤ w(Π, G)`, where `sd(Π, G) = 2·d(Π, G) + log ν(G) + log e_Π`
//! is the skinny depth for a weight function `ν`.
//!
//! Construction, per clause with more than two atoms:
//! 1. equalities are eliminated up-front by unifying variables (an `x = y`
//!    body atom is the same as substituting `y ↦ x` throughout the clause);
//! 2. the body is split into its EDB and IDB parts via fresh predicates
//!    `Q ← Q_E ∧ Q_I`;
//! 3. the EDB part is binarised as a balanced tree (depth `≤ log e_Π`);
//! 4. the IDB part is binarised along a **Huffman tree** for the weights
//!    `ν(Pᵢ)/ν(Q)`, so the path to `Pᵢ` has length `≤ ⌈log(ν(Q)/ν(Pᵢ))⌉`,
//!    which telescopes to the `d + log ν(G)` depth bound.

use crate::analysis::weight_function;
use crate::program::{BodyAtom, CVar, Clause, NdlQuery, PredId, PredKind, Program};
use obda_owlql::util::FxHashMap;

/// Eliminates equality atoms from a clause by unifying variables.
pub fn eliminate_equalities(clause: &Clause) -> Clause {
    // Union-find over clause variables.
    let n = clause.num_vars as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], v: u32) -> u32 {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        let mut cur = v;
        while parent[cur as usize] != root {
            let next = parent[cur as usize];
            parent[cur as usize] = root;
            cur = next;
        }
        root
    }
    for atom in &clause.body {
        if let BodyAtom::Eq(a, b) = atom {
            let (ra, rb) = (find(&mut parent, a.0), find(&mut parent, b.0));
            if ra != rb {
                parent[(ra.max(rb)) as usize] = ra.min(rb);
            }
        }
    }
    let subst = |v: CVar, parent: &mut Vec<u32>| CVar(find(parent, v.0));
    let head_args: Vec<CVar> = clause.head_args.iter().map(|&v| subst(v, &mut parent)).collect();
    let body: Vec<BodyAtom> = clause
        .body
        .iter()
        .filter(|a| !matches!(a, BodyAtom::Eq(..)))
        .map(|a| match a {
            BodyAtom::Pred(p, args) => {
                BodyAtom::Pred(*p, args.iter().map(|&v| subst(v, &mut parent)).collect())
            }
            BodyAtom::EqConst(v, c) => BodyAtom::EqConst(subst(*v, &mut parent), *c),
            BodyAtom::Eq(..) => unreachable!("filtered"),
        })
        .collect();
    Clause { head: clause.head, head_args, body, num_vars: clause.num_vars }
}

/// A Huffman-tree item: a body atom with its weight.
struct Item {
    weight: u64,
    atom: BodyAtom,
}

/// Applies Lemma 5: returns an equivalent skinny NDL query.
///
/// Uses the minimal weight function. Panics if the program is recursive.
pub fn to_skinny(query: &NdlQuery) -> NdlQuery {
    // Panicking on recursion is the documented contract above; every
    // caller feeds rewriter output, which is nonrecursive by construction.
    #[allow(clippy::expect_used)]
    let nu = weight_function(&query.program).expect("program must be nonrecursive");
    let out = query.program.clone();
    let clauses: Vec<Clause> = out.clauses().to_vec();
    // We rebuild the clause list from scratch but keep the predicate table
    // (fresh predicates are appended).
    let mut rebuilt = Program::new();
    // Copy predicate declarations.
    let mut pred_map: FxHashMap<PredId, PredId> = FxHashMap::default();
    for p in out.pred_ids() {
        let info = out.pred(p).clone();
        let np = match info.kind {
            PredKind::Idb => rebuilt.add_idb_with_params(info.name, info.arity, info.num_params),
            kind => rebuilt.add_pred(info.name, info.arity, kind),
        };
        pred_map.insert(p, np);
    }
    let map_atom = |a: &BodyAtom, pred_map: &FxHashMap<PredId, PredId>| match a {
        BodyAtom::Pred(p, args) => BodyAtom::Pred(pred_map[p], args.clone()),
        other => other.clone(),
    };

    let mut fresh_counter = 0usize;
    for clause in &clauses {
        let clause = eliminate_equalities(clause);
        if clause.body.len() <= 2 {
            rebuilt.add_clause(Clause {
                head: pred_map[&clause.head],
                head_args: clause.head_args.clone(),
                body: clause.body.iter().map(|a| map_atom(a, &pred_map)).collect(),
                num_vars: clause.num_vars,
            });
            continue;
        }
        let head_name = out.pred(clause.head).name.clone();
        let (edb_atoms, idb_atoms): (Vec<BodyAtom>, Vec<BodyAtom>) = clause
            .body
            .iter()
            .cloned()
            .partition(|a| matches!(a, BodyAtom::Pred(p, _) if !out.is_idb(*p)));

        // Binarise each side; each returns a single replacement atom.
        let build_side = |atoms: Vec<BodyAtom>,
                          weights: Vec<u64>,
                          rebuilt: &mut Program,
                          fresh_counter: &mut usize|
         -> Option<BodyAtom> {
            match atoms.len() {
                0 => None,
                1 => Some(map_atom(&atoms[0], &pred_map)),
                _ => {
                    let items: Vec<Item> = atoms
                        .into_iter()
                        .zip(weights)
                        .map(|(atom, weight)| Item { weight, atom })
                        .collect();
                    Some(huffman_binarise(
                        items,
                        &head_name,
                        &pred_map,
                        rebuilt,
                        fresh_counter,
                        clause.num_vars,
                    ))
                }
            }
        };
        let edb_weights = vec![1u64; edb_atoms.len()];
        let idb_weights: Vec<u64> = idb_atoms
            .iter()
            .map(|a| match a {
                BodyAtom::Pred(p, _) => nu.get(p).copied().unwrap_or(1).max(1),
                BodyAtom::Eq(..) | BodyAtom::EqConst(..) => 1,
            })
            .collect();
        let e_side = build_side(edb_atoms, edb_weights, &mut rebuilt, &mut fresh_counter);
        let i_side = build_side(idb_atoms, idb_weights, &mut rebuilt, &mut fresh_counter);
        let body: Vec<BodyAtom> = [e_side, i_side].into_iter().flatten().collect();
        rebuilt.add_clause(Clause {
            head: pred_map[&clause.head],
            head_args: clause.head_args.clone(),
            body,
            num_vars: clause.num_vars,
        });
    }
    NdlQuery::new(rebuilt, pred_map[&query.goal])
}

/// Binarises `items` along a Huffman tree, emitting internal predicates and
/// clauses into `rebuilt`; returns the atom for the tree root.
fn huffman_binarise(
    items: Vec<Item>,
    head_name: &str,
    pred_map: &FxHashMap<PredId, PredId>,
    rebuilt: &mut Program,
    fresh_counter: &mut usize,
    num_vars: u32,
) -> BodyAtom {
    // Min-heap by weight (ties by insertion order via a counter for
    // determinism).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<(Reverse<u64>, Reverse<usize>, usize)> = BinaryHeap::new();
    // Node table: each entry is (atom-for-node, weight).
    let mut nodes: Vec<(BodyAtom, u64)> = Vec::new();
    for item in items {
        let idx = nodes.len();
        let mapped = match &item.atom {
            BodyAtom::Pred(p, args) => BodyAtom::Pred(pred_map[p], args.clone()),
            other => other.clone(),
        };
        nodes.push((mapped, item.weight));
        heap.push((Reverse(item.weight), Reverse(idx), idx));
    }
    // Invariant: the loop guard guarantees two pops; the heap is seeded
    // with at least one node, so the final pop cannot fail either.
    #[allow(clippy::expect_used)]
    while heap.len() > 1 {
        let (_, _, i) = heap.pop().expect("len > 1");
        let (_, _, j) = heap.pop().expect("len > 1");
        let (atom_i, w_i) = nodes[i].clone();
        let (atom_j, w_j) = nodes[j].clone();
        // The internal predicate's arguments: all variables of both sides.
        let mut vars: Vec<CVar> = atom_i.vars();
        vars.extend(atom_j.vars());
        vars.sort_unstable();
        vars.dedup();
        let name = format!("{head_name}#{fresh_counter}");
        *fresh_counter += 1;
        let pid = rebuilt.add_pred(name, vars.len(), PredKind::Idb);
        rebuilt.add_clause(Clause {
            head: pid,
            head_args: vars.clone(),
            body: vec![atom_i, atom_j],
            num_vars,
        });
        let idx = nodes.len();
        let w = w_i.saturating_add(w_j);
        nodes.push((BodyAtom::Pred(pid, vars), w));
        heap.push((Reverse(w), Reverse(idx), idx));
    }
    #[allow(clippy::expect_used)] // seeded with >= 1 node, never drained below 1
    let (_, _, root) = heap.pop().expect("nonempty");
    nodes[root].0.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::{analyze, is_skinny};
    use crate::eval::{evaluate, EvalOptions};
    use obda_owlql::parser::{parse_data, parse_ontology};
    use obda_owlql::vocab::{ClassId, PropId};

    /// A wide clause: G(x) ← A(x) ∧ A(y) ∧ R(x,y) ∧ Q1(y) ∧ Q2(y) ∧ Q3(x).
    fn wide_query() -> NdlQuery {
        let o = parse_ontology("Class A\nProperty R\n").unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(ClassId(0), v);
        let r = p.edb_prop(PropId(0), v);
        let mut qs = Vec::new();
        for i in 0..3 {
            let q = p.add_pred(format!("Q{i}"), 1, PredKind::Idb);
            p.add_clause(Clause {
                head: q,
                head_args: vec![CVar(0)],
                body: vec![BodyAtom::Pred(a, vec![CVar(0)])],
                num_vars: 1,
            });
            qs.push(q);
        }
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![
                BodyAtom::Pred(a, vec![CVar(0)]),
                BodyAtom::Pred(a, vec![CVar(1)]),
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(qs[0], vec![CVar(1)]),
                BodyAtom::Pred(qs[1], vec![CVar(1)]),
                BodyAtom::Pred(qs[2], vec![CVar(0)]),
            ],
            num_vars: 2,
        });
        NdlQuery::new(p, g)
    }

    #[test]
    fn produces_skinny_program() {
        let q = wide_query();
        assert!(!is_skinny(&q.program));
        let s = to_skinny(&q);
        assert!(is_skinny(&s.program));
    }

    #[test]
    fn preserves_answers() {
        let o = parse_ontology("Class A\nProperty R\n").unwrap();
        let d = parse_data("A(a)\nA(b)\nA(c)\nR(a, b)\nR(b, c)\nR(c, a)\nR(a, a)\n", &o).unwrap();
        let q = wide_query();
        let s = to_skinny(&q);
        let r1 = evaluate(&q, &d, &EvalOptions::default()).unwrap();
        let r2 = evaluate(&s, &d, &EvalOptions::default()).unwrap();
        assert_eq!(r1.answers, r2.answers);
        assert!(!r1.answers.is_empty());
    }

    #[test]
    fn respects_skinny_depth_bound() {
        let q = wide_query();
        let before = analyze(&q);
        let s = to_skinny(&q);
        let after = analyze(&s);
        assert!(after.depth <= before.skinny_depth, "{after:?} vs {before:?}");
        assert!(after.width <= before.width);
    }

    #[test]
    fn equality_elimination_unifies() {
        let o = parse_ontology("Class A\n").unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(ClassId(0), v);
        let g = p.add_pred("G", 2, PredKind::Idb);
        // G(x, y) ← A(x) ∧ (x = y)  becomes  G(x, x) ← A(x).
        let clause = Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)]), BodyAtom::Eq(CVar(0), CVar(1))],
            num_vars: 2,
        };
        let e = eliminate_equalities(&clause);
        assert_eq!(e.head_args, vec![CVar(0), CVar(0)]);
        assert_eq!(e.body.len(), 1);
        // And it evaluates identically.
        p.add_clause(clause);
        let mut p2 = Program::new();
        let a2 = p2.edb_class(ClassId(0), v);
        let _ = a2;
        let g2 = p2.add_pred("G", 2, PredKind::Idb);
        p2.add_clause(Clause { head: g2, ..e });
        let d = parse_data("A(u)\nA(w)\n", &o).unwrap();
        let r1 = evaluate(&NdlQuery::new(p, g), &d, &EvalOptions::default()).unwrap();
        let r2 = evaluate(&NdlQuery::new(p2, g2), &d, &EvalOptions::default()).unwrap();
        assert_eq!(r1.answers, r2.answers);
        assert_eq!(r1.answers.len(), 2);
    }

    #[test]
    fn chained_equalities_unify_transitively() {
        let o = parse_ontology("Class A\n").unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let a = p.edb_class(ClassId(0), v);
        let g = p.add_pred("G", 1, PredKind::Idb);
        let clause = Clause {
            head: g,
            head_args: vec![CVar(2)],
            body: vec![
                BodyAtom::Pred(a, vec![CVar(0)]),
                BodyAtom::Eq(CVar(0), CVar(1)),
                BodyAtom::Eq(CVar(1), CVar(2)),
            ],
            num_vars: 3,
        };
        let e = eliminate_equalities(&clause);
        assert_eq!(e.head_args, vec![CVar(0)]);
        assert_eq!(e.body, vec![BodyAtom::Pred(a, vec![CVar(0)])]);
    }
}
