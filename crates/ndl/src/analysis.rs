//! Structural analysis of NDL queries (Section 3.1 of the paper).
//!
//! * dependency digraph, nonrecursiveness, and the depth `d(Π, G)`;
//! * *linear* programs (at most one IDB body atom per clause);
//! * *skinny* programs (at most two body atoms per clause);
//! * ordered queries, parameters, and the width `w(Π, G)`;
//! * weight functions `ν` and the skinny depth
//!   `sd(Π, G) = 2·d(Π, G) + log ν(G) + log e_Π`.

use crate::program::{BodyAtom, NdlQuery, PredId, Program};
use obda_owlql::util::FxHashMap;

/// Structural facts about an NDL query.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Whether the dependency digraph is acyclic.
    pub nonrecursive: bool,
    /// Depth `d(Π, G)`: longest dependency path from the goal.
    pub depth: usize,
    /// Whether every clause has at most one IDB body atom.
    pub linear: bool,
    /// Whether every clause has at most two body atoms.
    pub skinny: bool,
    /// Width `w(Π, G)`: maximum number of non-parameter variables per clause.
    pub width: usize,
    /// Minimal weight of the goal, `ν(G)`.
    pub goal_weight: u64,
    /// Maximum number of EDB atoms in a clause, `e_Π` (at least 1).
    pub max_edb_atoms: usize,
    /// Skinny depth `sd(Π, G) = 2d + ⌈log₂ ν(G)⌉ + ⌈log₂ e_Π⌉`.
    pub skinny_depth: usize,
}

/// Computes the IDB dependency adjacency: `deps[q]` = predicates occurring
/// in bodies of clauses with head `q`.
pub fn dependencies(program: &Program) -> FxHashMap<PredId, Vec<PredId>> {
    let mut deps: FxHashMap<PredId, Vec<PredId>> = FxHashMap::default();
    for c in program.clauses() {
        let entry = deps.entry(c.head).or_default();
        for atom in &c.body {
            if let BodyAtom::Pred(p, _) = atom {
                if !entry.contains(p) {
                    entry.push(*p);
                }
            }
        }
    }
    deps
}

/// Topological order of the IDB predicates (dependencies first), or `None`
/// if the program is recursive.
pub fn topological_order(program: &Program) -> Option<Vec<PredId>> {
    let deps = dependencies(program);
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        White,
        Grey,
        Black,
    }
    let n = program.num_preds();
    let mut marks = vec![Mark::White; n];
    let mut order = Vec::new();

    fn visit(
        p: PredId,
        deps: &FxHashMap<PredId, Vec<PredId>>,
        marks: &mut [Mark],
        order: &mut Vec<PredId>,
        program: &Program,
    ) -> bool {
        match marks[p.0 as usize] {
            Mark::Grey => return false,
            Mark::Black => return true,
            Mark::White => {}
        }
        if !program.is_idb(p) {
            marks[p.0 as usize] = Mark::Black;
            return true;
        }
        marks[p.0 as usize] = Mark::Grey;
        if let Some(ds) = deps.get(&p) {
            for &d in ds {
                if !visit(d, deps, marks, order, program) {
                    return false;
                }
            }
        }
        marks[p.0 as usize] = Mark::Black;
        order.push(p);
        true
    }

    for p in program.pred_ids() {
        if program.is_idb(p) && !visit(p, &deps, &mut marks, &mut order, program) {
            return None;
        }
    }
    Some(order)
}

/// The depth `d(Π, G)`: the longest directed dependency path starting at the
/// goal. Returns `None` for recursive programs.
pub fn depth(query: &NdlQuery) -> Option<usize> {
    let order = topological_order(&query.program)?;
    let deps = dependencies(&query.program);
    let mut d: FxHashMap<PredId, usize> = FxHashMap::default();
    for p in query.program.pred_ids() {
        if !query.program.is_idb(p) {
            d.insert(p, 0);
        }
    }
    for &p in &order {
        let best = deps
            .get(&p)
            .map(|ds| ds.iter().map(|q| d.get(q).copied().unwrap_or(0) + 1).max().unwrap_or(0))
            .unwrap_or(0);
        d.insert(p, best);
    }
    Some(d.get(&query.goal).copied().unwrap_or(0))
}

/// The minimal weight function: `ν(E) = 0` for EDB predicates and
/// `ν(Q) = max(1, max over clauses of Σ ν(Pᵢ))` for IDB predicates,
/// computed bottom-up. Returns `None` for recursive programs.
pub fn weight_function(program: &Program) -> Option<FxHashMap<PredId, u64>> {
    let order = topological_order(program)?;
    let mut nu: FxHashMap<PredId, u64> = FxHashMap::default();
    for p in program.pred_ids() {
        if !program.is_idb(p) {
            nu.insert(p, 0);
        }
    }
    for &p in &order {
        let mut best = 1u64;
        for c in program.clauses_for(p) {
            let mut total = 0u64;
            for atom in &c.body {
                if let BodyAtom::Pred(q, _) = atom {
                    total = total.saturating_add(nu.get(q).copied().unwrap_or(0));
                }
            }
            best = best.max(total);
        }
        nu.insert(p, best);
    }
    Some(nu)
}

/// The width `w(Π, G)` of an ordered query: the maximum over clauses of the
/// number of distinct non-parameter variables. Parameter variables of a
/// clause are the ones in the trailing parameter positions of its head.
pub fn width(program: &Program) -> usize {
    let mut w = 0usize;
    for c in program.clauses() {
        let info = program.pred(c.head);
        let params: Vec<_> = c.head_args[info.arity - info.num_params..].to_vec();
        let mut vars: Vec<_> = c.body.iter().flat_map(|a| a.vars()).collect();
        vars.extend(c.head_args.iter().copied());
        vars.sort_unstable();
        vars.dedup();
        let non_params = vars.iter().filter(|v| !params.contains(v)).count();
        w = w.max(non_params);
    }
    w
}

/// Whether the program is linear: at most one IDB body atom per clause.
pub fn is_linear(program: &Program) -> bool {
    program.clauses().iter().all(|c| {
        c.body.iter().filter(|a| matches!(a, BodyAtom::Pred(p, _) if program.is_idb(*p))).count()
            <= 1
    })
}

/// Whether the program is skinny: at most two body atoms per clause.
pub fn is_skinny(program: &Program) -> bool {
    program.clauses().iter().all(|c| c.body.len() <= 2)
}

/// The maximum number of EDB atoms in a clause (`e_Π`, at least 1).
pub fn max_edb_atoms(program: &Program) -> usize {
    program
        .clauses()
        .iter()
        .map(|c| {
            c.body
                .iter()
                .filter(|a| matches!(a, BodyAtom::Pred(p, _) if !program.is_idb(*p)))
                .count()
        })
        .max()
        .unwrap_or(0)
        .max(1)
}

fn ceil_log2(x: u64) -> usize {
    (64 - x.max(1).leading_zeros() as usize) - usize::from(x.is_power_of_two())
}

/// Runs the full structural analysis.
pub fn analyze(query: &NdlQuery) -> Analysis {
    let program = &query.program;
    let nonrecursive = topological_order(program).is_some();
    let d = depth(query).unwrap_or(usize::MAX);
    let nu = weight_function(program);
    let goal_weight = nu.as_ref().and_then(|m| m.get(&query.goal).copied()).unwrap_or(u64::MAX);
    let e = max_edb_atoms(program);
    let skinny_depth = if nonrecursive {
        2 * d + ceil_log2(goal_weight) + ceil_log2(e as u64)
    } else {
        usize::MAX
    };
    Analysis {
        nonrecursive,
        depth: d,
        linear: is_linear(program),
        skinny: is_skinny(program),
        width: width(program),
        goal_weight,
        max_edb_atoms: e,
        skinny_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CVar, Clause, PredKind};
    use obda_owlql::vocab::{ClassId, PropId, Vocab};

    fn vocab() -> Vocab {
        let mut v = Vocab::new();
        v.class("A");
        v.prop("R");
        v
    }

    /// The running Example 1 of the paper:
    /// `G(x) ← R(x,y) ∧ Q(x)`, `Q(x) ← R(y,x)`; ordered with parameter x,
    /// width 1, linear.
    fn example_1() -> NdlQuery {
        let v = vocab();
        let mut p = Program::new();
        let r = p.edb_prop(PropId(0), &v);
        let q = p.add_idb_with_params("Q", 1, 1);
        let g = p.add_idb_with_params("G", 1, 1);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)]), BodyAtom::Pred(q, vec![CVar(0)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: q,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(1), CVar(0)])],
            num_vars: 2,
        });
        NdlQuery::new(p, g)
    }

    #[test]
    fn example_1_analysis() {
        let q = example_1();
        let a = analyze(&q);
        assert!(a.nonrecursive);
        assert!(a.linear);
        assert!(a.skinny);
        assert_eq!(a.width, 1, "Example 1 has width 1");
        assert_eq!(a.depth, 2); // G → Q → R
        assert_eq!(a.goal_weight, 1); // linear programs have ν bounded by 1
    }

    #[test]
    fn recursion_detected() {
        let v = vocab();
        let mut p = Program::new();
        let r = p.edb_prop(PropId(0), &v);
        let q = p.add_pred("Q", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: q,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)]), BodyAtom::Pred(g, vec![CVar(1)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(q, vec![CVar(0)])],
            num_vars: 1,
        });
        assert!(topological_order(&p).is_none());
        let a = analyze(&NdlQuery::new(p, g));
        assert!(!a.nonrecursive);
    }

    #[test]
    fn weight_of_branching_program() {
        // G ← Q ∧ Q (a diamond): ν(G) = 2·ν(Q).
        let v = vocab();
        let mut p = Program::new();
        let a = p.edb_class(ClassId(0), &v);
        let q = p.add_pred("Q", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: q,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(a, vec![CVar(0)])],
            num_vars: 1,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(q, vec![CVar(0)]), BodyAtom::Pred(q, vec![CVar(0)])],
            num_vars: 1,
        });
        let nu = weight_function(&p).unwrap();
        assert_eq!(nu[&q], 1);
        assert_eq!(nu[&g], 2);
        assert!(!is_linear(&p));
        assert!(is_skinny(&p));
    }

    #[test]
    fn width_ignores_parameters() {
        let v = vocab();
        let mut p = Program::new();
        let r = p.edb_prop(PropId(0), &v);
        // G(y, x) with one trailing parameter x: width counts y and z only.
        let g = p.add_idb_with_params("G", 2, 1);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(2)]),
                BodyAtom::Pred(r, vec![CVar(2), CVar(1)]),
            ],
            num_vars: 3,
        });
        assert_eq!(width(&p), 2);
    }

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
    }
}
