//! Parallel, goal-directed bottom-up evaluation.
//!
//! This engine layers three optimisations over the faithful
//! materialising evaluator of [`crate::eval`]:
//!
//! 1. **Relevance pruning** ([`crate::relevance`]): the program is
//!    rewritten goal-directedly before evaluation, eliminating renaming
//!    predicates, used-once views, copy clauses and dead columns, so
//!    strictly fewer tuples are materialised.
//! 2. **Stratum scheduling**: the topological order is partitioned into
//!    *strata* — level sets of the longest-path layering of the
//!    dependency DAG — whose predicates are mutually independent. All
//!    clauses of a stratum, with large outer scans split into row-range
//!    chunks, form a task queue drained by a scoped-thread worker pool
//!    (`std::thread::scope`; no external dependencies). Clauses whose
//!    body references an already-known-empty relation are skipped
//!    without running their joins.
//! 3. **Shared budgets** ([`obda_budget::SharedBudget`]): the pool
//!    races one atomic allowance; the first deadline/step/tuple trip
//!    poisons every worker, and the engine reports the same typed
//!    [`EvalError`] taxonomy as the sequential evaluator.
//!
//! Concurrency model: relations of *completed* strata (and the EDB
//! [`Database`]) are only read — their lazy `OnceLock` column indexes
//! make concurrent probing safe — while the current stratum's output
//! relations are mutated behind per-predicate mutexes that workers only
//! take to merge a finished task's buffered rows. Statistics are
//! deterministic across thread counts: every relation is deduplicated
//! exactly, so per-predicate counts equal the relation sizes, and
//! answers are sorted.

use crate::analysis::topological_order;
use crate::eval::{
    error_stats, eval_clause_into, halt_from_panic, halt_to_error, reachable_from_goal, relation,
    EvalError, EvalOptions, EvalResult, EvalStats, Halt, JoinCounters,
};
use crate::planner::{plan_query, syntactic_query_plan, JoinPlan, PlannedAccess, QueryPlan};
use crate::program::{BodyAtom, Clause, NdlQuery, PredId, PredKind};
use crate::relevance::{prune_for_goal, PrunedQuery};
use crate::storage::{Database, Relation};
use obda_budget::{Budget, BudgetOps, SharedBudget, WorkerBudget};
use obda_owlql::abox::ConstId;
use obda_telemetry::Telemetry;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Tuning knobs for the parallel, goal-directed engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads; `0` = one per available CPU, `1` = run the same
    /// pruned, stratum-scheduled plan inline without spawning.
    pub threads: usize,
    /// Run the [`crate::relevance`] pruning pass first.
    pub prune: bool,
    /// Minimum relation size before a clause's outer scan is split into
    /// per-worker row ranges. Tests lower this to exercise chunking on
    /// small data.
    pub chunk_min_rows: usize,
    /// Use the cost-based [`crate::planner`] (`true`, the default) or
    /// fall back to syntactic join order. Answers are identical either
    /// way; this knob exists for benchmarking and differential tests.
    pub plan: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { threads: 1, prune: true, chunk_min_rows: 1024, plan: true }
    }
}

impl EngineConfig {
    /// A config with the given thread count and pruning enabled.
    pub fn with_threads(threads: usize) -> Self {
        EngineConfig { threads, ..EngineConfig::default() }
    }

    /// Resolves `threads = 0` to the available parallelism.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        }
    }
}

/// Evaluates `(Π, G)` over a pre-built [`Database`] with the parallel,
/// goal-directed engine.
pub fn evaluate_engine_on(
    query: &NdlQuery,
    db: &Database,
    opts: &EvalOptions,
    cfg: &EngineConfig,
) -> Result<EvalResult, EvalError> {
    evaluate_engine_on_budgeted(query, db, &mut opts.to_budget(), cfg)
}

/// Like [`evaluate_engine_on`], but drawing on a caller-supplied
/// [`Budget`] shared with other pipeline stages.
pub fn evaluate_engine_on_budgeted(
    query: &NdlQuery,
    db: &Database,
    budget: &mut Budget,
    cfg: &EngineConfig,
) -> Result<EvalResult, EvalError> {
    evaluate_engine_on_traced(query, db, budget, cfg, Telemetry::disabled())
}

/// Like [`evaluate_engine_on_budgeted`], recording spans and metrics
/// through `telem`: a `prune` span (clause counts before/after), then an
/// `eval` span whose children are `stratum-schedule`, per-stratum
/// `stratum` spans and per-task `clause_task` spans with join counters.
pub fn evaluate_engine_on_traced(
    query: &NdlQuery,
    db: &Database,
    budget: &mut Budget,
    cfg: &EngineConfig,
    telem: Telemetry<'_>,
) -> Result<EvalResult, EvalError> {
    if cfg.prune {
        let span = telem.span("prune");
        let pruned = prune_for_goal(query);
        span.attr("clauses_before", pruned.stats.clauses_before as u64);
        span.attr("clauses_after", pruned.stats.clauses_after as u64);
        span.attr("preds_before", pruned.stats.preds_before as u64);
        span.attr("preds_after", pruned.stats.preds_after as u64);
        span.end();
        evaluate_pruned_on_traced(&pruned, db, budget, cfg, telem)
    } else {
        run(query, None, query.program.num_preds(), db, budget, cfg, None, telem)
    }
}

/// Evaluates an already-pruned query (callers that cache the
/// [`prune_for_goal`] result across executions, e.g. `PreparedOmq`).
/// Statistics are reported against the *original* program's predicate
/// ids via [`PrunedQuery::origin`].
pub fn evaluate_pruned_on_budgeted(
    pruned: &PrunedQuery,
    db: &Database,
    budget: &mut Budget,
    cfg: &EngineConfig,
) -> Result<EvalResult, EvalError> {
    evaluate_pruned_on_traced(pruned, db, budget, cfg, Telemetry::disabled())
}

/// Like [`evaluate_pruned_on_budgeted`], recording spans and metrics
/// through `telem`.
pub fn evaluate_pruned_on_traced(
    pruned: &PrunedQuery,
    db: &Database,
    budget: &mut Budget,
    cfg: &EngineConfig,
    telem: Telemetry<'_>,
) -> Result<EvalResult, EvalError> {
    evaluate_pruned_planned_on_traced(pruned, db, budget, cfg, None, telem)
}

/// Like [`evaluate_pruned_on_traced`], but optionally reusing a
/// [`QueryPlan`] computed earlier for the *pruned* program (callers such
/// as `PreparedOmq` cache plans per database alongside the pruned query,
/// amortising planning across repeated executions). With `qplan = None`
/// the engine plans per [`EngineConfig::plan`].
pub fn evaluate_pruned_planned_on_traced(
    pruned: &PrunedQuery,
    db: &Database,
    budget: &mut Budget,
    cfg: &EngineConfig,
    qplan: Option<&QueryPlan>,
    telem: Telemetry<'_>,
) -> Result<EvalResult, EvalError> {
    // Hydrate exactly the EDB relations the pruned program mentions, so a
    // lazily loaded snapshot faults in only the columns this query joins
    // (already-hydrated slots and parse-path databases cost nothing).
    let program = &pruned.query.program;
    let relevant = program
        .pred_ids()
        .map(|p| program.pred(p).kind)
        .filter(|k| matches!(k, PredKind::EdbClass(_) | PredKind::EdbProp(_)));
    let (relations, columns) = db.prefetch(relevant);
    if relations > 0 {
        let span = telem.span("hydrate");
        span.attr("relations", relations);
        span.attr("columns", columns);
        span.end();
    }
    let orig = pruned.origin.iter().map(|p| p.0 as usize + 1).max().unwrap_or(0);
    run(&pruned.query, Some(&pruned.origin), orig, db, budget, cfg, qplan, telem)
}

/// One unit of stratum work: a clause (optionally restricted to a row
/// range of its outer scan) whose derived rows merge into the clause
/// head's output relation.
struct Task<'p> {
    clause: &'p Clause,
    plan: &'p JoinPlan,
    range: Option<(usize, usize)>,
    /// Index into the stratum's output slots.
    slot: usize,
}

/// Evaluates one task into `buf`, then merges the buffer into the
/// task's output slot, charging newly inserted tuples. Returns the
/// number of fresh (previously unseen) rows this task contributed.
/// Generic over [`BudgetOps`] so the inline path (exclusive [`Budget`])
/// and the worker pool ([`WorkerBudget`]) run identical code.
#[allow(clippy::too_many_arguments)] // mirrors eval_clause_into
fn eval_task<B: BudgetOps>(
    query: &NdlQuery,
    db: &Database,
    idb: &[Relation],
    budget: &mut B,
    task: &Task<'_>,
    outs: &[Mutex<(Relation, usize)>],
    buf: &mut Vec<u32>,
    join: &mut JoinCounters,
) -> Result<usize, Halt> {
    crate::fault::inject(crate::fault::site::ENGINE_CLAUSE_TASK);
    // Derived rows are buffered flat (head-arity strided) so the hot
    // emit path is a memcpy, not a per-row heap allocation.
    let arity = task.clause.head_args.len();
    buf.clear();
    let mut rows = 0u64;
    eval_clause_into(
        &query.program,
        db,
        idb,
        budget,
        task.clause,
        task.plan,
        task.range,
        join,
        &mut |row, budget| {
            rows += 1;
            budget.check_tuple_headroom(rows)?;
            buf.extend_from_slice(row);
            Ok(())
        },
    )?;
    if rows == 0 {
        return Ok(0);
    }
    let mut guard = outs[task.slot].lock().unwrap_or_else(PoisonError::into_inner);
    let (rel, fresh) = &mut *guard;
    let mut new = 0usize;
    let mut merge = |rel: &mut Relation, row: &[u32]| -> Result<(), Halt> {
        if rel.insert_if_new(row) {
            *fresh += 1;
            new += 1;
            budget.charge_tuples(1)?;
        }
        Ok(())
    };
    if arity == 0 {
        // Boolean heads buffer no columns; every derived row is the
        // empty tuple, so a single merge settles all of them.
        merge(rel, &[])?;
    } else {
        for row in buf.chunks_exact(arity) {
            merge(rel, row)?;
        }
    }
    Ok(new)
}

/// Runs one task behind a panic-isolation boundary: an unwind out of the
/// join kernel — an injected fault or a genuine bug — is converted into a
/// typed [`Halt`] instead of tearing down `std::thread::scope` (which
/// would re-raise the panic at the join and take the process down with no
/// typed error). `AssertUnwindSafe` is sound here because a halted task's
/// partial state is discarded: the budget only ever undercounts, the
/// output relations are merged row-at-a-time behind their mutex (whose
/// poison every lock site clears), and the whole attempt is abandoned.
#[allow(clippy::too_many_arguments)] // mirrors eval_task
fn eval_task_isolated<B: BudgetOps>(
    query: &NdlQuery,
    db: &Database,
    idb: &[Relation],
    budget: &mut B,
    task: &Task<'_>,
    outs: &[Mutex<(Relation, usize)>],
    buf: &mut Vec<u32>,
    telem: &Telemetry<'_>,
) -> Result<(), Halt> {
    let span = telem.tracer.enabled().then(|| telem.span("clause_task"));
    let mut join = JoinCounters::default();
    let result = match catch_unwind(AssertUnwindSafe(|| {
        eval_task(query, db, idb, budget, task, outs, buf, &mut join)
    })) {
        Ok(result) => result,
        Err(payload) => Err(halt_from_panic("ndl::engine::clause_task", payload)),
    };
    if let Some(span) = &span {
        span.attr_str("head", &query.program.pred(task.clause.head).name);
        if let Some((lo, hi)) = task.range {
            span.attr("range_lo", lo as u64);
            span.attr("range_hi", hi as u64);
        }
        span.attr("rows_scanned", join.scanned);
        span.attr("index_hits", join.index_hits);
        span.attr("rows_emitted", join.emitted);
        if task.plan.costed {
            span.attr("est_rows", task.plan.est_out.round().max(0.0) as u64);
            span.attr("actual_rows", join.emitted);
        }
        match &result {
            Ok(new) => span.attr("tuples", *new as u64),
            Err(halt) => span.error(&format!("{halt:?}")),
        }
    }
    result.map(|_| ())
}

/// Scheduling observability: how many tasks actually ran and how many
/// clauses were skipped because a body relation was known empty.
#[derive(Default)]
struct SchedStats {
    executed: u64,
    skipped: u64,
}

#[allow(clippy::too_many_arguments)] // internal driver; bundling would just rename the args
fn run(
    query: &NdlQuery,
    origin: Option<&[PredId]>,
    orig_num_preds: usize,
    db: &Database,
    budget: &mut Budget,
    cfg: &EngineConfig,
    qplan: Option<&QueryPlan>,
    telem: Telemetry<'_>,
) -> Result<EvalResult, EvalError> {
    let span = telem.span("eval");
    span.attr_str("engine", "parallel");
    span.attr("threads", cfg.effective_threads() as u64);
    let ticks_before = budget.spent_steps();
    let mut sched = SchedStats::default();
    let result = run_inner(
        query,
        origin,
        orig_num_preds,
        db,
        budget,
        cfg,
        qplan,
        telem.under(&span),
        &mut sched,
    );
    let tuples = match &result {
        Ok(res) => res.stats.generated_tuples,
        Err(e) => error_stats(e).map_or(0, |s| s.generated_tuples),
    };
    match &result {
        Ok(res) => {
            span.attr("tuples", tuples as u64);
            span.attr("answers", res.stats.num_answers as u64);
        }
        Err(e) => span.error(&e.to_string()),
    }
    span.attr("tasks_executed", sched.executed);
    span.attr("clauses_skipped", sched.skipped);
    if let Some(metrics) = telem.metrics {
        metrics.counter("ndl_tuples_generated").add(tuples as u64);
        metrics.counter("ndl_budget_ticks").add(budget.spent_steps().saturating_sub(ticks_before));
        metrics.counter("engine_tasks_executed").add(sched.executed);
        metrics.counter("engine_clauses_skipped").add(sched.skipped);
    }
    result
}

#[allow(clippy::too_many_arguments)] // internal driver; bundling would just rename the args
fn run_inner(
    query: &NdlQuery,
    origin: Option<&[PredId]>,
    orig_num_preds: usize,
    db: &Database,
    budget: &mut Budget,
    cfg: &EngineConfig,
    qplan: Option<&QueryPlan>,
    telem: Telemetry<'_>,
    sched: &mut SchedStats,
) -> Result<EvalResult, EvalError> {
    let start = Instant::now();
    let program = &query.program;
    let num_preds = program.num_preds();
    let order = topological_order(program).ok_or(EvalError::Recursive)?;
    let reachable = reachable_from_goal(query);
    let threads = cfg.effective_threads().max(1);
    // Resolve the query plan: a caller-cached plan wins; otherwise plan
    // here (cost-based by default, syntactic when `cfg.plan` is off).
    let computed;
    let qplan = match qplan {
        Some(p) => p,
        None => {
            computed = if cfg.plan { plan_query(query, db) } else { syntactic_query_plan(query) };
            &computed
        }
    };

    // Longest-path layering: EDB relations sit at level 0, an IDB
    // predicate one level above its deepest body predicate. Predicates
    // in the same level never depend on one another, so a level is a
    // stratum the pool can evaluate concurrently.
    let sched_span = telem.span("stratum-schedule");
    let mut level = vec![0usize; num_preds];
    let mut num_levels = 1;
    for &p in &order {
        if !reachable[p.0 as usize] || !program.is_idb(p) {
            continue;
        }
        let mut lv = 1;
        for clause in program.clauses_for(p) {
            for atom in &clause.body {
                if let BodyAtom::Pred(q, _) = atom {
                    if program.is_idb(*q) {
                        lv = lv.max(level[q.0 as usize] + 1);
                    }
                }
            }
        }
        level[p.0 as usize] = lv;
        num_levels = num_levels.max(lv + 1);
    }
    let mut strata: Vec<Vec<PredId>> = vec![Vec::new(); num_levels];
    for &p in &order {
        if reachable[p.0 as usize] && program.is_idb(p) {
            strata[level[p.0 as usize]].push(p);
        }
    }
    sched_span.attr("strata", strata.iter().filter(|s| !s.is_empty()).count() as u64);
    sched_span.attr("preds", strata.iter().map(|s| s.len()).sum::<usize>() as u64);
    sched_span.end();

    let mut idb: Vec<Relation> = program
        .pred_ids()
        .map(|p| match program.pred(p).kind {
            PredKind::Idb => Relation::new(program.pred(p).arity),
            _ => Relation::new(0),
        })
        .collect();
    // Known-empty relations let whole clauses be skipped before their
    // joins run; IDB entries are updated as strata complete.
    let mut empty: Vec<bool> = program
        .pred_ids()
        .map(|p| match program.pred(p).kind {
            PredKind::Idb => true,
            kind => db.relation(kind).is_empty(),
        })
        .collect();

    let mut per_pred = vec![0usize; num_preds];
    let map_stats = |per_pred: &[usize], num_answers: usize| {
        let mut mapped = vec![0usize; orig_num_preds];
        for (i, &n) in per_pred.iter().enumerate() {
            let o = origin.map_or(i, |m| m[i].0 as usize);
            mapped[o] += n;
        }
        EvalStats {
            generated_tuples: per_pred.iter().sum(),
            num_answers,
            duration: start.elapsed(),
            per_predicate: mapped,
        }
    };

    for (lv, stratum) in strata.iter().enumerate().filter(|(_, s)| !s.is_empty()) {
        let stratum_span = telem.tracer.enabled().then(|| {
            let s = telem.span("stratum");
            s.attr("level", lv as u64);
            s.attr("preds", stratum.len() as u64);
            s
        });
        let stratum_telem = match &stratum_span {
            Some(s) => telem.under(s),
            None => telem,
        };
        let outs: Vec<Mutex<(Relation, usize)>> = stratum
            .iter()
            .map(|&p| Mutex::new((Relation::new(program.pred(p).arity), 0)))
            .collect();
        let mut tasks: Vec<Task<'_>> = Vec::new();
        for (slot, &p) in stratum.iter().enumerate() {
            for (ci, clause) in program.clauses().iter().enumerate() {
                if clause.head != p {
                    continue;
                }
                if clause
                    .body
                    .iter()
                    .any(|a| matches!(a, BodyAtom::Pred(q, _) if empty[q.0 as usize]))
                {
                    sched.skipped += 1;
                    continue;
                }
                let plan = qplan.clauses[ci].as_ref().map_err(|e| EvalError::Unsafe(e.clone()))?;
                // Split a large outer scan into per-worker row ranges —
                // only when the plan opens with a full scan (a probe or
                // merge first step seeds from the single empty binding).
                let outer_rows = match (plan.order.first(), plan.access.first()) {
                    (Some(&i), Some(PlannedAccess::Scan)) => match &clause.body[i] {
                        BodyAtom::Pred(q, _) => Some(relation(program, db, &idb, *q).len()),
                        _ => None,
                    },
                    _ => None,
                };
                match outer_rows {
                    Some(n) if threads > 1 && n >= cfg.chunk_min_rows.max(1) => {
                        let chunk = n.div_ceil(threads * 2).max(1);
                        let mut lo = 0;
                        while lo < n {
                            let hi = (lo + chunk).min(n);
                            tasks.push(Task { clause, plan, range: Some((lo, hi)), slot });
                            lo = hi;
                        }
                    }
                    _ => tasks.push(Task { clause, plan, range: None, slot }),
                }
            }
        }

        let halt = if threads <= 1 || tasks.len() <= 1 {
            let mut buf = Vec::new();
            let mut halt = None;
            for t in &tasks {
                sched.executed += 1;
                if let Err(h) =
                    eval_task_isolated(query, db, &idb, budget, t, &outs, &mut buf, &stratum_telem)
                {
                    halt = Some(h);
                    break;
                }
            }
            halt
        } else {
            let shared: SharedBudget = budget.share();
            let next = AtomicUsize::new(0);
            let abort = AtomicBool::new(false);
            let first_halt: Mutex<Option<Halt>> = Mutex::new(None);
            std::thread::scope(|scope| {
                for _ in 0..threads.min(tasks.len()) {
                    scope.spawn(|| {
                        let mut wb = WorkerBudget::new(&shared);
                        let mut buf = Vec::new();
                        while !abort.load(Ordering::Relaxed) {
                            let t = next.fetch_add(1, Ordering::Relaxed);
                            let Some(task) = tasks.get(t) else { break };
                            if let Err(h) = eval_task_isolated(
                                query,
                                db,
                                &idb,
                                &mut wb,
                                task,
                                &outs,
                                &mut buf,
                                &stratum_telem,
                            ) {
                                // Budget halts already poisoned the shared
                                // budget; a caught panic has not, so cancel
                                // the pool explicitly — siblings deep in a
                                // join observe it at their next budget
                                // check. Record the halt *first* so the
                                // Cancelled trips it provokes can never be
                                // reported as the cause.
                                let cancel = matches!(h, Halt::Fault(_) | Halt::Panic { .. });
                                let mut slot =
                                    first_halt.lock().unwrap_or_else(PoisonError::into_inner);
                                slot.get_or_insert(h);
                                drop(slot);
                                if cancel {
                                    shared.cancel();
                                }
                                abort.store(true, Ordering::Relaxed);
                                break;
                            }
                        }
                    });
                }
            });
            budget.absorb(&shared);
            sched.executed += next.load(Ordering::Relaxed).min(tasks.len()) as u64;
            first_halt.into_inner().unwrap_or_else(PoisonError::into_inner)
        };
        // Ticks amortise their cap and clock checks, so a small stratum
        // can finish without any worker consulting them; re-check both
        // on the exclusive budget at the stratum barrier.
        let halt = halt
            .or_else(|| budget.tick().and_then(|()| budget.check_time()).err().map(Halt::Budget));

        // Merge completed (possibly partial, on halt) stratum output.
        for (slot, &p) in stratum.iter().enumerate() {
            let (rel, fresh) =
                outs[slot].lock().map(|mut g| std::mem::take(&mut *g)).unwrap_or_default();
            per_pred[p.0 as usize] += fresh;
            empty[p.0 as usize] = rel.is_empty();
            idb[p.0 as usize] = rel;
        }
        if let Some(span) = &stratum_span {
            if let Some(halt) = &halt {
                span.error(&format!("{halt:?}"));
            }
        }
        if let Some(halt) = halt {
            let goal_answers = per_pred[query.goal.0 as usize];
            return Err(halt_to_error(halt, map_stats(&per_pred, goal_answers)));
        }
    }

    let goal_rel = std::mem::replace(&mut idb[query.goal.0 as usize], Relation::new(0));
    let mut answers: Vec<Vec<ConstId>> =
        goal_rel.rows().map(|row| row.iter().copied().map(ConstId).collect()).collect();
    answers.sort();
    let stats = map_stats(&per_pred, answers.len());
    Ok(EvalResult { answers, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_on;
    use crate::program::{CVar, Program};
    use obda_budget::Resource;
    use obda_owlql::parser::{parse_data, parse_ontology};
    use std::time::Duration;

    fn chain_query() -> (NdlQuery, obda_owlql::abox::DataInstance) {
        let o = parse_ontology("Class A\nProperty R\nProperty S\n").unwrap();
        let mut text = String::new();
        for i in 0..200 {
            text.push_str(&format!("R(a{}, a{})\n", i, i + 1));
            text.push_str(&format!("S(a{}, b{})\n", i, i % 7));
        }
        text.push_str("A(a0)\nA(a5)\nA(a50)\n");
        let d = parse_data(&text, &o).unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let s = p.edb_prop(v.get_prop("S").unwrap(), v);
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let t1 = p.add_pred("T1", 2, PredKind::Idb);
        let t2 = p.add_pred("T2", 2, PredKind::Idb);
        let g = p.add_pred("G", 2, PredKind::Idb);
        // Two independent level-1 predicates joined at the goal.
        p.add_clause(Clause {
            head: t1,
            head_args: vec![CVar(0), CVar(2)],
            body: vec![
                BodyAtom::Pred(r, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(r, vec![CVar(1), CVar(2)]),
            ],
            num_vars: 3,
        });
        p.add_clause(Clause {
            head: t2,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(s, vec![CVar(0), CVar(1)]), BodyAtom::Pred(a, vec![CVar(0)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(2)],
            body: vec![
                BodyAtom::Pred(t1, vec![CVar(0), CVar(1)]),
                BodyAtom::Pred(t2, vec![CVar(1), CVar(2)]),
            ],
            num_vars: 3,
        });
        (NdlQuery::new(p, g), d)
    }

    #[test]
    fn engine_matches_sequential_at_every_thread_count() {
        let (q, d) = chain_query();
        let db = Database::new(&d);
        let base = evaluate_on(&q, &db, &EvalOptions::default()).unwrap();
        for threads in [1, 2, 4, 8] {
            for prune in [false, true] {
                for plan in [false, true] {
                    let cfg = EngineConfig { threads, prune, chunk_min_rows: 16, plan };
                    let res = evaluate_engine_on(&q, &db, &EvalOptions::default(), &cfg).unwrap();
                    assert_eq!(
                        res.answers, base.answers,
                        "threads={threads} prune={prune} plan={plan}"
                    );
                    assert!(res.stats.generated_tuples <= base.stats.generated_tuples);
                    if !prune {
                        assert_eq!(res.stats.generated_tuples, base.stats.generated_tuples);
                        assert_eq!(res.stats.per_predicate, base.stats.per_predicate);
                    }
                }
            }
        }
    }

    #[test]
    fn stats_are_deterministic_across_thread_counts() {
        let (q, d) = chain_query();
        let db = Database::new(&d);
        let reference = evaluate_engine_on(
            &q,
            &db,
            &EvalOptions::default(),
            &EngineConfig { threads: 1, prune: true, chunk_min_rows: 8, plan: true },
        )
        .unwrap();
        for threads in [2, 3, 4, 7] {
            let res = evaluate_engine_on(
                &q,
                &db,
                &EvalOptions::default(),
                &EngineConfig { threads, prune: true, chunk_min_rows: 8, plan: true },
            )
            .unwrap();
            assert_eq!(res.answers, reference.answers);
            assert_eq!(res.stats.generated_tuples, reference.stats.generated_tuples);
            assert_eq!(res.stats.per_predicate, reference.stats.per_predicate);
        }
    }

    #[test]
    fn shared_deadline_stops_all_workers_with_typed_error() {
        let (q, d) = chain_query();
        let db = Database::new(&d);
        let opts = EvalOptions { timeout: Some(Duration::ZERO), ..Default::default() };
        let err = evaluate_engine_on(
            &q,
            &db,
            &opts,
            &EngineConfig { threads: 4, prune: false, chunk_min_rows: 8, plan: true },
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::Timeout(_)), "got {err:?}");
    }

    #[test]
    fn shared_tuple_cap_trips_the_pool() {
        let (q, d) = chain_query();
        let db = Database::new(&d);
        let opts = EvalOptions { max_tuples: Some(5), ..Default::default() };
        let err = evaluate_engine_on(
            &q,
            &db,
            &opts,
            &EngineConfig { threads: 4, prune: false, chunk_min_rows: 8, plan: true },
        )
        .unwrap_err();
        match err {
            EvalError::TupleLimit(stats) => {
                // Concurrent charges can each overshoot by the row they
                // were inserting when the pool tripped: cap + 1 per worker.
                assert!(stats.generated_tuples <= 5 + 4, "cap honoured: {stats:?}")
            }
            other => panic!("expected TupleLimit, got {other:?}"),
        }
    }

    #[test]
    fn pruned_stats_map_back_to_original_predicates() {
        let o = parse_ontology("Property R\n").unwrap();
        let d = parse_data("R(a, b)\nR(b, c)\n", &o).unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let alias = p.add_pred("ALIAS", 2, PredKind::Idb);
        let g = p.add_pred("G", 2, PredKind::Idb);
        p.add_clause(Clause {
            head: alias,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0), CVar(1)],
            body: vec![BodyAtom::Pred(alias, vec![CVar(1), CVar(0)])],
            num_vars: 2,
        });
        let q = NdlQuery::new(p, g);
        let db = Database::new(&d);
        let base = evaluate_on(&q, &db, &EvalOptions::default()).unwrap();
        assert_eq!(base.stats.generated_tuples, 4, "alias doubles the work");
        let res =
            evaluate_engine_on(&q, &db, &EvalOptions::default(), &EngineConfig::default()).unwrap();
        assert_eq!(res.answers, base.answers);
        assert_eq!(res.stats.generated_tuples, 2, "alias is pruned away");
        assert_eq!(res.stats.per_predicate.len(), q.program.num_preds());
        assert_eq!(res.stats.per_predicate[g.0 as usize], 2);
        assert_eq!(res.stats.per_predicate[alias.0 as usize], 0);
    }

    #[test]
    fn empty_relation_skips_clause_bodies() {
        let o = parse_ontology("Class A\nProperty R\nProperty S\n").unwrap();
        let d = parse_data("R(a, b)\n", &o).unwrap(); // S is empty
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let s = p.edb_prop(v.get_prop("S").unwrap(), v);
        let g = p.add_pred("G", 2, PredKind::Idb);
        for e in [r, s] {
            p.add_clause(Clause {
                head: g,
                head_args: vec![CVar(0), CVar(1)],
                body: vec![BodyAtom::Pred(e, vec![CVar(0), CVar(1)])],
                num_vars: 2,
            });
        }
        let q = NdlQuery::new(p, g);
        let db = Database::new(&d);
        let res =
            evaluate_engine_on(&q, &db, &EvalOptions::default(), &EngineConfig::default()).unwrap();
        assert_eq!(res.answers.len(), 1);
    }

    #[test]
    fn recursive_program_is_rejected() {
        let mut p = Program::new();
        let g = p.add_pred("G", 1, PredKind::Idb);
        let h = p.add_pred("H", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(h, vec![CVar(0)])],
            num_vars: 1,
        });
        p.add_clause(Clause {
            head: h,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(g, vec![CVar(0)])],
            num_vars: 1,
        });
        let o = parse_ontology("Class A\n").unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let db = Database::new(&d);
        // Pruning must not mask recursion detection.
        let err = evaluate_engine_on(
            &NdlQuery::new(p, g),
            &db,
            &EvalOptions::default(),
            &EngineConfig::default(),
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::Recursive));
    }

    #[test]
    fn step_cap_maps_to_timeout_error() {
        let (q, d) = chain_query();
        let db = Database::new(&d);
        let mut budget = Budget::unlimited().max_steps(10);
        let err = evaluate_engine_on_budgeted(
            &q,
            &db,
            &mut budget,
            &EngineConfig { threads: 4, prune: false, chunk_min_rows: 8, plan: true },
        )
        .unwrap_err();
        assert!(matches!(err, EvalError::Timeout(_)));
        let _ = Resource::Steps; // taxonomy documented in eval::budget_error
    }
}
