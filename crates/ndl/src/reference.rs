//! The original per-call hash-set evaluator, kept as a reference.
//!
//! This is the engine the shared-storage evaluator ([`crate::eval`])
//! replaced: relations are `FxHashSet<Vec<u32>>`, every `evaluate_reference`
//! call re-scans the [`DataInstance`] to materialise EDB relations, and
//! every predicate atom builds a fresh join index. It is retained for
//! differential testing (the property tests check the two engines agree)
//! and as the baseline of the `substrates` benchmark comparing the indexed
//! join path against the seed hash-set path.

use crate::analysis::topological_order;
use crate::eval::{
    reachable_from_goal, EvalError, EvalOptions, EvalResult, EvalStats, Row, UNBOUND,
};
use crate::program::{BodyAtom, CVar, Clause, NdlQuery, PredId, PredKind, Program};
use obda_owlql::abox::{ConstId, DataInstance};
use obda_owlql::util::{FxHashMap, FxHashSet};
use std::time::Instant;

type Relation = FxHashSet<Row>;

/// Materialises the EDB relation of a predicate from the data instance.
fn edb_relation(kind: PredKind, data: &DataInstance) -> Relation {
    let mut rel = Relation::default();
    match kind {
        PredKind::EdbClass(c) => {
            for (class, a) in data.class_atoms() {
                if class == c {
                    rel.insert(vec![a.0]);
                }
            }
        }
        PredKind::EdbProp(p) => {
            for (prop, a, b) in data.prop_atoms() {
                if prop == p {
                    rel.insert(vec![a.0, b.0]);
                }
            }
        }
        PredKind::Top => {
            for a in data.individuals() {
                rel.insert(vec![a.0]);
            }
        }
        PredKind::Idb => unreachable!("IDB relations are computed, not loaded"),
    }
    rel
}

struct Engine<'a> {
    program: &'a Program,
    data: &'a DataInstance,
    relations: Vec<Option<Relation>>,
    deadline: Option<Instant>,
    max_tuples: Option<usize>,
    generated: usize,
    per_pred: Vec<usize>,
    ticks: u32,
}

/// Interruption reason; stats are attached at the boundary.
enum Halt {
    Timeout,
    TupleLimit,
    Unsafe(String),
}

impl<'a> Engine<'a> {
    fn check_budget(&mut self) -> Result<(), Halt> {
        self.ticks = self.ticks.wrapping_add(1);
        if self.ticks.is_multiple_of(4096) {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    return Err(Halt::Timeout);
                }
            }
        }
        if let Some(cap) = self.max_tuples {
            if self.generated > cap {
                return Err(Halt::TupleLimit);
            }
        }
        Ok(())
    }

    /// Takes the relation of `p` out of the engine (materialising an EDB
    /// relation on first use); the caller must put it back with
    /// [`Engine::restore`].
    fn take_relation(&mut self, p: PredId) -> Relation {
        let idx = p.0 as usize;
        match self.relations[idx].take() {
            Some(rel) => rel,
            // IDB predicates are evaluated in dependency order, so an
            // untouched slot can only mean "no clauses" (empty relation).
            None => match self.program.pred(p).kind {
                PredKind::Idb => Relation::default(),
                kind => edb_relation(kind, self.data),
            },
        }
    }

    fn restore(&mut self, p: PredId, rel: Relation) {
        self.relations[p.0 as usize] = Some(rel);
    }

    /// Evaluates one clause, inserting derived head rows into `out`.
    fn eval_clause(&mut self, clause: &Clause, out: &mut Relation) -> Result<(), Halt> {
        let order = crate::eval::join_order(clause).map_err(Halt::Unsafe)?;
        let mut bindings: Vec<Row> = vec![vec![UNBOUND; clause.num_vars as usize]];
        let mut bound: FxHashSet<CVar> = FxHashSet::default();
        for &i in &order {
            if bindings.is_empty() {
                break;
            }
            match &clause.body[i] {
                BodyAtom::Eq(a, b) => {
                    let (a, b) = (*a, *b);
                    let mut next = Vec::with_capacity(bindings.len());
                    for mut binding in bindings {
                        self.check_budget()?;
                        let va = binding[a.0 as usize];
                        let vb = binding[b.0 as usize];
                        match (va == UNBOUND, vb == UNBOUND) {
                            (false, false) => {
                                if va == vb {
                                    next.push(binding);
                                }
                            }
                            (false, true) => {
                                binding[b.0 as usize] = va;
                                next.push(binding);
                            }
                            (true, false) => {
                                binding[a.0 as usize] = vb;
                                next.push(binding);
                            }
                            (true, true) => unreachable!("join order binds one side first"),
                        }
                    }
                    bindings = next;
                    bound.insert(a);
                    bound.insert(b);
                }
                BodyAtom::EqConst(a, c) => {
                    let (a, c) = (*a, c.0);
                    let mut next = Vec::with_capacity(bindings.len());
                    for mut binding in bindings {
                        self.check_budget()?;
                        let va = binding[a.0 as usize];
                        if va == UNBOUND {
                            binding[a.0 as usize] = c;
                            next.push(binding);
                        } else if va == c {
                            next.push(binding);
                        }
                    }
                    bindings = next;
                    bound.insert(a);
                }
                BodyAtom::Pred(p, args) => {
                    let p = *p;
                    let args = args.clone();
                    let bound_positions: Vec<usize> =
                        (0..args.len()).filter(|&k| bound.contains(&args[k])).collect();
                    // Index the relation on the bound positions.
                    let rel = self.take_relation(p);
                    let mut index: FxHashMap<Vec<u32>, Vec<&Row>> = FxHashMap::default();
                    for row in rel.iter() {
                        let key: Vec<u32> = bound_positions.iter().map(|&k| row[k]).collect();
                        index.entry(key).or_default().push(row);
                    }
                    let mut next = Vec::new();
                    let mut failure = None;
                    for binding in &bindings {
                        if let Err(e) = self.check_budget() {
                            failure = Some(e);
                            break;
                        }
                        // Intermediate join results count against the tuple
                        // budget too — a join can explode without ever
                        // reaching the head.
                        if let Some(cap) = self.max_tuples {
                            if next.len() > cap {
                                failure = Some(Halt::TupleLimit);
                                break;
                            }
                        }
                        let key: Vec<u32> =
                            bound_positions.iter().map(|&k| binding[args[k].0 as usize]).collect();
                        let Some(rows) = index.get(&key) else { continue };
                        'rows: for row in rows {
                            let mut extended = binding.clone();
                            for (k, &var) in args.iter().enumerate() {
                                let slot = &mut extended[var.0 as usize];
                                if *slot == UNBOUND {
                                    *slot = row[k];
                                } else if *slot != row[k] {
                                    continue 'rows;
                                }
                            }
                            next.push(extended);
                        }
                    }
                    drop(index);
                    self.restore(p, rel);
                    if let Some(e) = failure {
                        return Err(e);
                    }
                    bindings = next;
                    for &v in &args {
                        bound.insert(v);
                    }
                }
            }
        }
        for binding in bindings {
            let row: Row = clause
                .head_args
                .iter()
                .map(|&v| {
                    let val = binding[v.0 as usize];
                    debug_assert_ne!(val, UNBOUND, "head variable left unbound");
                    val
                })
                .collect();
            if out.insert(row) {
                self.generated += 1;
                self.per_pred[clause.head.0 as usize] += 1;
            }
            self.check_budget()?;
        }
        Ok(())
    }
}

/// Evaluates `(Π, G)` over `data` with the seed hash-set engine: EDB
/// relations are re-materialised from the data instance on every call and
/// every predicate atom builds a fresh join index.
pub fn evaluate_reference(
    query: &NdlQuery,
    data: &DataInstance,
    opts: &EvalOptions,
) -> Result<EvalResult, EvalError> {
    let start = Instant::now();
    let order = topological_order(&query.program).ok_or(EvalError::Recursive)?;
    let reachable = reachable_from_goal(query);
    let mut engine = Engine {
        program: &query.program,
        data,
        relations: vec![None; query.program.num_preds()],
        deadline: opts.timeout.map(|t| Instant::now() + t),
        max_tuples: opts.max_tuples,
        generated: 0,
        per_pred: vec![0; query.program.num_preds()],
        ticks: 0,
    };
    let stats_at = |engine: &Engine, num_answers: usize| EvalStats {
        generated_tuples: engine.generated,
        num_answers,
        duration: start.elapsed(),
        per_predicate: engine.per_pred.clone(),
    };
    for p in order {
        if !reachable[p.0 as usize] {
            continue;
        }
        let mut rel = Relation::default();
        for clause in query.program.clauses() {
            if clause.head == p {
                if let Err(halt) = engine.eval_clause(clause, &mut rel) {
                    let goal_answers = engine.per_pred[query.goal.0 as usize];
                    return Err(match halt {
                        Halt::Timeout => EvalError::Timeout(stats_at(&engine, goal_answers)),
                        Halt::TupleLimit => EvalError::TupleLimit(stats_at(&engine, goal_answers)),
                        Halt::Unsafe(msg) => EvalError::Unsafe(msg),
                    });
                }
            }
        }
        engine.relations[p.0 as usize] = Some(rel);
    }
    let goal_rel = engine.relations[query.goal.0 as usize].take().unwrap_or_default();
    let mut answers: Vec<Vec<ConstId>> =
        goal_rel.into_iter().map(|row| row.into_iter().map(ConstId).collect()).collect();
    answers.sort();
    let stats = stats_at(&engine, answers.len());
    Ok(EvalResult { answers, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::program::Clause;
    use obda_owlql::parser::{parse_data, parse_ontology};

    #[test]
    fn agrees_with_indexed_engine() {
        let o = parse_ontology("Class A\nProperty R\n").unwrap();
        let d = parse_data("R(a, b)\nR(b, c)\nR(c, a)\nA(b)\nA(c)\n", &o).unwrap();
        let v = o.vocab();
        let mut p = Program::new();
        let r = p.edb_prop(v.get_prop("R").unwrap(), v);
        let a = p.edb_class(v.get_class("A").unwrap(), v);
        let q = p.add_pred("Q", 1, PredKind::Idb);
        let g = p.add_pred("G", 1, PredKind::Idb);
        p.add_clause(Clause {
            head: q,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)]), BodyAtom::Pred(a, vec![CVar(1)])],
            num_vars: 2,
        });
        p.add_clause(Clause {
            head: g,
            head_args: vec![CVar(0)],
            body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1)]), BodyAtom::Pred(q, vec![CVar(1)])],
            num_vars: 2,
        });
        let query = NdlQuery::new(p, g);
        let opts = EvalOptions::default();
        let reference = evaluate_reference(&query, &d, &opts).unwrap();
        let indexed = evaluate(&query, &d, &opts).unwrap();
        assert_eq!(reference.answers, indexed.answers);
        assert_eq!(reference.stats.per_predicate, indexed.stats.per_predicate);
        assert_eq!(reference.stats.generated_tuples, indexed.stats.generated_tuples);
    }
}
