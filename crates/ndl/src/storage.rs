//! Shared indexed relation storage for the evaluators.
//!
//! The seed engine re-scanned the whole [`DataInstance`] to rebuild every
//! EDB relation on every `evaluate` call and stored relations as
//! `FxHashSet<Vec<u32>>` — one heap allocation per row and a fresh join
//! index per clause atom. This module replaces that substrate:
//!
//! * [`Relation`] — a columnar relation: one flat row-major `Vec<u32>`
//!   arena plus an arity, no per-row allocation, with exact hash-based
//!   deduplication and *lazy* per-column hash indexes (built at most once,
//!   cached inside the relation, shared by every clause and every
//!   evaluation that probes the same column);
//! * [`Database`] — every EDB relation of a data instance, built **once**
//!   via the grouped-access APIs of `obda_owlql::abox` and then shared by
//!   all evaluations (`evaluate_on`, `evaluate_linear_on`) and all
//!   rewriting strategies of the experiment harness.
//!
//! ## Immutability contract and thread safety
//!
//! Mutation ([`Relation::push`], [`Relation::insert_if_new`]) requires
//! `&mut Relation` and eagerly drops every cached [`ColumnIndex`], so a
//! stale index can never be observed through a shared reference: creating
//! one requires exclusive access, which ends all outstanding borrows of the
//! old index first. Conversely, while any `&Relation` is live the relation
//! is frozen — rows, the dedup table, and indexes cannot change.
//!
//! That aliasing guarantee is what makes the parallel engine in
//! [`crate::engine`] sound. During a stratum, worker threads hold only
//! shared references to the [`Database`] and to the relations of earlier
//! strata; the lazy index cache is a `OnceLock` per column, so concurrent
//! first probes of the same column race only inside `get_or_init`, which
//! serialises initialisation and hands every thread the same index.
//! Relations being *built* in the current stratum are each behind a
//! `Mutex` and are only promoted to the shared, read-only set at the
//! stratum barrier — i.e. `Relation` is `Sync` for readers and requires
//! external exclusion for writers, exactly matching `&`/`&mut` semantics.
//!
//! ## Shared arenas and lazy hydration
//!
//! A relation's row arena is either *owned* (a plain `Vec<u32>`: the
//! parse path and every mutable relation) or *shared* (a read-only
//! [`ArenaWords`] view, e.g. a memory-mapped snapshot column — see
//! [`Relation::from_shared`]). The immutability contract above extends
//! unchanged: mutating a shared-arena relation first copies the words
//! into an owned arena under `&mut` (copy-on-write), so shared words
//! are never written through.
//!
//! [`Database`] slots are [`LazyRelation`]s: the parse path fills them
//! eagerly, while the snapshot store installs *hydrators* that decode a
//! relation on first touch. Hydration runs inside a `OnceLock`
//! initialiser through `&Database`, sound for the same reason lazy
//! column indexes are — every reader serialises on the slot and
//! observes the one hydrated relation, and mutation would require the
//! `&mut` access that cannot coexist with readers. [`Database::prefetch`]
//! hydrates a predicate set up front (the relevance pruner's relevant
//! set), so a pruned query faults in only the columns it joins.

use crate::program::PredKind;
use crate::stats::RelStats;
use obda_owlql::abox::DataInstance;
use obda_owlql::util::{FxHashMap, FxHasher};
use obda_owlql::vocab::{ClassId, PropId};
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

fn hash_row(row: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    for &v in row {
        h.write_u32(v);
    }
    h.finish()
}

/// Read-only word storage that can back a [`Relation`]'s row arena
/// without being copied into it — the seam the snapshot store threads
/// its memory-mapped columns through. Implementations must return the
/// same immutable slice for the lifetime of the value.
pub trait ArenaWords: Send + Sync {
    /// The row-major words (`num_rows × arity` values).
    fn words(&self) -> &[u32];
}

impl ArenaWords for Vec<u32> {
    fn words(&self) -> &[u32] {
        self
    }
}

/// A relation's row arena: owned words, or a shared read-only view.
enum Arena {
    Owned(Vec<u32>),
    Shared(Arc<dyn ArenaWords>),
}

impl Arena {
    #[inline]
    fn as_slice(&self) -> &[u32] {
        match self {
            Arena::Owned(v) => v,
            Arena::Shared(s) => s.words(),
        }
    }

    /// The owned words, copying a shared arena first (copy-on-write;
    /// requires `&mut`, so no shared view of the old words survives).
    fn to_mut(&mut self) -> &mut Vec<u32> {
        if let Arena::Shared(s) = self {
            *self = Arena::Owned(s.words().to_vec());
        }
        match self {
            Arena::Owned(v) => v,
            Arena::Shared(_) => unreachable!("converted to Owned above"),
        }
    }
}

impl Default for Arena {
    fn default() -> Self {
        Arena::Owned(Vec::new())
    }
}

impl std::fmt::Debug for Arena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Arena::Owned(v) => write!(f, "Owned({} words)", v.len()),
            Arena::Shared(s) => write!(f, "Shared({} words)", s.words().len()),
        }
    }
}

/// An index over one column of a [`Relation`]: value → row numbers.
///
/// Two representations behind one probe API: the lazily built hash map,
/// and a CSR (compressed-sparse-rows) form decoded from a snapshot's
/// persisted index section — sorted distinct keys, a prefix-offset
/// array, and one flat row-id arena, probed by binary search.
#[derive(Debug, Clone)]
pub struct ColumnIndex {
    repr: IndexRepr,
}

#[derive(Debug, Clone)]
enum IndexRepr {
    Hash(FxHashMap<u32, Vec<u32>>),
    Csr {
        /// Distinct column values, strictly ascending.
        keys: Vec<u32>,
        /// `keys.len() + 1` prefix offsets into `rows`.
        starts: Vec<u32>,
        /// Row numbers grouped by key.
        rows: Vec<u32>,
    },
}

impl Default for ColumnIndex {
    fn default() -> Self {
        ColumnIndex { repr: IndexRepr::Hash(FxHashMap::default()) }
    }
}

impl ColumnIndex {
    /// Builds a CSR index from decoded arrays, validating the
    /// representation invariants: strictly ascending keys and exactly
    /// `keys.len() + 1` monotone offsets running from `0` to
    /// `rows.len()`. Returns `None` on any violation — a forged or
    /// stale persisted index must not be installed (the lazy hash
    /// build wins instead).
    pub fn from_csr(keys: Vec<u32>, starts: Vec<u32>, rows: Vec<u32>) -> Option<Self> {
        if starts.len() != keys.len() + 1
            || !keys.windows(2).all(|w| w[0] < w[1])
            || starts.first() != Some(&0)
            || starts.windows(2).any(|w| w[0] > w[1])
            || *starts.last()? as usize != rows.len()
        {
            return None;
        }
        Some(ColumnIndex { repr: IndexRepr::Csr { keys, starts, rows } })
    }

    /// The rows whose indexed column equals `key`.
    pub fn probe(&self, key: u32) -> &[u32] {
        match &self.repr {
            IndexRepr::Hash(map) => map.get(&key).map(Vec::as_slice).unwrap_or(&[]),
            IndexRepr::Csr { keys, starts, rows } => match keys.binary_search(&key) {
                Ok(i) => &rows[starts[i] as usize..starts[i + 1] as usize],
                Err(_) => &[],
            },
        }
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        match &self.repr {
            IndexRepr::Hash(map) => map.len(),
            IndexRepr::Csr { keys, .. } => keys.len(),
        }
    }

    /// Total row references across all keys.
    fn total_rows(&self) -> usize {
        match &self.repr {
            IndexRepr::Hash(map) => map.values().map(Vec::len).sum(),
            IndexRepr::Csr { rows, .. } => rows.len(),
        }
    }

    /// The largest row number referenced, if any.
    fn max_row(&self) -> Option<u32> {
        match &self.repr {
            IndexRepr::Hash(map) => map.values().flatten().copied().max(),
            IndexRepr::Csr { rows, .. } => rows.iter().copied().max(),
        }
    }
}

/// A columnar relation: `num_rows` rows of `arity` values in one flat
/// row-major arena.
#[derive(Debug, Default)]
pub struct Relation {
    arity: usize,
    num_rows: usize,
    data: Arena,
    /// Exact dedup: row hash → candidate row numbers. Built lazily by the
    /// first [`Relation::insert_if_new`]; plain [`Relation::push`] loading
    /// of already-distinct rows never pays for it.
    dedup: Option<FxHashMap<u64, Vec<u32>>>,
    /// Lazily built per-column indexes, invalidated on mutation.
    indexes: Vec<OnceLock<ColumnIndex>>,
    /// Lazily computed cardinality statistics, invalidated on mutation.
    /// The snapshot store presets this slot from the persisted stats
    /// section so reopening never re-scans the columns.
    stats: OnceLock<RelStats>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            num_rows: 0,
            data: Arena::Owned(Vec::new()),
            dedup: None,
            indexes: (0..arity).map(|_| OnceLock::new()).collect(),
            stats: OnceLock::new(),
        }
    }

    /// An empty relation with room for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        let mut r = Relation::new(arity);
        r.data.to_mut().reserve(rows * arity);
        r
    }

    /// A relation borrowing its row-major arena from shared read-only
    /// storage (the snapshot store's zero-copy hydration path: the words
    /// stay in the memory-mapped file, never copied into the heap).
    /// Indexes and stats are lazy exactly as for an owned relation;
    /// mutation copies the words out first (copy-on-write).
    ///
    /// # Panics
    /// Panics if `arena.words().len() != arity * num_rows` — the caller
    /// must have validated the segment's declared geometry already.
    pub fn from_shared(arity: usize, num_rows: usize, arena: Arc<dyn ArenaWords>) -> Self {
        assert_eq!(
            arena.words().len(),
            arity * num_rows,
            "shared arena has {} words, expected {arity}×{num_rows}",
            arena.words().len()
        );
        Relation {
            arity,
            num_rows,
            data: Arena::Shared(arena),
            dedup: None,
            indexes: (0..arity).map(|_| OnceLock::new()).collect(),
            stats: OnceLock::new(),
        }
    }

    /// Whether the row arena is a shared view rather than owned words.
    pub fn is_shared(&self) -> bool {
        matches!(self.data, Arena::Shared(_))
    }

    /// Builds a relation from decomposed columns of already-distinct rows
    /// (the snapshot store's bulk-load path: one contiguous copy per
    /// column, no per-row hashing or dedup, and the per-column hash
    /// indexes stay lazy behind the usual `OnceLock`s).
    ///
    /// Column `c` supplies the `c`-th value of every row, so all columns
    /// must have equal length; rows are interleaved back into the
    /// row-major arena.
    ///
    /// # Panics
    /// Panics if the columns have unequal lengths.
    pub fn from_sorted_columns(arity: usize, columns: &[Vec<u32>]) -> Self {
        assert_eq!(columns.len(), arity, "expected {arity} columns, got {}", columns.len());
        let rows = columns.first().map_or(0, Vec::len);
        for (c, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), rows, "column {c} has {} rows, expected {rows}", col.len());
        }
        let mut r = Relation::with_capacity(arity, rows);
        let data = r.data.to_mut();
        if let [a, b] = columns {
            // Binary fast path: a bounds-check-free zip interleave (the
            // bulk of a snapshot's rows are property pairs).
            data.extend(a.iter().zip(b).flat_map(|(&x, &y)| [x, y]));
        } else if arity == 1 {
            // Unary fast path: the column *is* the arena.
            data.extend_from_slice(&columns[0]);
        } else {
            for i in 0..rows {
                for col in columns {
                    data.push(col[i]);
                }
            }
        }
        r.num_rows = rows;
        r
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.num_rows
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data.as_slice()[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over the rows.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        // `chunks_exact(0)` panics, so arity-0 relations (Boolean goals)
        // yield `num_rows` empty rows explicitly.
        let arity = self.arity;
        let data = self.data.as_slice();
        (0..self.num_rows).map(move |i| &data[i * arity..i * arity + arity])
    }

    /// Appends a row without checking for duplicates (bulk loading of rows
    /// known to be distinct, e.g. from a set-backed [`DataInstance`]).
    pub fn push(&mut self, row: &[u32]) {
        debug_assert_eq!(row.len(), self.arity);
        self.invalidate_indexes();
        if let Some(dedup) = &mut self.dedup {
            dedup.entry(hash_row(row)).or_default().push(self.num_rows as u32);
        }
        self.data.to_mut().extend_from_slice(row);
        self.num_rows += 1;
    }

    /// Inserts a row unless an equal row is already present; returns
    /// whether the row is new. Exact: hash collisions are resolved by
    /// comparing the stored rows.
    pub fn insert_if_new(&mut self, row: &[u32]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        // Injection site sits before any mutation: an unwind here leaves
        // the arena, dedup table and indexes exactly as they were.
        crate::fault::inject(crate::fault::site::STORAGE_INSERT);
        let h = hash_row(row);
        // Split borrows: the dedup table is (re)built from the row arena,
        // then held mutably while the arena is only read. `to_mut` first:
        // a shared arena is copied out before any mutation is attempted.
        let (arity, data) = (self.arity, self.data.to_mut());
        let dedup = self.dedup.get_or_insert_with(|| {
            let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            for i in 0..self.num_rows {
                map.entry(hash_row(&data[i * arity..(i + 1) * arity])).or_default().push(i as u32);
            }
            map
        });
        let candidates = dedup.entry(h).or_default();
        if candidates.iter().any(|&i| &data[i as usize * arity..(i as usize + 1) * arity] == row) {
            return false;
        }
        candidates.push(self.num_rows as u32);
        data.extend_from_slice(row);
        self.num_rows += 1;
        self.invalidate_indexes();
        true
    }

    /// Whether an equal row is present (linear scan unless dedup metadata
    /// exists; used by tests and the linear evaluator's seed check).
    pub fn contains(&self, row: &[u32]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        if let Some(dedup) = &self.dedup {
            let Some(candidates) = dedup.get(&hash_row(row)) else { return false };
            return candidates.iter().any(|&i| self.row(i as usize) == row);
        }
        self.rows().any(|r| r == row)
    }

    /// The cardinality statistics, computed on first use (one pass per
    /// column) and cached until the relation is mutated. Safe to call
    /// concurrently on a shared `&Relation`, like [`Relation::column_index`].
    pub fn stats(&self) -> &RelStats {
        self.stats.get_or_init(|| RelStats::compute(self))
    }

    /// Presets the stats slot from persisted values (the snapshot open
    /// path). Ignored if stats were already computed, or if `distinct`
    /// does not match the arity / exceeds the row count (a forged or
    /// stale section must not poison planning — the lazy recompute wins).
    pub fn preset_stats(&self, distinct: Vec<u64>, sorted_col0: bool) {
        let rows = self.num_rows as u64;
        if distinct.len() != self.arity || distinct.iter().any(|&d| d > rows) {
            return;
        }
        let _ = self.stats.set(RelStats::from_persisted(self.num_rows, distinct, sorted_col0));
    }

    /// Whether the hash index of `col` has already been built (the
    /// planner folds the build cost into its access-path estimates).
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.get(col).is_some_and(|slot| slot.get().is_some())
    }

    /// The row range whose column 0 equals `key`, by binary search.
    /// Only meaningful when the relation is sorted on column 0
    /// ([`RelStats::sorted_col0`]); the kernel's merge access path uses
    /// this instead of building a hash index.
    pub fn equal_range_col0(&self, key: u32) -> (usize, usize) {
        debug_assert!(self.arity > 0);
        let lo = self.partition_point_col0(|v| v < key);
        let hi = self.partition_point_col0(|v| v <= key);
        (lo, hi)
    }

    fn partition_point_col0(&self, pred: impl Fn(u32) -> bool) -> usize {
        let data = self.data.as_slice();
        let (mut lo, mut hi) = (0usize, self.num_rows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(data[mid * self.arity]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The hash index of a column, built on first use and cached until the
    /// relation is mutated.
    ///
    /// Safe to call from several threads at once on a shared `&Relation`:
    /// the per-column `OnceLock` serialises construction and every caller
    /// receives the same cached index.
    pub fn column_index(&self, col: usize) -> &ColumnIndex {
        assert!(col < self.arity, "column {col} out of range for arity {}", self.arity);
        self.indexes[col].get_or_init(|| {
            // An unwind out of a `OnceLock` initialiser leaves the slot
            // empty (not poisoned), so a retried evaluation rebuilds it.
            crate::fault::inject(crate::fault::site::STORAGE_INDEX_BUILD);
            let mut map: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
            for i in 0..self.num_rows {
                map.entry(self.row(i)[col]).or_default().push(i as u32);
            }
            ColumnIndex { repr: IndexRepr::Hash(map) }
        })
    }

    /// Presets a column's index slot from a persisted index (the snapshot
    /// open path, mirroring [`Relation::preset_stats`]). Ignored if the
    /// column is out of range, an index was already built, or the
    /// candidate is implausible — it must reference exactly `len()` rows,
    /// all in range — so a forged or stale persisted index can never
    /// corrupt probes; the lazy hash build wins instead.
    pub fn preset_index(&self, col: usize, idx: ColumnIndex) {
        if col >= self.arity || idx.total_rows() != self.num_rows {
            return;
        }
        if idx.max_row().is_some_and(|m| m as usize >= self.num_rows) {
            return;
        }
        let _ = self.indexes[col].set(idx);
    }

    /// Drops every cached column index. Called by all mutating methods
    /// *before* the row store changes; requires `&mut self`, so no shared
    /// reference to a stale index can survive the mutation (the borrow
    /// checker ends those borrows before exclusive access begins).
    fn invalidate_indexes(&mut self) {
        for slot in &mut self.indexes {
            if slot.get().is_some() {
                *slot = OnceLock::new();
            }
        }
        if self.stats.get().is_some() {
            self.stats = OnceLock::new();
        }
    }
}

/// How many [`Database`]s have been built in this process — used by the
/// experiment harness to assert that dataset loading is amortised (at most
/// one build per dataset, shared across all strategies).
static DATABASE_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// Monotone id source for [`Database::id`]; never reused within a process.
static DATABASE_IDS: AtomicUsize = AtomicUsize::new(1);

/// A [`Database`] slot that hydrates its [`Relation`] on first touch.
///
/// The parse path fills slots eagerly ([`LazyRelation::ready`]); the
/// snapshot store installs a hydrator closure ([`LazyRelation::lazy`])
/// that decodes the relation from the mapped file when some evaluation
/// first asks for it. Hydration is serialised by a `OnceLock`, so
/// concurrent first readers observe exactly one relation, and a panic
/// out of the hydrator leaves the slot empty for a retried evaluation.
pub struct LazyRelation {
    cell: OnceLock<Relation>,
    init: Option<Box<dyn Fn() -> Relation + Send + Sync>>,
}

impl LazyRelation {
    /// An already-hydrated slot (the parse path).
    pub fn ready(rel: Relation) -> Self {
        let cell = OnceLock::new();
        let _ = cell.set(rel);
        LazyRelation { cell, init: None }
    }

    /// A slot hydrated by `init` on first access (the snapshot path).
    pub fn lazy(init: impl Fn() -> Relation + Send + Sync + 'static) -> Self {
        LazyRelation { cell: OnceLock::new(), init: Some(Box::new(init)) }
    }

    /// Whether the relation has been hydrated already.
    pub fn is_hydrated(&self) -> bool {
        self.cell.get().is_some()
    }

    /// The relation, hydrating it first if needed.
    pub fn get(&self) -> &Relation {
        self.cell.get_or_init(|| match &self.init {
            Some(init) => init(),
            // Unreachable: `ready` pre-fills the cell and `lazy` sets
            // `init`, so an empty cell always has a hydrator.
            None => panic!("LazyRelation with neither relation nor hydrator"),
        })
    }
}

impl std::fmt::Debug for LazyRelation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.cell.get() {
            Some(rel) => f.debug_tuple("Hydrated").field(rel).finish(),
            None => f.write_str("Pending"),
        }
    }
}

/// Every EDB relation of a data instance, loaded and indexed once, shared
/// across evaluations. Slots hydrate lazily when built via
/// [`Database::from_lazy_relations`]; all other constructors are eager.
#[derive(Debug)]
pub struct Database {
    classes: FxHashMap<ClassId, LazyRelation>,
    props: FxHashMap<PropId, LazyRelation>,
    /// The active domain `⊤` (all individuals), arity 1.
    universe: Relation,
    empty_unary: Relation,
    empty_binary: Relation,
    num_atoms: usize,
    /// Process-unique instance id; plan caches key on it.
    id: u64,
}

impl Database {
    /// Loads a data instance: one pass over the class atoms, one over the
    /// property atoms, one over the individuals.
    pub fn new(data: &DataInstance) -> Self {
        DATABASE_BUILDS.fetch_add(1, Ordering::Relaxed);
        let mut classes = FxHashMap::default();
        for (c, members) in data.members_by_class() {
            let mut rel = Relation::with_capacity(1, members.len());
            for a in members {
                rel.push(&[a.0]);
            }
            classes.insert(c, LazyRelation::ready(rel));
        }
        let mut props = FxHashMap::default();
        for (p, pairs) in data.pairs_by_prop() {
            let mut rel = Relation::with_capacity(2, pairs.len());
            for (a, b) in pairs {
                rel.push(&[a.0, b.0]);
            }
            props.insert(p, LazyRelation::ready(rel));
        }
        let mut universe = Relation::with_capacity(1, data.num_individuals());
        for a in data.individuals() {
            universe.push(&[a.0]);
        }
        Database {
            classes,
            props,
            universe,
            empty_unary: Relation::new(1),
            empty_binary: Relation::new(2),
            num_atoms: data.num_atoms(),
            id: DATABASE_IDS.fetch_add(1, Ordering::Relaxed) as u64,
        }
    }

    /// Assembles a database from pre-built relations (the snapshot store's
    /// open path, bypassing [`Database::new`]'s per-atom scans). Counts as
    /// a build for [`Database::build_count`], so load-amortisation
    /// assertions in the experiment harness see snapshot opens too.
    ///
    /// `universe` must be the arity-1 relation of all individuals and
    /// `num_atoms` the total class + property atom count.
    pub fn from_relations(
        classes: FxHashMap<ClassId, Relation>,
        props: FxHashMap<PropId, Relation>,
        universe: Relation,
        num_atoms: usize,
    ) -> Self {
        Database::from_lazy_relations(
            classes.into_iter().map(|(c, r)| (c, LazyRelation::ready(r))).collect(),
            props.into_iter().map(|(p, r)| (p, LazyRelation::ready(r))).collect(),
            universe,
            num_atoms,
        )
    }

    /// Assembles a database whose relation slots may hydrate lazily (the
    /// snapshot store's mmap open path: each [`LazyRelation`] decodes its
    /// segment columns on first touch). Counts as one build regardless of
    /// how many slots ever hydrate.
    ///
    /// `universe` must be the arity-1 relation of all individuals and
    /// `num_atoms` the total class + property atom count.
    pub fn from_lazy_relations(
        classes: FxHashMap<ClassId, LazyRelation>,
        props: FxHashMap<PropId, LazyRelation>,
        universe: Relation,
        num_atoms: usize,
    ) -> Self {
        DATABASE_BUILDS.fetch_add(1, Ordering::Relaxed);
        assert_eq!(universe.arity(), 1, "universe must be unary");
        Database {
            classes,
            props,
            universe,
            empty_unary: Relation::new(1),
            empty_binary: Relation::new(2),
            num_atoms,
            id: DATABASE_IDS.fetch_add(1, Ordering::Relaxed) as u64,
        }
    }

    /// A process-unique id for this database instance. Query-plan caches
    /// key on it: two databases never share an id, so a plan computed
    /// against one can never be replayed against another's statistics.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Iterates over the non-empty class relations (snapshot export;
    /// hydrates every class slot).
    pub fn class_relations(&self) -> impl Iterator<Item = (ClassId, &Relation)> {
        self.classes.iter().map(|(&c, r)| (c, r.get()))
    }

    /// Iterates over the non-empty property relations (snapshot export;
    /// hydrates every property slot).
    pub fn prop_relations(&self) -> impl Iterator<Item = (PropId, &Relation)> {
        self.props.iter().map(|(&p, r)| (p, r.get()))
    }

    /// The relation of an EDB predicate kind, hydrating a lazy slot on
    /// first touch.
    ///
    /// # Panics
    /// Panics on [`PredKind::Idb`]: IDB relations are computed by the
    /// evaluators, not stored.
    pub fn relation(&self, kind: PredKind) -> &Relation {
        match kind {
            PredKind::EdbClass(c) => {
                self.classes.get(&c).map_or(&self.empty_unary, LazyRelation::get)
            }
            PredKind::EdbProp(p) => {
                self.props.get(&p).map_or(&self.empty_binary, LazyRelation::get)
            }
            PredKind::Top => &self.universe,
            PredKind::Idb => panic!("IDB relations are computed, not stored"),
        }
    }

    /// Hydrates every not-yet-hydrated slot among `kinds`, returning
    /// `(relations, columns)` newly hydrated. The engine seeds this from
    /// the relevance pruner's relevant-predicate set so a pruned query
    /// faults in only the columns it joins; already-hydrated and
    /// absent-from-data predicates cost nothing.
    pub fn prefetch(&self, kinds: impl IntoIterator<Item = PredKind>) -> (u64, u64) {
        let (mut relations, mut columns) = (0u64, 0u64);
        for kind in kinds {
            let slot = match kind {
                PredKind::EdbClass(c) => self.classes.get(&c),
                PredKind::EdbProp(p) => self.props.get(&p),
                PredKind::Top | PredKind::Idb => None,
            };
            if let Some(slot) = slot {
                if !slot.is_hydrated() {
                    let rel = slot.get();
                    relations += 1;
                    columns += rel.arity() as u64;
                }
            }
        }
        (relations, columns)
    }

    /// Number of individuals (rows of `⊤`).
    pub fn num_individuals(&self) -> usize {
        self.universe.len()
    }

    /// Number of atoms loaded.
    pub fn num_atoms(&self) -> usize {
        self.num_atoms
    }

    /// Total [`Database`] builds in this process (monotone counter).
    pub fn build_count() -> usize {
        DATABASE_BUILDS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_owlql::parser::{parse_data, parse_ontology};

    #[test]
    fn columnar_relation_roundtrip() {
        let mut r = Relation::new(2);
        r.push(&[1, 2]);
        r.push(&[3, 4]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1), &[3, 4]);
        assert_eq!(r.rows().count(), 2);
        assert!(r.contains(&[1, 2]));
        assert!(!r.contains(&[2, 1]));
    }

    #[test]
    fn insert_if_new_deduplicates_exactly() {
        let mut r = Relation::new(2);
        assert!(r.insert_if_new(&[1, 2]));
        assert!(!r.insert_if_new(&[1, 2]));
        assert!(r.insert_if_new(&[2, 1]));
        assert_eq!(r.len(), 2);
        // Mixed with push-loaded rows: dedup still exact.
        let mut s = Relation::new(1);
        s.push(&[7]);
        assert!(!s.insert_if_new(&[7]));
        assert!(s.insert_if_new(&[8]));
        s.push(&[9]);
        assert!(!s.insert_if_new(&[9]));
    }

    #[test]
    fn arity_zero_relations_hold_the_empty_row() {
        let mut r = Relation::new(0);
        assert!(r.is_empty());
        assert!(r.insert_if_new(&[]));
        assert!(!r.insert_if_new(&[]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows().next(), Some(&[][..]));
    }

    #[test]
    fn column_index_probes_and_invalidates() {
        let mut r = Relation::new(2);
        r.push(&[1, 10]);
        r.push(&[1, 20]);
        r.push(&[2, 10]);
        let idx = r.column_index(0);
        assert_eq!(idx.probe(1), &[0, 1]);
        assert_eq!(idx.probe(9), &[] as &[u32]);
        assert_eq!(idx.num_keys(), 2);
        assert_eq!(r.column_index(1).probe(10), &[0, 2]);
        // Mutation invalidates; the rebuilt index sees the new row.
        r.push(&[1, 30]);
        assert_eq!(r.column_index(0).probe(1), &[0, 1, 3]);
    }

    #[test]
    fn from_sorted_columns_interleaves_and_indexes() {
        let r = Relation::from_sorted_columns(2, &[vec![1, 1, 2], vec![10, 20, 10]]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.row(1), &[1, 20]);
        assert!(r.contains(&[2, 10]));
        assert_eq!(r.column_index(0).probe(1), &[0, 1]);
        assert_eq!(r.column_index(1).probe(10), &[0, 2]);
        let unary = Relation::from_sorted_columns(1, &[vec![5, 6]]);
        assert_eq!(unary.len(), 2);
        assert_eq!(unary.row(0), &[5]);
        let empty = Relation::from_sorted_columns(2, &[Vec::new(), Vec::new()]);
        assert!(empty.is_empty());
        assert_eq!(empty.arity(), 2);
    }

    #[test]
    fn from_relations_matches_scanned_build() {
        let o = parse_ontology("Class A\nProperty P\n").unwrap();
        let d = parse_data("P(x, y)\nA(x)\n", &o).unwrap();
        let scanned = Database::new(&d);
        let before = Database::build_count();
        let mut classes = FxHashMap::default();
        let mut props = FxHashMap::default();
        for (c, r) in scanned.class_relations() {
            classes
                .insert(c, Relation::from_sorted_columns(1, &[r.rows().map(|x| x[0]).collect()]));
        }
        for (p, r) in scanned.prop_relations() {
            let cols =
                [r.rows().map(|x| x[0]).collect::<Vec<_>>(), r.rows().map(|x| x[1]).collect()];
            props.insert(p, Relation::from_sorted_columns(2, &cols));
        }
        let universe = Relation::from_sorted_columns(
            1,
            &[scanned.relation(PredKind::Top).rows().map(|x| x[0]).collect()],
        );
        let db = Database::from_relations(classes, props, universe, scanned.num_atoms());
        assert_eq!(Database::build_count(), before + 1);
        assert_eq!(db.num_atoms(), 2);
        assert_eq!(db.num_individuals(), 2);
        let v = o.vocab();
        let p = db.relation(PredKind::EdbProp(v.get_prop("P").unwrap()));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn stats_cached_preset_and_invalidated() {
        let mut r = Relation::new(2);
        r.push(&[1, 10]);
        r.push(&[2, 10]);
        let s = r.stats();
        assert_eq!((s.rows, s.distinct.clone()), (2, vec![2, 1]));
        assert!(std::ptr::eq(r.stats(), r.stats()), "computed once");
        // A computed slot wins over a later preset.
        r.preset_stats(vec![9, 9], false);
        assert_eq!(r.stats().distinct, vec![2, 1]);
        // Mutation invalidates; the recomputed stats see the new row.
        r.push(&[3, 20]);
        assert_eq!(r.stats().distinct, vec![3, 2]);

        let mut p = Relation::new(2);
        p.push(&[1, 10]);
        p.push(&[2, 10]);
        p.preset_stats(vec![2, 1], true);
        assert_eq!(p.stats().distinct, vec![2, 1]);
        assert!(p.stats().sorted_col0);
        // Implausible persisted counts are rejected, falling back to lazy.
        let q = Relation::from_sorted_columns(1, &[vec![4, 5]]);
        q.preset_stats(vec![77], true);
        assert_eq!(q.stats().distinct, vec![2]);
    }

    #[test]
    fn equal_range_col0_binary_searches_sorted_rows() {
        let r = Relation::from_sorted_columns(2, &[vec![1, 1, 3, 3, 3, 7], vec![0; 6]]);
        assert!(r.stats().sorted_col0);
        assert_eq!(r.equal_range_col0(1), (0, 2));
        assert_eq!(r.equal_range_col0(3), (2, 5));
        assert_eq!(r.equal_range_col0(7), (5, 6));
        assert_eq!(r.equal_range_col0(2), (2, 2));
        assert_eq!(r.equal_range_col0(9), (6, 6));
        assert_eq!(r.equal_range_col0(0), (0, 0));
    }

    #[test]
    fn has_index_tracks_lazy_builds() {
        let mut r = Relation::new(2);
        r.push(&[1, 2]);
        assert!(!r.has_index(0));
        r.column_index(0);
        assert!(r.has_index(0));
        assert!(!r.has_index(1));
        r.push(&[3, 4]);
        assert!(!r.has_index(0), "mutation invalidates");
    }

    #[test]
    fn shared_arena_reads_and_copies_on_write() {
        let arena: Arc<dyn ArenaWords> = Arc::new(vec![1u32, 10, 2, 20]);
        let mut r = Relation::from_shared(2, 2, Arc::clone(&arena));
        assert!(r.is_shared());
        assert_eq!(r.row(1), &[2, 20]);
        assert_eq!(r.column_index(0).probe(2), &[1]);
        assert!(r.contains(&[1, 10]));
        // Mutation copies the words out; the shared arena is untouched.
        r.push(&[3, 30]);
        assert!(!r.is_shared());
        assert_eq!(r.len(), 3);
        assert_eq!(r.row(2), &[3, 30]);
        assert_eq!(arena.words(), &[1, 10, 2, 20]);
        // insert_if_new on a fresh shared relation also copies out.
        let mut s = Relation::from_shared(1, 2, Arc::new(vec![5u32, 6]));
        assert!(!s.insert_if_new(&[5]));
        assert!(s.insert_if_new(&[7]));
        assert!(!s.is_shared());
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "shared arena")]
    fn shared_arena_geometry_is_checked() {
        let _ = Relation::from_shared(2, 2, Arc::new(vec![1u32, 2, 3]));
    }

    #[test]
    fn csr_index_probes_like_the_hash_index() {
        let idx =
            ColumnIndex::from_csr(vec![1, 2], vec![0, 2, 3], vec![0, 1, 2]).expect("valid CSR");
        assert_eq!(idx.probe(1), &[0, 1]);
        assert_eq!(idx.probe(2), &[2]);
        assert_eq!(idx.probe(9), &[] as &[u32]);
        assert_eq!(idx.num_keys(), 2);
        // Invariant violations are rejected.
        assert!(ColumnIndex::from_csr(vec![2, 1], vec![0, 1, 2], vec![0, 1]).is_none());
        assert!(ColumnIndex::from_csr(vec![1], vec![0], vec![0]).is_none());
        assert!(ColumnIndex::from_csr(vec![1], vec![1, 1], vec![]).is_none());
        assert!(ColumnIndex::from_csr(vec![1], vec![0, 2], vec![0]).is_none());
        assert!(ColumnIndex::from_csr(vec![1, 2], vec![0, 2, 1], vec![0, 1]).is_none());
    }

    #[test]
    fn preset_index_accepts_plausible_rejects_forged() {
        let r = Relation::from_sorted_columns(2, &[vec![1, 1, 2], vec![10, 20, 10]]);
        let good = ColumnIndex::from_csr(vec![1, 2], vec![0, 2, 3], vec![0, 1, 2]).unwrap();
        r.preset_index(0, good);
        assert!(r.has_index(0), "plausible persisted index installed");
        assert_eq!(r.column_index(0).probe(1), &[0, 1]);
        // Wrong total row count → rejected, lazy build wins.
        let short = ColumnIndex::from_csr(vec![10], vec![0, 1], vec![0]).unwrap();
        r.preset_index(1, short);
        assert!(!r.has_index(1));
        assert_eq!(r.column_index(1).probe(10), &[0, 2]);
        // Out-of-range row id → rejected.
        let s = Relation::from_sorted_columns(1, &[vec![4]]);
        let oob = ColumnIndex::from_csr(vec![4], vec![0, 1], vec![9]).unwrap();
        s.preset_index(0, oob);
        assert!(!s.has_index(0));
        // Out-of-range column → ignored, no panic.
        let valid = ColumnIndex::from_csr(vec![4], vec![0, 1], vec![0]).unwrap();
        s.preset_index(5, valid);
    }

    #[test]
    fn lazy_relations_hydrate_once_on_first_touch() {
        let hydrations = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hydrations);
        let lazy = LazyRelation::lazy(move || {
            h.fetch_add(1, Ordering::Relaxed);
            Relation::from_sorted_columns(1, &[vec![7, 8]])
        });
        assert!(!lazy.is_hydrated());
        assert_eq!(hydrations.load(Ordering::Relaxed), 0, "construction does not hydrate");
        assert_eq!(lazy.get().len(), 2);
        assert!(lazy.is_hydrated());
        assert_eq!(lazy.get().row(0), &[7]);
        assert_eq!(hydrations.load(Ordering::Relaxed), 1, "hydrated exactly once");
        let ready = LazyRelation::ready(Relation::new(2));
        assert!(ready.is_hydrated());
        assert!(ready.get().is_empty());
    }

    #[test]
    fn database_prefetch_hydrates_only_named_slots() {
        let o = parse_ontology("Class A\nProperty P\n").unwrap();
        let d = parse_data("P(x, y)\nA(x)\nA(y)\n", &o).unwrap();
        let eager = Database::new(&d);
        let v = o.vocab();
        let (a, p) = (v.get_class("A").unwrap(), v.get_prop("P").unwrap());
        let touched = Arc::new(AtomicUsize::new(0));
        let mk = |rel: Relation, touched: &Arc<AtomicUsize>| {
            let t = Arc::clone(touched);
            let cols: Vec<Vec<u32>> =
                (0..rel.arity()).map(|c| rel.rows().map(|r| r[c]).collect()).collect();
            let arity = rel.arity();
            LazyRelation::lazy(move || {
                t.fetch_add(1, Ordering::Relaxed);
                Relation::from_sorted_columns(arity, &cols)
            })
        };
        let mut classes = FxHashMap::default();
        classes.insert(a, mk(Relation::from_sorted_columns(1, &[vec![0, 1]]), &touched));
        let mut props = FxHashMap::default();
        props.insert(p, mk(Relation::from_sorted_columns(2, &[vec![0], vec![1]]), &touched));
        let universe = Relation::from_sorted_columns(1, &[vec![0, 1]]);
        let db = Database::from_lazy_relations(classes, props, universe, 3);
        assert_eq!(touched.load(Ordering::Relaxed), 0, "open hydrates nothing");
        // Prefetching only the class touches one relation / one column.
        let (rels, cols) = db.prefetch([PredKind::EdbClass(a), PredKind::Top]);
        assert_eq!((rels, cols), (1, 1));
        assert_eq!(touched.load(Ordering::Relaxed), 1);
        // Re-prefetching is free; the property hydrates on demand.
        assert_eq!(db.prefetch([PredKind::EdbClass(a)]), (0, 0));
        assert_eq!(db.relation(PredKind::EdbProp(p)).len(), 1);
        assert_eq!(touched.load(Ordering::Relaxed), 2);
        // Answers match the eager build.
        assert_eq!(
            db.relation(PredKind::EdbClass(a)).len(),
            eager.relation(PredKind::EdbClass(a)).len()
        );
    }

    #[test]
    fn database_ids_are_unique() {
        let o = parse_ontology("Class A\n").unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let a = Database::new(&d);
        let b = Database::new(&d);
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), 0);
    }

    #[test]
    fn database_loads_every_relation_once() {
        let o = parse_ontology("Class A\nProperty P\nProperty Q\n").unwrap();
        let d = parse_data("P(x, y)\nP(y, z)\nA(x)\n", &o).unwrap();
        let before = Database::build_count();
        let db = Database::new(&d);
        assert_eq!(Database::build_count(), before + 1);
        let v = o.vocab();
        let p = db.relation(PredKind::EdbProp(v.get_prop("P").unwrap()));
        assert_eq!(p.len(), 2);
        assert_eq!(p.arity(), 2);
        let a = db.relation(PredKind::EdbClass(v.get_class("A").unwrap()));
        assert_eq!(a.len(), 1);
        // Missing EDB relations resolve to shared empties of the right arity.
        let q = db.relation(PredKind::EdbProp(v.get_prop("Q").unwrap()));
        assert!(q.is_empty());
        assert_eq!(q.arity(), 2);
        assert_eq!(db.relation(PredKind::Top).len(), 3);
        assert_eq!(db.num_individuals(), 3);
        assert_eq!(db.num_atoms(), 3);
    }
}
