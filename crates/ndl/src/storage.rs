//! Shared indexed relation storage for the evaluators.
//!
//! The seed engine re-scanned the whole [`DataInstance`] to rebuild every
//! EDB relation on every `evaluate` call and stored relations as
//! `FxHashSet<Vec<u32>>` — one heap allocation per row and a fresh join
//! index per clause atom. This module replaces that substrate:
//!
//! * [`Relation`] — a columnar relation: one flat row-major `Vec<u32>`
//!   arena plus an arity, no per-row allocation, with exact hash-based
//!   deduplication and *lazy* per-column hash indexes (built at most once,
//!   cached inside the relation, shared by every clause and every
//!   evaluation that probes the same column);
//! * [`Database`] — every EDB relation of a data instance, built **once**
//!   via the grouped-access APIs of `obda_owlql::abox` and then shared by
//!   all evaluations (`evaluate_on`, `evaluate_linear_on`) and all
//!   rewriting strategies of the experiment harness.
//!
//! ## Immutability contract and thread safety
//!
//! Mutation ([`Relation::push`], [`Relation::insert_if_new`]) requires
//! `&mut Relation` and eagerly drops every cached [`ColumnIndex`], so a
//! stale index can never be observed through a shared reference: creating
//! one requires exclusive access, which ends all outstanding borrows of the
//! old index first. Conversely, while any `&Relation` is live the relation
//! is frozen — rows, the dedup table, and indexes cannot change.
//!
//! That aliasing guarantee is what makes the parallel engine in
//! [`crate::engine`] sound. During a stratum, worker threads hold only
//! shared references to the [`Database`] and to the relations of earlier
//! strata; the lazy index cache is a `OnceLock` per column, so concurrent
//! first probes of the same column race only inside `get_or_init`, which
//! serialises initialisation and hands every thread the same index.
//! Relations being *built* in the current stratum are each behind a
//! `Mutex` and are only promoted to the shared, read-only set at the
//! stratum barrier — i.e. `Relation` is `Sync` for readers and requires
//! external exclusion for writers, exactly matching `&`/`&mut` semantics.

use crate::program::PredKind;
use crate::stats::RelStats;
use obda_owlql::abox::DataInstance;
use obda_owlql::util::{FxHashMap, FxHasher};
use obda_owlql::vocab::{ClassId, PropId};
use std::hash::Hasher;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn hash_row(row: &[u32]) -> u64 {
    let mut h = FxHasher::default();
    for &v in row {
        h.write_u32(v);
    }
    h.finish()
}

/// A hash index over one column of a [`Relation`]: value → row numbers.
#[derive(Debug, Clone, Default)]
pub struct ColumnIndex {
    map: FxHashMap<u32, Vec<u32>>,
}

impl ColumnIndex {
    /// The rows whose indexed column equals `key`.
    pub fn probe(&self, key: u32) -> &[u32] {
        self.map.get(&key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct keys.
    pub fn num_keys(&self) -> usize {
        self.map.len()
    }
}

/// A columnar relation: `num_rows` rows of `arity` values in one flat
/// row-major arena.
#[derive(Debug, Default)]
pub struct Relation {
    arity: usize,
    num_rows: usize,
    data: Vec<u32>,
    /// Exact dedup: row hash → candidate row numbers. Built lazily by the
    /// first [`Relation::insert_if_new`]; plain [`Relation::push`] loading
    /// of already-distinct rows never pays for it.
    dedup: Option<FxHashMap<u64, Vec<u32>>>,
    /// Lazily built per-column indexes, invalidated on mutation.
    indexes: Vec<OnceLock<ColumnIndex>>,
    /// Lazily computed cardinality statistics, invalidated on mutation.
    /// The snapshot store presets this slot from the persisted stats
    /// section so reopening never re-scans the columns.
    stats: OnceLock<RelStats>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            num_rows: 0,
            data: Vec::new(),
            dedup: None,
            indexes: (0..arity).map(|_| OnceLock::new()).collect(),
            stats: OnceLock::new(),
        }
    }

    /// An empty relation with room for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> Self {
        let mut r = Relation::new(arity);
        r.data.reserve(rows * arity);
        r
    }

    /// Builds a relation from decomposed columns of already-distinct rows
    /// (the snapshot store's bulk-load path: one contiguous copy per
    /// column, no per-row hashing or dedup, and the per-column hash
    /// indexes stay lazy behind the usual `OnceLock`s).
    ///
    /// Column `c` supplies the `c`-th value of every row, so all columns
    /// must have equal length; rows are interleaved back into the
    /// row-major arena.
    ///
    /// # Panics
    /// Panics if the columns have unequal lengths.
    pub fn from_sorted_columns(arity: usize, columns: &[Vec<u32>]) -> Self {
        assert_eq!(columns.len(), arity, "expected {arity} columns, got {}", columns.len());
        let rows = columns.first().map_or(0, Vec::len);
        for (c, col) in columns.iter().enumerate() {
            assert_eq!(col.len(), rows, "column {c} has {} rows, expected {rows}", col.len());
        }
        let mut r = Relation::with_capacity(arity, rows);
        if let [a, b] = columns {
            // Binary fast path: a bounds-check-free zip interleave (the
            // bulk of a snapshot's rows are property pairs).
            r.data.extend(a.iter().zip(b).flat_map(|(&x, &y)| [x, y]));
        } else if arity == 1 {
            // Unary fast path: the column *is* the arena.
            r.data.extend_from_slice(&columns[0]);
        } else {
            for i in 0..rows {
                for col in columns {
                    r.data.push(col[i]);
                }
            }
        }
        r.num_rows = rows;
        r
    }

    /// The arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.num_rows
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterates over the rows.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        // `chunks_exact(0)` panics, so arity-0 relations (Boolean goals)
        // yield `num_rows` empty rows explicitly.
        let arity = self.arity;
        (0..self.num_rows).map(move |i| &self.data[i * arity..i * arity + arity])
    }

    /// Appends a row without checking for duplicates (bulk loading of rows
    /// known to be distinct, e.g. from a set-backed [`DataInstance`]).
    pub fn push(&mut self, row: &[u32]) {
        debug_assert_eq!(row.len(), self.arity);
        self.invalidate_indexes();
        if let Some(dedup) = &mut self.dedup {
            dedup.entry(hash_row(row)).or_default().push(self.num_rows as u32);
        }
        self.data.extend_from_slice(row);
        self.num_rows += 1;
    }

    /// Inserts a row unless an equal row is already present; returns
    /// whether the row is new. Exact: hash collisions are resolved by
    /// comparing the stored rows.
    pub fn insert_if_new(&mut self, row: &[u32]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        // Injection site sits before any mutation: an unwind here leaves
        // the arena, dedup table and indexes exactly as they were.
        crate::fault::inject(crate::fault::site::STORAGE_INSERT);
        let h = hash_row(row);
        // Split borrows: the dedup table is (re)built from the row arena,
        // then held mutably while the arena is only read.
        let (arity, data) = (self.arity, &mut self.data);
        let dedup = self.dedup.get_or_insert_with(|| {
            let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            for i in 0..self.num_rows {
                map.entry(hash_row(&data[i * arity..(i + 1) * arity])).or_default().push(i as u32);
            }
            map
        });
        let candidates = dedup.entry(h).or_default();
        if candidates.iter().any(|&i| &data[i as usize * arity..(i as usize + 1) * arity] == row) {
            return false;
        }
        candidates.push(self.num_rows as u32);
        data.extend_from_slice(row);
        self.num_rows += 1;
        self.invalidate_indexes();
        true
    }

    /// Whether an equal row is present (linear scan unless dedup metadata
    /// exists; used by tests and the linear evaluator's seed check).
    pub fn contains(&self, row: &[u32]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        if let Some(dedup) = &self.dedup {
            let Some(candidates) = dedup.get(&hash_row(row)) else { return false };
            return candidates.iter().any(|&i| self.row(i as usize) == row);
        }
        self.rows().any(|r| r == row)
    }

    /// The cardinality statistics, computed on first use (one pass per
    /// column) and cached until the relation is mutated. Safe to call
    /// concurrently on a shared `&Relation`, like [`Relation::column_index`].
    pub fn stats(&self) -> &RelStats {
        self.stats.get_or_init(|| RelStats::compute(self))
    }

    /// Presets the stats slot from persisted values (the snapshot open
    /// path). Ignored if stats were already computed, or if `distinct`
    /// does not match the arity / exceeds the row count (a forged or
    /// stale section must not poison planning — the lazy recompute wins).
    pub fn preset_stats(&self, distinct: Vec<u64>, sorted_col0: bool) {
        let rows = self.num_rows as u64;
        if distinct.len() != self.arity || distinct.iter().any(|&d| d > rows) {
            return;
        }
        let _ = self.stats.set(RelStats::from_persisted(self.num_rows, distinct, sorted_col0));
    }

    /// Whether the hash index of `col` has already been built (the
    /// planner folds the build cost into its access-path estimates).
    pub fn has_index(&self, col: usize) -> bool {
        self.indexes.get(col).is_some_and(|slot| slot.get().is_some())
    }

    /// The row range whose column 0 equals `key`, by binary search.
    /// Only meaningful when the relation is sorted on column 0
    /// ([`RelStats::sorted_col0`]); the kernel's merge access path uses
    /// this instead of building a hash index.
    pub fn equal_range_col0(&self, key: u32) -> (usize, usize) {
        debug_assert!(self.arity > 0);
        let lo = self.partition_point_col0(|v| v < key);
        let hi = self.partition_point_col0(|v| v <= key);
        (lo, hi)
    }

    fn partition_point_col0(&self, pred: impl Fn(u32) -> bool) -> usize {
        let (mut lo, mut hi) = (0usize, self.num_rows);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.data[mid * self.arity]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The hash index of a column, built on first use and cached until the
    /// relation is mutated.
    ///
    /// Safe to call from several threads at once on a shared `&Relation`:
    /// the per-column `OnceLock` serialises construction and every caller
    /// receives the same cached index.
    pub fn column_index(&self, col: usize) -> &ColumnIndex {
        assert!(col < self.arity, "column {col} out of range for arity {}", self.arity);
        self.indexes[col].get_or_init(|| {
            // An unwind out of a `OnceLock` initialiser leaves the slot
            // empty (not poisoned), so a retried evaluation rebuilds it.
            crate::fault::inject(crate::fault::site::STORAGE_INDEX_BUILD);
            let mut map: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
            for i in 0..self.num_rows {
                map.entry(self.row(i)[col]).or_default().push(i as u32);
            }
            ColumnIndex { map }
        })
    }

    /// Drops every cached column index. Called by all mutating methods
    /// *before* the row store changes; requires `&mut self`, so no shared
    /// reference to a stale index can survive the mutation (the borrow
    /// checker ends those borrows before exclusive access begins).
    fn invalidate_indexes(&mut self) {
        for slot in &mut self.indexes {
            if slot.get().is_some() {
                *slot = OnceLock::new();
            }
        }
        if self.stats.get().is_some() {
            self.stats = OnceLock::new();
        }
    }
}

/// How many [`Database`]s have been built in this process — used by the
/// experiment harness to assert that dataset loading is amortised (at most
/// one build per dataset, shared across all strategies).
static DATABASE_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// Monotone id source for [`Database::id`]; never reused within a process.
static DATABASE_IDS: AtomicUsize = AtomicUsize::new(1);

/// Every EDB relation of a data instance, loaded and indexed once, shared
/// across evaluations.
#[derive(Debug)]
pub struct Database {
    classes: FxHashMap<ClassId, Relation>,
    props: FxHashMap<PropId, Relation>,
    /// The active domain `⊤` (all individuals), arity 1.
    universe: Relation,
    empty_unary: Relation,
    empty_binary: Relation,
    num_atoms: usize,
    /// Process-unique instance id; plan caches key on it.
    id: u64,
}

impl Database {
    /// Loads a data instance: one pass over the class atoms, one over the
    /// property atoms, one over the individuals.
    pub fn new(data: &DataInstance) -> Self {
        DATABASE_BUILDS.fetch_add(1, Ordering::Relaxed);
        let mut classes = FxHashMap::default();
        for (c, members) in data.members_by_class() {
            let mut rel = Relation::with_capacity(1, members.len());
            for a in members {
                rel.push(&[a.0]);
            }
            classes.insert(c, rel);
        }
        let mut props = FxHashMap::default();
        for (p, pairs) in data.pairs_by_prop() {
            let mut rel = Relation::with_capacity(2, pairs.len());
            for (a, b) in pairs {
                rel.push(&[a.0, b.0]);
            }
            props.insert(p, rel);
        }
        let mut universe = Relation::with_capacity(1, data.num_individuals());
        for a in data.individuals() {
            universe.push(&[a.0]);
        }
        Database {
            classes,
            props,
            universe,
            empty_unary: Relation::new(1),
            empty_binary: Relation::new(2),
            num_atoms: data.num_atoms(),
            id: DATABASE_IDS.fetch_add(1, Ordering::Relaxed) as u64,
        }
    }

    /// Assembles a database from pre-built relations (the snapshot store's
    /// open path, bypassing [`Database::new`]'s per-atom scans). Counts as
    /// a build for [`Database::build_count`], so load-amortisation
    /// assertions in the experiment harness see snapshot opens too.
    ///
    /// `universe` must be the arity-1 relation of all individuals and
    /// `num_atoms` the total class + property atom count.
    pub fn from_relations(
        classes: FxHashMap<ClassId, Relation>,
        props: FxHashMap<PropId, Relation>,
        universe: Relation,
        num_atoms: usize,
    ) -> Self {
        DATABASE_BUILDS.fetch_add(1, Ordering::Relaxed);
        assert_eq!(universe.arity(), 1, "universe must be unary");
        Database {
            classes,
            props,
            universe,
            empty_unary: Relation::new(1),
            empty_binary: Relation::new(2),
            num_atoms,
            id: DATABASE_IDS.fetch_add(1, Ordering::Relaxed) as u64,
        }
    }

    /// A process-unique id for this database instance. Query-plan caches
    /// key on it: two databases never share an id, so a plan computed
    /// against one can never be replayed against another's statistics.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Iterates over the non-empty class relations (snapshot export).
    pub fn class_relations(&self) -> impl Iterator<Item = (ClassId, &Relation)> {
        self.classes.iter().map(|(&c, r)| (c, r))
    }

    /// Iterates over the non-empty property relations (snapshot export).
    pub fn prop_relations(&self) -> impl Iterator<Item = (PropId, &Relation)> {
        self.props.iter().map(|(&p, r)| (p, r))
    }

    /// The relation of an EDB predicate kind.
    ///
    /// # Panics
    /// Panics on [`PredKind::Idb`]: IDB relations are computed by the
    /// evaluators, not stored.
    pub fn relation(&self, kind: PredKind) -> &Relation {
        match kind {
            PredKind::EdbClass(c) => self.classes.get(&c).unwrap_or(&self.empty_unary),
            PredKind::EdbProp(p) => self.props.get(&p).unwrap_or(&self.empty_binary),
            PredKind::Top => &self.universe,
            PredKind::Idb => panic!("IDB relations are computed, not stored"),
        }
    }

    /// Number of individuals (rows of `⊤`).
    pub fn num_individuals(&self) -> usize {
        self.universe.len()
    }

    /// Number of atoms loaded.
    pub fn num_atoms(&self) -> usize {
        self.num_atoms
    }

    /// Total [`Database`] builds in this process (monotone counter).
    pub fn build_count() -> usize {
        DATABASE_BUILDS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obda_owlql::parser::{parse_data, parse_ontology};

    #[test]
    fn columnar_relation_roundtrip() {
        let mut r = Relation::new(2);
        r.push(&[1, 2]);
        r.push(&[3, 4]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(1), &[3, 4]);
        assert_eq!(r.rows().count(), 2);
        assert!(r.contains(&[1, 2]));
        assert!(!r.contains(&[2, 1]));
    }

    #[test]
    fn insert_if_new_deduplicates_exactly() {
        let mut r = Relation::new(2);
        assert!(r.insert_if_new(&[1, 2]));
        assert!(!r.insert_if_new(&[1, 2]));
        assert!(r.insert_if_new(&[2, 1]));
        assert_eq!(r.len(), 2);
        // Mixed with push-loaded rows: dedup still exact.
        let mut s = Relation::new(1);
        s.push(&[7]);
        assert!(!s.insert_if_new(&[7]));
        assert!(s.insert_if_new(&[8]));
        s.push(&[9]);
        assert!(!s.insert_if_new(&[9]));
    }

    #[test]
    fn arity_zero_relations_hold_the_empty_row() {
        let mut r = Relation::new(0);
        assert!(r.is_empty());
        assert!(r.insert_if_new(&[]));
        assert!(!r.insert_if_new(&[]));
        assert_eq!(r.len(), 1);
        assert_eq!(r.rows().next(), Some(&[][..]));
    }

    #[test]
    fn column_index_probes_and_invalidates() {
        let mut r = Relation::new(2);
        r.push(&[1, 10]);
        r.push(&[1, 20]);
        r.push(&[2, 10]);
        let idx = r.column_index(0);
        assert_eq!(idx.probe(1), &[0, 1]);
        assert_eq!(idx.probe(9), &[] as &[u32]);
        assert_eq!(idx.num_keys(), 2);
        assert_eq!(r.column_index(1).probe(10), &[0, 2]);
        // Mutation invalidates; the rebuilt index sees the new row.
        r.push(&[1, 30]);
        assert_eq!(r.column_index(0).probe(1), &[0, 1, 3]);
    }

    #[test]
    fn from_sorted_columns_interleaves_and_indexes() {
        let r = Relation::from_sorted_columns(2, &[vec![1, 1, 2], vec![10, 20, 10]]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.row(1), &[1, 20]);
        assert!(r.contains(&[2, 10]));
        assert_eq!(r.column_index(0).probe(1), &[0, 1]);
        assert_eq!(r.column_index(1).probe(10), &[0, 2]);
        let unary = Relation::from_sorted_columns(1, &[vec![5, 6]]);
        assert_eq!(unary.len(), 2);
        assert_eq!(unary.row(0), &[5]);
        let empty = Relation::from_sorted_columns(2, &[Vec::new(), Vec::new()]);
        assert!(empty.is_empty());
        assert_eq!(empty.arity(), 2);
    }

    #[test]
    fn from_relations_matches_scanned_build() {
        let o = parse_ontology("Class A\nProperty P\n").unwrap();
        let d = parse_data("P(x, y)\nA(x)\n", &o).unwrap();
        let scanned = Database::new(&d);
        let before = Database::build_count();
        let mut classes = FxHashMap::default();
        let mut props = FxHashMap::default();
        for (c, r) in scanned.class_relations() {
            classes
                .insert(c, Relation::from_sorted_columns(1, &[r.rows().map(|x| x[0]).collect()]));
        }
        for (p, r) in scanned.prop_relations() {
            let cols =
                [r.rows().map(|x| x[0]).collect::<Vec<_>>(), r.rows().map(|x| x[1]).collect()];
            props.insert(p, Relation::from_sorted_columns(2, &cols));
        }
        let universe = Relation::from_sorted_columns(
            1,
            &[scanned.relation(PredKind::Top).rows().map(|x| x[0]).collect()],
        );
        let db = Database::from_relations(classes, props, universe, scanned.num_atoms());
        assert_eq!(Database::build_count(), before + 1);
        assert_eq!(db.num_atoms(), 2);
        assert_eq!(db.num_individuals(), 2);
        let v = o.vocab();
        let p = db.relation(PredKind::EdbProp(v.get_prop("P").unwrap()));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn stats_cached_preset_and_invalidated() {
        let mut r = Relation::new(2);
        r.push(&[1, 10]);
        r.push(&[2, 10]);
        let s = r.stats();
        assert_eq!((s.rows, s.distinct.clone()), (2, vec![2, 1]));
        assert!(std::ptr::eq(r.stats(), r.stats()), "computed once");
        // A computed slot wins over a later preset.
        r.preset_stats(vec![9, 9], false);
        assert_eq!(r.stats().distinct, vec![2, 1]);
        // Mutation invalidates; the recomputed stats see the new row.
        r.push(&[3, 20]);
        assert_eq!(r.stats().distinct, vec![3, 2]);

        let mut p = Relation::new(2);
        p.push(&[1, 10]);
        p.push(&[2, 10]);
        p.preset_stats(vec![2, 1], true);
        assert_eq!(p.stats().distinct, vec![2, 1]);
        assert!(p.stats().sorted_col0);
        // Implausible persisted counts are rejected, falling back to lazy.
        let q = Relation::from_sorted_columns(1, &[vec![4, 5]]);
        q.preset_stats(vec![77], true);
        assert_eq!(q.stats().distinct, vec![2]);
    }

    #[test]
    fn equal_range_col0_binary_searches_sorted_rows() {
        let r = Relation::from_sorted_columns(2, &[vec![1, 1, 3, 3, 3, 7], vec![0; 6]]);
        assert!(r.stats().sorted_col0);
        assert_eq!(r.equal_range_col0(1), (0, 2));
        assert_eq!(r.equal_range_col0(3), (2, 5));
        assert_eq!(r.equal_range_col0(7), (5, 6));
        assert_eq!(r.equal_range_col0(2), (2, 2));
        assert_eq!(r.equal_range_col0(9), (6, 6));
        assert_eq!(r.equal_range_col0(0), (0, 0));
    }

    #[test]
    fn has_index_tracks_lazy_builds() {
        let mut r = Relation::new(2);
        r.push(&[1, 2]);
        assert!(!r.has_index(0));
        r.column_index(0);
        assert!(r.has_index(0));
        assert!(!r.has_index(1));
        r.push(&[3, 4]);
        assert!(!r.has_index(0), "mutation invalidates");
    }

    #[test]
    fn database_ids_are_unique() {
        let o = parse_ontology("Class A\n").unwrap();
        let d = parse_data("A(a)\n", &o).unwrap();
        let a = Database::new(&d);
        let b = Database::new(&d);
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), 0);
    }

    #[test]
    fn database_loads_every_relation_once() {
        let o = parse_ontology("Class A\nProperty P\nProperty Q\n").unwrap();
        let d = parse_data("P(x, y)\nP(y, z)\nA(x)\n", &o).unwrap();
        let before = Database::build_count();
        let db = Database::new(&d);
        assert_eq!(Database::build_count(), before + 1);
        let v = o.vocab();
        let p = db.relation(PredKind::EdbProp(v.get_prop("P").unwrap()));
        assert_eq!(p.len(), 2);
        assert_eq!(p.arity(), 2);
        let a = db.relation(PredKind::EdbClass(v.get_class("A").unwrap()));
        assert_eq!(a.len(), 1);
        // Missing EDB relations resolve to shared empties of the right arity.
        let q = db.relation(PredKind::EdbProp(v.get_prop("Q").unwrap()));
        assert!(q.is_empty());
        assert_eq!(q.arity(), 2);
        assert_eq!(db.relation(PredKind::Top).len(), 3);
        assert_eq!(db.num_individuals(), 3);
        assert_eq!(db.num_atoms(), 3);
    }
}
