//! Property tests for the storage-backed evaluators: the indexed engine
//! agrees with the seed hash-set reference engine on random nonrecursive
//! programs, the linear evaluator agrees with bottom-up over a single
//! shared [`Database`], and the parallel goal-directed engine agrees with
//! both at every thread count (override the counts under test with
//! `OBDA_TEST_THREADS=n1,n2,...`).

use obda_ndl::analysis::is_linear;
use obda_ndl::engine::{evaluate_engine_on, EngineConfig};
use obda_ndl::eval::{evaluate_on, EvalOptions};
use obda_ndl::explain::explain_plan_executed;
use obda_ndl::linear_eval::evaluate_linear_on;
use obda_ndl::program::{BodyAtom, CVar, Clause, NdlQuery, PredKind, Program};
use obda_ndl::reference::evaluate_reference;
use obda_ndl::storage::Database;
use obda_owlql::abox::DataInstance;
use obda_owlql::vocab::Vocab;
use obda_owlql::{ClassId, PropId};
use proptest::prelude::*;

const NUM_CLASSES: u32 = 3;
const NUM_PROPS: u32 = 2;
const NUM_IDB: usize = 3;

fn vocab() -> Vocab {
    let mut v = Vocab::new();
    for i in 0..NUM_CLASSES {
        v.class(&format!("A{i}"));
    }
    for i in 0..NUM_PROPS {
        v.prop(&format!("P{i}"));
    }
    v
}

fn build_data(atoms: &[(u8, u8, u8)]) -> DataInstance {
    let mut d = DataInstance::new();
    let cs: Vec<_> = (0..4).map(|i| d.constant(&format!("c{i}"))).collect();
    for &(kind, s, t) in atoms {
        if kind % 2 == 0 {
            d.add_class_atom(ClassId((kind as u32 / 2) % NUM_CLASSES), cs[s as usize % 4]);
        } else {
            d.add_prop_atom(
                PropId((kind as u32 / 2) % NUM_PROPS),
                cs[s as usize % 4],
                cs[t as usize % 4],
            );
        }
    }
    d
}

/// One random clause: which IDB predicate it defines, its EDB atoms, an
/// optional single IDB body atom (kept strictly below the head so the
/// program is nonrecursive *and* linear by construction), and the head
/// projection.
type ClauseSpec = (u8, Vec<(u8, u8, u8)>, bool, u8, u8, u8);

/// Builds a random linear program over `A0..A2`, `P0..P1` with IDB chain
/// `G0, G1, G2` (all binary, `G2` the goal). Every variable appearing in a
/// clause occurs in a predicate atom, so every clause is safe.
fn build_program(specs: &[ClauseSpec]) -> NdlQuery {
    let v = vocab();
    let mut p = Program::new();
    let classes: Vec<_> = (0..NUM_CLASSES).map(|i| p.edb_class(ClassId(i), &v)).collect();
    let props: Vec<_> = (0..NUM_PROPS).map(|i| p.edb_prop(PropId(i), &v)).collect();
    let idbs: Vec<_> = (0..NUM_IDB)
        .map(|i| {
            if i + 1 == NUM_IDB {
                p.add_idb_with_params(format!("G{i}"), 2, 2)
            } else {
                p.add_pred(format!("G{i}"), 2, PredKind::Idb)
            }
        })
        .collect();
    for (head, edb_atoms, use_idb, idb_pick, hv1, hv2) in specs {
        let head_idx = *head as usize % NUM_IDB;
        let mut body = Vec::new();
        let mut used: Vec<u32> = Vec::new();
        let touch = |used: &mut Vec<u32>, v: u8| {
            let v = v as u32 % 4;
            if !used.contains(&v) {
                used.push(v);
            }
            CVar(v)
        };
        for &(kind, v1, v2) in edb_atoms {
            let atom = if kind % 5 < 3 {
                BodyAtom::Pred(classes[(kind % 3) as usize], vec![touch(&mut used, v1)])
            } else {
                BodyAtom::Pred(
                    props[(kind % 2) as usize],
                    vec![touch(&mut used, v1), touch(&mut used, v2)],
                )
            };
            body.push(atom);
        }
        // At most one IDB atom per clause, defined strictly earlier in the
        // chain: nonrecursive and linear by construction.
        if *use_idb && head_idx > 0 {
            let target = idbs[*idb_pick as usize % head_idx];
            body.push(BodyAtom::Pred(target, vec![touch(&mut used, *hv1), touch(&mut used, *hv2)]));
        }
        if body.is_empty() {
            continue;
        }
        // Heads project variables that occur in the body, keeping the
        // clause safe; remap the used variables to a contiguous range.
        used.sort_unstable();
        let remap: Vec<u32> = used.clone();
        let pos = |v: CVar| CVar(remap.iter().position(|&u| u == v.0).unwrap() as u32);
        for atom in &mut body {
            if let BodyAtom::Pred(_, args) = atom {
                for a in args.iter_mut() {
                    *a = pos(*a);
                }
            }
        }
        let h1 = CVar((*hv1 as usize % used.len()) as u32);
        let h2 = CVar((*hv2 as usize % used.len()) as u32);
        p.add_clause(Clause {
            head: idbs[head_idx],
            head_args: vec![h1, h2],
            body,
            num_vars: used.len() as u32,
        });
    }
    NdlQuery::new(p, idbs[NUM_IDB - 1])
}

/// Thread counts exercised by the differential tests: the
/// `OBDA_TEST_THREADS` environment variable (comma-separated, as set by the
/// CI matrix), or `1,2,4` by default.
fn test_threads() -> Vec<usize> {
    match std::env::var("OBDA_TEST_THREADS") {
        Ok(spec) => spec.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// A heavily skewed join column defeats the planner's uniformity
/// assumption — one hub key holds most of `P0`'s rows, so the per-key
/// estimate `rows/distinct` undershoots badly — yet the planned engine
/// still answers exactly like the syntactic order and the reference
/// engine, and the executed explain records the misestimation.
#[test]
fn skewed_columns_misestimate_but_stay_correct() {
    let v = vocab();
    let mut d = DataInstance::new();
    let hub = d.constant("hub");
    let t = d.constant("t");
    // P0 col 0: 10 distinct keys over 50 rows, 41 of them on `hub`.
    for i in 0..41 {
        let s = d.constant(&format!("s{i}"));
        d.add_prop_atom(PropId(0), hub, s);
    }
    for j in 0..9 {
        let k = d.constant(&format!("k{j}"));
        let u = d.constant(&format!("u{j}"));
        d.add_prop_atom(PropId(0), k, u);
    }
    // P1: a single row from the hub, so the plan scans P1 and probes P0
    // on its skewed first column.
    d.add_prop_atom(PropId(1), hub, t);

    let mut p = Program::new();
    let p0 = p.edb_prop(PropId(0), &v);
    let p1 = p.edb_prop(PropId(1), &v);
    let g = p.add_pred("G", 2, PredKind::Idb);
    p.add_clause(Clause {
        head: g,
        head_args: vec![CVar(1), CVar(2)],
        body: vec![
            BodyAtom::Pred(p0, vec![CVar(0), CVar(1)]),
            BodyAtom::Pred(p1, vec![CVar(0), CVar(2)]),
        ],
        num_vars: 3,
    });
    let q = NdlQuery::new(p, g);

    let db = Database::new(&d);
    let opts = EvalOptions::default();
    let reference = evaluate_reference(&q, &d, &opts).unwrap();
    assert_eq!(reference.answers.len(), 41, "all hub spokes join the single P1 row");
    for plan in [false, true] {
        let cfg = EngineConfig { threads: 2, plan, chunk_min_rows: 2, ..EngineConfig::default() };
        let res = evaluate_engine_on(&q, &db, &opts, &cfg).unwrap();
        assert_eq!(res.answers, reference.answers, "plan={plan}");
    }

    let (expl, result) =
        explain_plan_executed(&q, &db, &mut obda_budget::Budget::unlimited()).unwrap();
    assert_eq!(result.answers, reference.answers);
    let clause = &expl.strata[0].clauses[0];
    assert_eq!(clause.order.len(), 2);
    // The probe into the skewed column: estimated ~5 rows per key
    // (50 rows / 10 distinct), actually 41.
    let est = clause.est_rows[1];
    let actual = clause.actual_rows[1];
    assert_eq!(actual, 41);
    assert!(
        (actual as f64) >= 5.0 * est,
        "skew must make the uniform estimate undershoot: est={est}, actual={actual}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, .. ProptestConfig::default() })]

    /// The parallel, goal-directed engine computes exactly the sequential
    /// indexed engine's answers (and thus the reference engine's — see
    /// `indexed_engine_agrees_with_reference`) on random programs, at every
    /// thread count, with and without relevance pruning; per-predicate
    /// statistics stay deterministic across thread counts.
    #[test]
    fn parallel_engine_agrees_with_sequential_and_reference(
        specs in prop::collection::vec(
            (0u8..3, prop::collection::vec((0u8..5, 0u8..4, 0u8..4), 1..4),
             any::<bool>(), 0u8..3, 0u8..4, 0u8..4),
            1..6,
        ),
        atoms in prop::collection::vec((0u8..6, 0u8..4, 0u8..4), 0..10),
    ) {
        let q = build_program(&specs);
        let data = build_data(&atoms);
        let db = Database::new(&data);
        let opts = EvalOptions::default();
        let sequential = evaluate_on(&q, &db, &opts).unwrap();
        let reference = evaluate_reference(&q, &data, &opts).unwrap();
        prop_assert_eq!(&sequential.answers, &reference.answers);
        for prune in [false, true] {
            let mut stats_fingerprint = None;
            for threads in test_threads() {
                let cfg = EngineConfig { threads, prune, chunk_min_rows: 2, ..EngineConfig::default() };
                let res = evaluate_engine_on(&q, &db, &opts, &cfg).unwrap();
                prop_assert_eq!(
                    &res.answers, &sequential.answers,
                    "threads={} prune={}", threads, prune
                );
                if !prune {
                    prop_assert_eq!(&res.stats.per_predicate, &sequential.stats.per_predicate);
                } else {
                    prop_assert!(res.stats.generated_tuples <= sequential.stats.generated_tuples);
                }
                let fp = (res.stats.generated_tuples, res.stats.per_predicate.clone());
                match &stats_fingerprint {
                    None => stats_fingerprint = Some(fp),
                    Some(prev) => prop_assert_eq!(
                        prev, &fp,
                        "stats must not depend on the thread count (prune={})", prune
                    ),
                }
            }
        }
    }

    /// Cost-based join planning is invisible in the results: on random
    /// programs the planned engine, the syntactic-order engine
    /// (`plan: false`) and the reference engine agree at every thread
    /// count, with identical generated-tuple accounting.
    #[test]
    fn planned_and_syntactic_engines_agree_with_reference(
        specs in prop::collection::vec(
            (0u8..3, prop::collection::vec((0u8..5, 0u8..4, 0u8..4), 1..4),
             any::<bool>(), 0u8..3, 0u8..4, 0u8..4),
            1..6,
        ),
        atoms in prop::collection::vec((0u8..6, 0u8..4, 0u8..4), 0..10),
    ) {
        let q = build_program(&specs);
        let data = build_data(&atoms);
        let db = Database::new(&data);
        let opts = EvalOptions::default();
        let reference = evaluate_reference(&q, &data, &opts).unwrap();
        for threads in test_threads() {
            let mut fingerprints = Vec::new();
            for plan in [false, true] {
                let cfg = EngineConfig {
                    threads, plan, chunk_min_rows: 2, ..EngineConfig::default()
                };
                let res = evaluate_engine_on(&q, &db, &opts, &cfg).unwrap();
                prop_assert_eq!(
                    &res.answers, &reference.answers,
                    "threads={} plan={}", threads, plan
                );
                fingerprints.push((res.stats.generated_tuples, res.stats.per_predicate.clone()));
            }
            prop_assert_eq!(
                &fingerprints[0], &fingerprints[1],
                "join order must not change the generated tuples (threads={})", threads
            );
        }
    }

    /// The indexed engine over the shared `Database` computes exactly the
    /// answers of the seed hash-set engine (which re-scans the
    /// `DataInstance` per call) — the refactor preserves semantics.
    #[test]
    fn indexed_engine_agrees_with_reference(
        specs in prop::collection::vec(
            (0u8..3, prop::collection::vec((0u8..5, 0u8..4, 0u8..4), 1..4),
             any::<bool>(), 0u8..3, 0u8..4, 0u8..4),
            1..6,
        ),
        atoms in prop::collection::vec((0u8..6, 0u8..4, 0u8..4), 0..10),
    ) {
        let q = build_program(&specs);
        let data = build_data(&atoms);
        let db = Database::new(&data);
        let opts = EvalOptions::default();
        let indexed = evaluate_on(&q, &db, &opts).unwrap();
        let reference = evaluate_reference(&q, &data, &opts).unwrap();
        prop_assert_eq!(&indexed.answers, &reference.answers);
        prop_assert_eq!(
            indexed.stats.num_answers,
            reference.stats.num_answers
        );
    }

    /// The linear reachability evaluator and bottom-up evaluation agree on
    /// random linear programs, both running over one shared `Database`.
    #[test]
    fn linear_evaluator_agrees_with_bottom_up(
        specs in prop::collection::vec(
            (0u8..3, prop::collection::vec((0u8..5, 0u8..4, 0u8..4), 1..4),
             any::<bool>(), 0u8..3, 0u8..4, 0u8..4),
            1..6,
        ),
        atoms in prop::collection::vec((0u8..6, 0u8..4, 0u8..4), 0..10),
    ) {
        let q = build_program(&specs);
        prop_assert!(is_linear(&q.program), "generator must emit linear programs");
        let data = build_data(&atoms);
        let db = Database::new(&data);
        let before = Database::build_count();
        let opts = EvalOptions::default();
        let bottom_up = evaluate_on(&q, &db, &opts).unwrap();
        let linear = evaluate_linear_on(&q, &db, &opts).unwrap();
        prop_assert_eq!(&bottom_up.answers, &linear.answers);
        prop_assert_eq!(Database::build_count(), before, "no hidden database rebuilds");
    }
}
