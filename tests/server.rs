//! End-to-end tests of the hardened HTTP query server (`obda serve`):
//! real TCP sockets, concurrent multi-tenant traffic, oracle-verified
//! answers, quota shedding, deadline propagation, graceful drain — plus
//! an adversarial run of the compiled binary and, with `--features
//! faults`, a 200+-request soak under injected faults at the
//! `server::handle` site.
//!
//! Invariants pinned here mirror the chaos suite's, lifted to HTTP:
//!
//! 1. **Never a wrong 200** — a `200 OK` body is exactly the chase
//!    oracle's answer set; anything else is a typed HTTP error.
//! 2. **Typed shedding** — tenant quota refusals are `429` with
//!    `Retry-After`; overload is `503`; budget trips are `504`; HTTP
//!    abuse is `400`/`408`/`413`.
//! 3. **The accept loop survives** — after any storm (including injected
//!    panics) `/healthz` still answers `200`.

use obda::budget::BudgetSpec;
use obda::datagen::erdos::TABLE_2;
use obda::owlql::abox::DataInstance;
use obda::server::client::{self, HttpResponse};
use obda::{
    write_snapshot, MemoryBackend, ObdaSystem, OverloadConfig, QueryService, RetryPolicy, Server,
    ServerConfig, ServerHandle, ServiceConfig, TenantQuota,
};
use std::net::SocketAddr;
use std::time::Duration;

/// The Example 11 ontology (`P ⊑ S`, `P ⊑ R⁻`) as text, identical to
/// `obda::datagen::sequences::example_11_ontology()`.
const ONTOLOGY: &str = "P SubPropertyOf S\nP SubPropertyOf R-\n";

/// Small enough that the chase oracle answers in milliseconds.
const SCALE: f64 = 0.003;

const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// The linear CQ for a word over `{R, S}` as parseable text (the textual
/// twin of `obda::datagen::sequences::word_query`).
fn word_query_text(word: &str) -> String {
    let n = word.len();
    let atoms: Vec<String> =
        word.chars().enumerate().map(|(i, c)| format!("{c}(x{i}, x{})", i + 1)).collect();
    format!("q(x0, x{n}) :- {}", atoms.join(", "))
}

fn paper_system() -> ObdaSystem {
    ObdaSystem::from_text(ONTOLOGY).unwrap()
}

fn table2_data(sys: &ObdaSystem, idx: usize, scale: f64) -> DataInstance {
    TABLE_2[idx].scaled(scale).generate(sys.ontology())
}

/// The chase-certain answers rendered exactly as the server renders a
/// `200` body, sorted for set comparison.
fn oracle_lines(sys: &ObdaSystem, data: &DataInstance, query_text: &str) -> Vec<String> {
    let q = sys.parse_query(query_text).unwrap();
    let mut lines: Vec<String> = sys
        .certain_answers(&q, data)
        .tuples()
        .iter()
        .map(|t| {
            let names: Vec<&str> = t.iter().map(|&c| data.constant_name(c)).collect();
            format!("({})", names.join(", "))
        })
        .collect();
    lines.sort();
    lines
}

fn body_lines(resp: &HttpResponse) -> Vec<String> {
    let mut lines: Vec<String> = resp.body.lines().map(str::to_owned).collect();
    lines.sort();
    lines
}

/// Boots an in-process server over a scaled Table-2 dataset, applying
/// `tweak` to the config and registering `quotas` before serving.
fn start_server(
    scale: f64,
    tweak: impl FnOnce(&mut ServerConfig),
    quotas: &[(&str, TenantQuota)],
) -> (ServerHandle, ObdaSystem, DataInstance) {
    let sys = paper_system();
    let data = table2_data(&sys, 0, scale);
    let service = QueryService::new(
        paper_system(),
        ServiceConfig {
            max_concurrency: 2,
            max_queue: 8,
            budget: BudgetSpec::unlimited(),
            retry: RetryPolicy {
                max_retries: 2,
                base_backoff: Duration::from_micros(50),
                max_backoff: Duration::from_millis(1),
                seed: 0x0bda_5eed,
            },
            engine: None,
            overload: OverloadConfig::default(),
        },
    );
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_secs(5),
        ..ServerConfig::default()
    };
    tweak(&mut cfg);
    let server = Server::bind(service, Box::new(MemoryBackend::new(data.clone())), cfg).unwrap();
    for (tenant, quota) in quotas {
        server.governor().set_quota(tenant, *quota);
    }
    (server.start(), sys, data)
}

fn post_query(addr: SocketAddr, tenant: &str, query: &str) -> HttpResponse {
    client::request(addr, "POST", "/query", &[("X-Obda-Tenant", tenant)], query, CLIENT_TIMEOUT)
        .unwrap()
}

fn get(addr: SocketAddr, path: &str) -> HttpResponse {
    client::request(addr, "GET", path, &[], "", CLIENT_TIMEOUT).unwrap()
}

// ---------------------------------------------------------------------------
// Routing, health and HTTP abuse
// ---------------------------------------------------------------------------

#[test]
fn health_routing_and_http_abuse_are_typed() {
    let (handle, _, _) = start_server(SCALE, |cfg| cfg.max_body_bytes = 256, &[]);
    let addr = handle.addr();

    assert_eq!(get(addr, "/healthz").status, 200);
    assert_eq!(get(addr, "/readyz").status, 200);
    assert_eq!(get(addr, "/nope").status, 404);
    // Known route, wrong method.
    assert_eq!(get(addr, "/query").status, 405);
    assert_eq!(
        client::request(addr, "POST", "/metrics", &[], "", CLIENT_TIMEOUT).unwrap().status,
        405
    );

    // Typed request rejections: empty body, bad strategy, bad timeout,
    // non-UTF-8-free oversized body.
    assert_eq!(post_query(addr, "t", "").status, 400);
    let bad_strategy = client::request(
        addr,
        "POST",
        "/query",
        &[("X-Obda-Strategy", "nonsense")],
        "q(x) :- S(x, y)",
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(bad_strategy.status, 400);
    let bad_timeout = client::request(
        addr,
        "POST",
        "/query",
        &[("X-Obda-Timeout-Ms", "never")],
        "q(x) :- S(x, y)",
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(bad_timeout.status, 400);
    let oversized = post_query(addr, "t", &"R(x, y), ".repeat(100));
    assert_eq!(oversized.status, 413);
    // A query that fails to parse is a 400, not a 500.
    assert_eq!(post_query(addr, "t", "this is not a query").status, 400);

    // After all that abuse the server still answers.
    assert_eq!(get(addr, "/healthz").status, 200);
    handle.trigger().shutdown();
    assert!(handle.join());
}

#[test]
fn metrics_explain_and_cache_are_observable() {
    let (handle, _, _) = start_server(SCALE, |_| {}, &[]);
    let addr = handle.addr();
    let query = word_query_text("RS");

    // Twice the same OMQ: the second request must hit the prepared cache.
    assert_eq!(post_query(addr, "alpha", &query).status, 200);
    assert_eq!(post_query(addr, "alpha", &query).status, 200);

    let metrics = get(addr, "/metrics");
    assert_eq!(metrics.status, 200);
    for needle in [
        "server_requests_total",
        "server_requests_total_alpha",
        "server_cache_hits_total",
        "server_cache_misses_total",
        "server_latency_seconds",
    ] {
        assert!(metrics.body.contains(needle), "metrics exposition lacks {needle}");
    }

    let explain = get(addr, &format!("/explain?query={}", percent_encode(&query)));
    assert_eq!(explain.status, 200, "explain failed: {}", explain.body);
    assert!(explain.body.contains("strategy:"), "unexpected explain body: {}", explain.body);
    assert!(explain.body.contains("memory"), "explain should name the backend kind");
    assert_eq!(get(addr, "/explain").status, 400, "missing ?query= must be typed");

    handle.trigger().shutdown();
    assert!(handle.join());
}

#[test]
fn explain_surfaces_cached_join_plan() {
    let (handle, _, _) = start_server(SCALE, |_| {}, &[]);
    let addr = handle.addr();
    let query = word_query_text("RS");
    let path = format!("/explain?query={}", percent_encode(&query));

    // The first /explain costs the join plan against the served database.
    let first = get(addr, &path);
    assert_eq!(first.status, 200, "explain failed: {}", first.body);
    assert!(first.body.contains("plans built: 1"), "body: {}", first.body);
    assert!(
        first.body.contains("est\u{2248}"),
        "plan steps must carry cardinality estimates: {}",
        first.body
    );
    assert!(first.body.contains("stratum"), "body: {}", first.body);

    // Answering the same OMQ and explaining again reuse the cached
    // PreparedOmq *and* its per-database plan: the miss count stays 1.
    assert_eq!(post_query(addr, "t", &query).status, 200);
    let second = get(addr, &path);
    assert_eq!(second.status, 200);
    assert!(
        second.body.contains("plans built: 1"),
        "the plan must be computed once and reused: {}",
        second.body
    );

    handle.trigger().shutdown();
    assert!(handle.join());
}

/// Minimal percent-encoding for test URLs (everything non-alphanumeric).
fn percent_encode(s: &str) -> String {
    s.bytes()
        .map(
            |b| {
                if b.is_ascii_alphanumeric() {
                    (b as char).to_string()
                } else {
                    format!("%{b:02X}")
                }
            },
        )
        .collect()
}

// ---------------------------------------------------------------------------
// Oracle-verified answers across tenants
// ---------------------------------------------------------------------------

#[test]
fn concurrent_tenants_get_oracle_answers() {
    let (handle, sys, data) = start_server(SCALE, |_| {}, &[]);
    let addr = handle.addr();
    let words = ["R", "S", "RR", "SR", "RRS"];
    let expected: Vec<Vec<String>> =
        words.iter().map(|w| oracle_lines(&sys, &data, &word_query_text(w))).collect();

    let threads: Vec<_> = ["alice", "bob", "carol"]
        .into_iter()
        .map(|tenant| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                for (word, want) in words.iter().zip(&expected) {
                    let resp = post_query(addr, tenant, &word_query_text(word));
                    assert_eq!(resp.status, 200, "{tenant}/{word}: {}", resp.body);
                    assert_eq!(&body_lines(&resp), want, "{tenant}/{word} answers differ");
                    let count: usize = resp.header("x-obda-answers").unwrap().parse().unwrap();
                    assert_eq!(count, want.len());
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    handle.trigger().shutdown();
    assert!(handle.join());
}

// ---------------------------------------------------------------------------
// Tenant quotas and deadline propagation
// ---------------------------------------------------------------------------

#[test]
fn quota_starved_tenant_is_shed_while_others_answer() {
    let starved = TenantQuota { rate_per_sec: 0.001, burst: 1.0, max_concurrency: 8 };
    let (handle, sys, data) = start_server(SCALE, |_| {}, &[("starved", starved)]);
    let addr = handle.addr();
    let query = word_query_text("R");
    let want = oracle_lines(&sys, &data, &query);

    // One token in the bucket: the first request answers, the second is
    // shed with a Retry-After reflecting the (glacial) refill rate.
    let first = post_query(addr, "starved", &query);
    assert_eq!(first.status, 200);
    assert_eq!(body_lines(&first), want);
    let second = post_query(addr, "starved", &query);
    assert_eq!(second.status, 429, "expected quota shed: {}", second.body);
    let retry_after: u64 = second.header("retry-after").unwrap().parse().unwrap();
    assert!(retry_after >= 1);
    assert!(second.body.contains("starved"), "429 body should name the tenant");

    // Other tenants are unaffected — including after the starved 429s.
    for _ in 0..3 {
        let resp = post_query(addr, "patient", &query);
        assert_eq!(resp.status, 200);
        assert_eq!(body_lines(&resp), want);
    }
    let metrics = get(addr, "/metrics").body;
    assert!(metrics.contains("server_rejected_quota_total_starved"));

    handle.trigger().shutdown();
    assert!(handle.join());
}

#[test]
fn client_deadline_is_clamped_and_propagated() {
    // A 1 ms deadline on a fresh (uncached) query must trip the budget
    // inside the pipeline and come back as a 504, not hang or 200.
    let (handle, _, _) = start_server(SCALE, |_| {}, &[]);
    let addr = handle.addr();
    let resp = client::request(
        addr,
        "POST",
        "/query",
        &[("X-Obda-Timeout-Ms", "1")],
        &word_query_text("RRSRRSRR"),
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 504, "expected a budget trip: {}", resp.body);

    // A generous client deadline is clamped by the server ceiling, not
    // trusted: the request still answers fine.
    let resp = client::request(
        addr,
        "POST",
        "/query",
        &[("X-Obda-Timeout-Ms", "999999999")],
        &word_query_text("R"),
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(resp.status, 200);

    handle.trigger().shutdown();
    assert!(handle.join());
}

// ---------------------------------------------------------------------------
// Graceful drain
// ---------------------------------------------------------------------------

#[test]
fn drain_flips_readyz_refuses_new_work_and_finishes() {
    let (handle, sys, data) = start_server(SCALE, |_| {}, &[]);
    let addr = handle.addr();
    let query = word_query_text("RR");
    let want = oracle_lines(&sys, &data, &query);

    // Admitted-before-drain work completes with the oracle answer even
    // when the drain begins while it is in flight.
    let inflight = std::thread::spawn(move || post_query(addr, "steady", &query));
    std::thread::sleep(Duration::from_millis(5));
    handle.trigger().shutdown();
    assert!(handle.is_draining());

    // During the drain the accept loop still serves health/readiness —
    // readiness now refusing — and sheds new queries with a typed 503.
    let ready = get(addr, "/readyz");
    assert_eq!(ready.status, 503);
    assert!(ready.header("retry-after").is_some());
    assert_eq!(get(addr, "/healthz").status, 200);
    let shed = post_query(addr, "latecomer", &word_query_text("R"));
    assert_eq!(shed.status, 503, "post-drain query must be shed: {}", shed.body);

    let resp = inflight.join().unwrap();
    assert!(
        resp.status == 200 || resp.status == 503,
        "in-flight request must complete or be shed, got {}",
        resp.status
    );
    if resp.status == 200 {
        assert_eq!(body_lines(&resp), want);
    }
    assert!(handle.join(), "drain must finish inside its timeout");
}

#[test]
fn shutdown_endpoint_triggers_the_drain() {
    let (handle, _, _) = start_server(SCALE, |_| {}, &[]);
    let addr = handle.addr();
    let resp = client::request(addr, "POST", "/shutdown", &[], "", CLIENT_TIMEOUT).unwrap();
    assert_eq!(resp.status, 202);
    assert!(handle.is_draining());
    assert!(handle.join());
}

#[test]
fn concurrent_shutdown_requests_drain_exactly_once() {
    let (handle, sys, data) = start_server(SCALE, |_| {}, &[]);
    let addr = handle.addr();
    let query = word_query_text("RS");
    let want = oracle_lines(&sys, &data, &query);
    assert_eq!(get(addr, "/readyz").status, 200);

    // A request in flight while two shutdown triggers race.
    let inflight = std::thread::spawn(move || post_query(addr, "steady", &query));
    std::thread::sleep(Duration::from_millis(5));
    let shutdowns: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                client::request(addr, "POST", "/shutdown", &[], "", CLIENT_TIMEOUT).unwrap()
            })
        })
        .collect();
    for t in shutdowns {
        // The trigger is idempotent: both racers are accepted.
        assert_eq!(t.join().unwrap().status, 202);
    }
    assert!(handle.is_draining());

    // Readiness has flipped exactly once — it refuses now and keeps
    // refusing; liveness is unaffected; the metrics counter shows both
    // triggers were seen while the drain began only once.
    assert_eq!(get(addr, "/readyz").status, 503);
    assert_eq!(get(addr, "/healthz").status, 200);
    assert_eq!(get(addr, "/readyz").status, 503);
    let metrics = get(addr, "/metrics").body;
    assert!(
        metrics.contains("server_shutdown_requests_total 2"),
        "both shutdown requests must be counted: {metrics}"
    );

    // The in-flight request still completes correctly (or is shed typed).
    let resp = inflight.join().unwrap();
    assert!(resp.status == 200 || resp.status == 503, "got {}", resp.status);
    if resp.status == 200 {
        assert_eq!(body_lines(&resp), want);
    }
    // One clean drain; `join` consumes the handle, so a double-join
    // cannot even compile.
    assert!(handle.join(), "concurrent triggers must still drain cleanly");
}

// ---------------------------------------------------------------------------
// Overload control over HTTP: tenant breakers and brownout
// ---------------------------------------------------------------------------

#[test]
fn tenant_circuit_breaker_isolates_the_abusive_tenant() {
    use obda::BreakerConfig;
    // Every query trips the budget on its first derived tuple, and one
    // failure inside the window opens a tenant's breaker.
    let (handle, _, _) = start_server(
        SCALE,
        |cfg| {
            cfg.budget = BudgetSpec { max_tuples: Some(0), ..BudgetSpec::unlimited() };
            cfg.tenant_breaker = Some(BreakerConfig {
                window: 2,
                threshold: 1,
                cooldown: Duration::from_secs(60),
                probes: 1,
                seed: 7,
            });
        },
        &[],
    );
    let addr = handle.addr();
    let query = word_query_text("RS");

    // greedy's first request burns its budget: a typed 504.
    assert_eq!(post_query(addr, "greedy", &query).status, 504);
    // Its breaker is open now: the next request fails fast with 503 and
    // a jittered Retry-After, without burning anything.
    let refused = post_query(addr, "greedy", &query);
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert!(refused.header("retry-after").is_some());
    assert!(refused.body.contains("circuit breaker"), "{}", refused.body);
    // Breakers are per tenant: alpha's first request reaches evaluation
    // (and trips the shared budget as a 504) instead of being refused.
    assert_eq!(post_query(addr, "alpha", &query).status, 504);

    let metrics = get(addr, "/metrics").body;
    assert!(metrics.contains("server_tenant_breaker_rejected_total_greedy 1"), "{metrics}");
    assert!(metrics.contains("server_tenant_breaker_opened_total_greedy 1"), "{metrics}");
    handle.trigger().shutdown();
    assert!(handle.join());
}

#[test]
fn brownout_stamps_forces_and_sheds_over_http() {
    use obda::BrownoutConfig;
    // A zero watermark (and zero exit factor) enters brownout on the
    // first served request and pins it — deterministic degradation.
    let sys = paper_system();
    let data = table2_data(&sys, 0, SCALE);
    let service = QueryService::new(
        paper_system(),
        ServiceConfig {
            max_concurrency: 2,
            max_queue: 8,
            budget: BudgetSpec::unlimited(),
            retry: RetryPolicy::default(),
            engine: None,
            overload: OverloadConfig {
                brownout: Some(BrownoutConfig {
                    queue_high: Duration::ZERO,
                    exit_factor: 0.0,
                    budget_factor: 1.0,
                    alpha: 1.0,
                }),
                ..OverloadConfig::default()
            },
        },
    );
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        max_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_secs(5),
        shed_priority_below: 1,
        ..ServerConfig::default()
    };
    let server = Server::bind(service, Box::new(MemoryBackend::new(data.clone())), cfg).unwrap();
    server.governor().set_priority("lowly", 0);
    let handle = server.start();
    let addr = handle.addr();
    let query = word_query_text("RS");
    let want = oracle_lines(&sys, &data, &query);

    // The first request serves normally and tips the latch.
    let first = post_query(addr, "alpha", &query);
    assert_eq!(first.status, 200);
    // From now on every response is stamped degraded; answers stay
    // oracle-correct.
    let second = post_query(addr, "alpha", &query);
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-obda-degraded"), Some("1"));
    assert_eq!(body_lines(&second), want);
    // Exponential strategies are forced down to the polynomial one.
    let forced = client::request(
        addr,
        "POST",
        "/query",
        &[("X-Obda-Tenant", "alpha"), ("X-Obda-Strategy", "ucq")],
        &query,
        CLIENT_TIMEOUT,
    )
    .unwrap();
    assert_eq!(forced.status, 200);
    assert_eq!(forced.header("x-obda-strategy"), Some("Tw"));
    // The lowest-priority tenant is shed before spending any budget.
    let shed = post_query(addr, "lowly", &query);
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert_eq!(shed.header("x-obda-degraded"), Some("1"));
    assert!(shed.header("retry-after").is_some());
    assert!(shed.body.contains("shedding"), "{}", shed.body);

    let metrics = get(addr, "/metrics").body;
    assert!(metrics.contains("service_brownout_entered_total 1"), "{metrics}");
    assert!(metrics.contains("server_brownout_forced_total 1"), "{metrics}");
    assert!(metrics.contains("server_shed_total_lowly 1"), "{metrics}");
    handle.trigger().shutdown();
    assert!(handle.join());
}

// ---------------------------------------------------------------------------
// Soak: sustained three-tenant traffic (hot, quota-starved, well-behaved)
// ---------------------------------------------------------------------------

/// Issues `rounds` requests as `tenant` and asserts every response obeys
/// the soak invariant: oracle-correct 200 or a typed error — never a
/// wrong answer, never an untyped failure. Returns (ok, shed) counts.
fn soak_tenant(
    addr: SocketAddr,
    tenant: &str,
    rounds: usize,
    pause: Duration,
    expected: &[(String, Vec<String>)],
) -> (usize, usize) {
    let mut ok = 0;
    let mut shed = 0;
    for i in 0..rounds {
        let (query, want) = &expected[i % expected.len()];
        let resp = post_query(addr, tenant, query);
        match resp.status {
            200 => {
                assert_eq!(&body_lines(&resp), want, "{tenant}: wrong 200 body");
                ok += 1;
            }
            429 => {
                assert!(resp.header("retry-after").is_some(), "429 without Retry-After");
                shed += 1;
            }
            500 | 503 | 504 => {
                assert!(resp.body.starts_with("error:"), "untyped error body: {}", resp.body);
                shed += 1;
            }
            other => panic!("{tenant}: unexpected status {other}: {}", resp.body),
        }
        if !pause.is_zero() {
            std::thread::sleep(pause);
        }
    }
    (ok, shed)
}

#[test]
fn soak_three_tenant_traffic_stays_sound() {
    let starved = TenantQuota { rate_per_sec: 5.0, burst: 3.0, max_concurrency: 2 };
    let (handle, sys, data) = start_server(SCALE, |_| {}, &[("starved", starved)]);
    let addr = handle.addr();
    let expected: Vec<(String, Vec<String>)> = ["R", "S", "RR", "SR"]
        .iter()
        .map(|w| {
            let q = word_query_text(w);
            let want = oracle_lines(&sys, &data, &q);
            (q, want)
        })
        .collect();

    // ≥200 requests across the three profiles, concurrently.
    let hot = {
        let expected = expected.clone();
        std::thread::spawn(move || soak_tenant(addr, "hot", 100, Duration::ZERO, &expected))
    };
    let starved = {
        let expected = expected.clone();
        std::thread::spawn(move || soak_tenant(addr, "starved", 60, Duration::ZERO, &expected))
    };
    let steady = {
        let expected = expected.clone();
        std::thread::spawn(move || {
            soak_tenant(addr, "steady", 60, Duration::from_millis(2), &expected)
        })
    };

    let (hot_ok, _) = hot.join().unwrap();
    let (starved_ok, starved_shed) = starved.join().unwrap();
    let (steady_ok, steady_shed) = steady.join().unwrap();

    // The unthrottled tenants are never starved by the starved tenant's
    // shedding; the starved tenant is genuinely throttled but not dead.
    assert_eq!(hot_ok, 100, "hot tenant should complete every request");
    assert_eq!(steady_ok + steady_shed, 60);
    assert!(starved_ok >= 1, "burst admits at least the first request");
    assert!(starved_shed >= 1, "a 5 rps bucket cannot absorb 60 back-to-back requests");

    // The accept loop survived the storm.
    assert_eq!(get(addr, "/healthz").status, 200);
    handle.trigger().shutdown();
    assert!(handle.join());
}

// ---------------------------------------------------------------------------
// Faulted soak (requires `--features faults`): injected transients and
// panics at the `server::handle` site.
// ---------------------------------------------------------------------------

#[cfg(feature = "faults")]
mod faulted {
    use super::*;
    use obda::faults::{site, FaultKind, FaultPlan, FaultSpec, Trigger};
    use std::sync::Once;

    /// Routes injected-fault panics to silence (they are the *point* of
    /// this suite) while forwarding genuine panics to the previous hook.
    fn quiet_injected_panics() {
        static QUIET: Once = Once::new();
        QUIET.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                let p = info.payload();
                let injected = p.downcast_ref::<obda::faults::FaultError>().is_some()
                    || p.downcast_ref::<String>()
                        .is_some_and(|s| s.starts_with("injected panic at"));
                if !injected {
                    prev(info);
                }
            }));
        });
    }

    #[test]
    fn soak_under_injected_faults_never_lies_and_never_dies() {
        quiet_injected_panics();
        let starved = TenantQuota { rate_per_sec: 10.0, burst: 3.0, max_concurrency: 2 };
        let (handle, sys, data) = start_server(SCALE, |_| {}, &[("starved", starved)]);
        let addr = handle.addr();
        let expected: Vec<(String, Vec<String>)> = ["R", "S", "RR"]
            .iter()
            .map(|w| {
                let q = word_query_text(w);
                let want = oracle_lines(&sys, &data, &q);
                (q, want)
            })
            .collect();

        // Phase 1: a transient fault every 5th handled request.
        {
            let _guard = FaultPlan::new(0xfeed)
                .with(
                    site::SERVER_HANDLE,
                    FaultSpec { kind: FaultKind::Transient, trigger: Trigger::EveryNth(5) },
                )
                .install();
            let threads: Vec<_> = ["hot", "starved", "steady"]
                .into_iter()
                .map(|tenant| {
                    let expected = expected.clone();
                    std::thread::spawn(move || {
                        soak_tenant(addr, tenant, 40, Duration::ZERO, &expected)
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
        }

        // Phase 2: an injected panic every 7th handled request.
        {
            let _guard = FaultPlan::new(0xdead)
                .with(
                    site::SERVER_HANDLE,
                    FaultSpec { kind: FaultKind::Panic, trigger: Trigger::EveryNth(7) },
                )
                .install();
            let threads: Vec<_> = ["hot", "steady"]
                .into_iter()
                .map(|tenant| {
                    let expected = expected.clone();
                    std::thread::spawn(move || {
                        soak_tenant(addr, tenant, 40, Duration::ZERO, &expected)
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
        }

        // Faults disarmed: the accept loop is alive and answers are
        // exact again — no residual poisoning.
        assert_eq!(get(addr, "/healthz").status, 200);
        let (query, want) = &expected[0];
        let resp = post_query(addr, "after", query);
        assert_eq!(resp.status, 200, "post-fault request failed: {}", resp.body);
        assert_eq!(&body_lines(&resp), want);

        handle.trigger().shutdown();
        assert!(handle.join());
    }
}

// ---------------------------------------------------------------------------
// The compiled binary, end to end: snapshot-backed Table-2 dataset,
// concurrent tenants, quota shedding, drain on stdin, exit 0.
// ---------------------------------------------------------------------------

#[test]
fn serve_binary_end_to_end() {
    use std::io::{BufRead, BufReader, Write};
    use std::process::{Command, Stdio};

    let tag = std::process::id();
    let dir = std::env::temp_dir();
    let ontology_path = dir.join(format!("obda-serve-{tag}.owlql"));
    let db_path = dir.join(format!("obda-serve-{tag}.obdb"));
    std::fs::write(&ontology_path, ONTOLOGY).unwrap();
    let sys = paper_system();
    let data = table2_data(&sys, 0, SCALE);
    write_snapshot(&db_path, sys.ontology().vocab(), &data).unwrap();

    // A default tenant quota small enough that a greedy tenant is shed:
    // 2 rps with a burst of 3 tokens, each tenant with its own bucket.
    let mut child = Command::new(env!("CARGO_BIN_EXE_obda"))
        .args([
            "serve",
            "--ontology",
            ontology_path.to_str().unwrap(),
            "--db",
            db_path.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--quota-rate",
            "2",
            "--quota-burst",
            "3",
            "--drain-secs",
            "8",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();

    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr: SocketAddr = line
        .trim()
        .strip_prefix("listening on http://")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .parse()
        .unwrap();

    let expected: Vec<(String, Vec<String>)> = ["R", "RR"]
        .iter()
        .map(|w| {
            let q = word_query_text(w);
            let want = oracle_lines(&sys, &data, &q);
            (q, want)
        })
        .collect();

    // Concurrent tenants: greedy hammers (bucket: 3 tokens, 2 rps) and
    // must see at least one 200 and at least one 429; the two polite
    // tenants see only oracle-correct 200s.
    let greedy = {
        let expected = expected.clone();
        std::thread::spawn(move || soak_tenant(addr, "greedy", 12, Duration::ZERO, &expected))
    };
    let polite: Vec<_> = ["alice", "bob"]
        .into_iter()
        .map(|tenant| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                for (query, want) in &expected {
                    let resp = post_query(addr, tenant, query);
                    assert_eq!(resp.status, 200, "{tenant}: {}", resp.body);
                    assert_eq!(&body_lines(&resp), want);
                }
            })
        })
        .collect();
    let (greedy_ok, greedy_shed) = greedy.join().unwrap();
    assert!(greedy_ok >= 1, "the burst admits the first greedy requests");
    assert!(greedy_shed >= 1, "12 back-to-back requests must overrun a 3-token bucket");
    for t in polite {
        t.join().unwrap();
    }

    // Hold a connection open (a slow-loris that will be shed by the read
    // timeout) so the drain window is observable, then ask for shutdown
    // on stdin. During the drain: readyz 503, healthz 200, new queries
    // shed — the accept loop must still be serving.
    let loris = std::net::TcpStream::connect(addr).unwrap();
    child.stdin.take().unwrap().write_all(b"shutdown\n").unwrap();
    std::thread::sleep(Duration::from_millis(150));
    let ready = get(addr, "/readyz");
    assert_eq!(ready.status, 503, "draining server must fail readiness");
    assert_eq!(get(addr, "/healthz").status, 200);
    let shed = post_query(addr, "late", &expected[0].0);
    assert_eq!(shed.status, 503, "late query must be shed: {}", shed.body);
    drop(loris);

    let status = child.wait().unwrap();
    assert!(status.success(), "serve must exit 0 after a clean drain, got {status:?}");
    let mut stderr = String::new();
    std::io::Read::read_to_string(&mut child.stderr.take().unwrap(), &mut stderr).unwrap();
    assert!(stderr.contains("drained cleanly"), "stderr: {stderr}");

    std::fs::remove_file(&ontology_path).ok();
    std::fs::remove_file(&db_path).ok();
}
