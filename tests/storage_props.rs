//! Property test for the full OBDA pipeline over the shared storage layer:
//! for random ontologies, data and chain queries, every strategy's
//! [`PreparedOmq`] executed on one shared [`Database`] returns exactly the
//! chase oracle's certain answers.

use obda::ndl::storage::Database;
use obda::{ObdaSystem, Strategy};
use proptest::prelude::*;

const NUM_CLASSES: u8 = 3;
const NUM_PROPS: u8 = 2;

/// Renders a random ontology: fixed declarations plus random inclusions of
/// the three OWL 2 QL shapes `A ⊑ B`, `A ⊑ ∃R`, `∃R ⊑ B`.
fn ontology_text(specs: &[(u8, u8, u8, bool)]) -> String {
    let mut text = String::new();
    for i in 0..NUM_CLASSES {
        text.push_str(&format!("Class A{i}\n"));
    }
    for i in 0..NUM_PROPS {
        text.push_str(&format!("Property P{i}\n"));
    }
    for &(kind, a, b, flip) in specs {
        let ca = a % NUM_CLASSES;
        let cb = b % NUM_CLASSES;
        let role = format!("P{}{}", b % NUM_PROPS, if flip { "-" } else { "" });
        match kind % 3 {
            0 => text.push_str(&format!("A{ca} SubClassOf A{cb}\n")),
            1 => text.push_str(&format!("A{ca} SubClassOf exists {role}\n")),
            _ => text.push_str(&format!("exists {role} SubClassOf A{cb}\n")),
        }
    }
    text
}

fn data_text(atoms: &[(u8, u8, u8)]) -> String {
    let mut text = String::new();
    for &(kind, s, t) in atoms {
        if kind % 2 == 0 {
            text.push_str(&format!("A{}(c{})\n", (kind / 2) % NUM_CLASSES, s % 4));
        } else {
            text.push_str(&format!("P{}(c{}, c{})\n", (kind / 2) % NUM_PROPS, s % 4, t % 4));
        }
    }
    // Ensure at least one atom so the instance is non-degenerate.
    if text.is_empty() {
        text.push_str("A0(c0)\n");
    }
    text
}

/// A chain query `q(x0, xn) :- P(x0, x1), ..., P(x{n-1}, xn), [A(xm)]`.
fn query_text(props: &[u8], class_atom: Option<(u8, u8)>, binary: bool) -> String {
    let n = props.len();
    let mut atoms: Vec<String> = props
        .iter()
        .enumerate()
        .map(|(i, p)| format!("P{}(x{}, x{})", p % NUM_PROPS, i, i + 1))
        .collect();
    if let Some((c, at)) = class_atom {
        atoms.push(format!("A{}(x{})", c % NUM_CLASSES, at as usize % (n + 1)));
    }
    let head = if binary { format!("q(x0, x{n})") } else { "q(x0)".to_owned() };
    format!("{head} :- {}", atoms.join(", "))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Every strategy that produces a rewriting computes the oracle's
    /// certain answers when executed over a single shared `Database`.
    #[test]
    fn prepared_strategies_match_chase_oracle(
        axioms in prop::collection::vec((0u8..3, any::<u8>(), any::<u8>(), any::<bool>()), 0..5),
        atoms in prop::collection::vec((0u8..6, 0u8..4, 0u8..4), 1..8),
        props in prop::collection::vec(any::<u8>(), 1..4),
        class_atom in (any::<bool>(), any::<u8>(), any::<u8>()),
        binary in any::<bool>(),
    ) {
        let sys = ObdaSystem::from_text(&ontology_text(&axioms)).unwrap();
        let data = sys.parse_data(&data_text(&atoms)).unwrap();
        let class_atom = class_atom.0.then_some((class_atom.1, class_atom.2));
        let q = sys.parse_query(&query_text(&props, class_atom, binary)).unwrap();
        let oracle = sys.certain_answers(&q, &data).tuples();

        let db = Database::new(&data);
        let before = Database::build_count();
        for strategy in Strategy::ALL {
            let Ok(prepared) = sys.prepare(&q, strategy) else { continue };
            let res = prepared.execute(&db, &Default::default()).unwrap();
            prop_assert_eq!(&res.answers, &oracle, "strategy {}", strategy);
            if prepared.analysis().linear {
                let lin = prepared.execute_linear(&db, &Default::default()).unwrap();
                prop_assert_eq!(&lin.answers, &oracle, "linear engine, strategy {}", strategy);
            }
        }
        prop_assert_eq!(Database::build_count(), before, "database built once per instance");
    }
}
