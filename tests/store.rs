//! Differential tests for the snapshot store: an `.obdb`-backed
//! [`StorageBackend`] must be answer-for-answer indistinguishable from
//! the in-memory parse path, and both must match the chase oracle — on
//! the paper's own Table-2 workload (Appendix D.2), scaled down so the
//! oracle stays cheap.
//!
//! The chain pinned here is `snapshot ≡ memory ≡ oracle`, closed over
//! every Table-2 dataset, the fallback ladder, the parallel engine and
//! the query service.

use obda::budget::BudgetSpec;
use obda::datagen::erdos::TABLE_2;
use obda::datagen::sequences::{example_11_ontology, word_query};
use obda::ndl::engine::EngineConfig;
use obda::owlql::abox::{ConstId, DataInstance};
use obda::{
    append_snapshot, read_info, write_snapshot, write_snapshot_footer, MemoryBackend, ObdaSystem,
    QueryService, ServiceConfig, Snapshot, StorageBackend, Strategy,
};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Small enough that the chase oracle answers in milliseconds, large
/// enough that every dataset has edges, markers and nonempty answers.
const SCALE: f64 = 0.003;

/// Query words over `{R, S}`: the shortest prefixes of Sequence 1 plus
/// two `S`-leading words, so both the concrete `R`-part and the
/// anonymous-witness `S`-part of the rewriting are exercised.
const WORDS: [&str; 5] = ["R", "S", "RR", "SR", "RRS"];

fn temp_path() -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "obda-store-diff-{}-{}.obdb",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn paper_system() -> ObdaSystem {
    ObdaSystem::new(example_11_ontology())
}

fn table2_dataset(sys: &ObdaSystem, idx: usize) -> DataInstance {
    TABLE_2[idx].scaled(SCALE).generate(sys.ontology())
}

/// Writes `data` to a fresh temp snapshot and reopens it.
fn snapshot_of(sys: &ObdaSystem, data: &DataInstance) -> Snapshot {
    let path = temp_path();
    write_snapshot(&path, sys.ontology().vocab(), data).unwrap();
    let snap = Snapshot::open(&path, sys.ontology().vocab()).unwrap();
    std::fs::remove_file(&path).ok();
    snap
}

/// The tentpole differential: on every Table-2 dataset and every query
/// word, the snapshot-backed ladder, the parse-backed ladder and the
/// chase oracle produce identical answer sets.
#[test]
fn table2_snapshot_memory_and_oracle_agree() {
    let sys = paper_system();
    let spec = BudgetSpec::unlimited();
    for idx in 0..TABLE_2.len() {
        let data = table2_dataset(&sys, idx);
        assert!(data.num_atoms() > 0, "dataset {idx} is empty at scale {SCALE}");
        let snap = snapshot_of(&sys, &data);
        for word in WORDS {
            let q = word_query(sys.ontology(), word);
            let oracle = sys.certain_answers(&q, &data).tuples();
            let memory = sys.answer_with_fallback(&q, &data, Strategy::Tw, &spec);
            let backed = sys.answer_with_fallback_backend(&q, &snap, Strategy::Tw, &spec);
            assert_eq!(
                memory.result().map(|r| &r.answers),
                Some(&oracle),
                "dataset {idx} word {word}: parse path vs oracle"
            );
            assert_eq!(
                backed.result().map(|r| &r.answers),
                Some(&oracle),
                "dataset {idx} word {word}: snapshot path vs oracle"
            );
        }
    }
}

/// The parallel engine runs the same hot path on a snapshot database as
/// on a parsed one: identical answers at one and four threads.
#[test]
fn parallel_engine_on_snapshot_matches_oracle() {
    let sys = paper_system();
    let spec = BudgetSpec::unlimited();
    let data = table2_dataset(&sys, 0);
    let snap = snapshot_of(&sys, &data);
    for word in WORDS {
        let q = word_query(sys.ontology(), word);
        let oracle = sys.certain_answers(&q, &data).tuples();
        for threads in [1usize, 4] {
            let cfg = EngineConfig { threads, ..EngineConfig::default() };
            let res = sys
                .answer_with_budget_engine_backend_traced(
                    &q,
                    &snap,
                    Strategy::Tw,
                    &spec,
                    &cfg,
                    obda::Telemetry::disabled(),
                )
                .unwrap();
            assert_eq!(res.answers, oracle, "threads={threads} word={word}");
        }
    }
}

/// Forward compatibility with pre-stats snapshots: a legacy file (no
/// stats section, flags 0) opens cleanly, derives its relation
/// statistics on first use, and the cost-based planner over those
/// derived stats answers exactly like the chase oracle.
#[test]
fn pre_stats_snapshot_opens_and_derives_statistics() {
    let sys = paper_system();
    let data = table2_dataset(&sys, 0);
    let vocab = sys.ontology().vocab();

    let legacy = obda::store::snapshot_bytes_legacy(vocab, &data);
    let current = obda::store::snapshot_bytes(vocab, &data);
    assert!(legacy.len() < current.len(), "the stats section must be optional");

    let path = temp_path();
    std::fs::write(&path, &legacy).unwrap();
    let info = read_info(&path).unwrap();
    assert_eq!(info.flags, 0, "legacy snapshots set no format flags");
    assert_eq!(info.stats_source(), "derived", "dbinfo must report derived stats");

    let snap = Snapshot::open(&path, vocab).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(snap.info().stats_source(), "derived");

    let spec = BudgetSpec::unlimited();
    for word in WORDS {
        let q = word_query(sys.ontology(), word);
        let oracle = sys.certain_answers(&q, &data).tuples();
        let res = sys
            .answer_with_budget_engine_backend_traced(
                &q,
                &snap,
                Strategy::Tw,
                &spec,
                &EngineConfig::default(),
                obda::Telemetry::disabled(),
            )
            .unwrap();
        assert_eq!(res.answers, oracle, "legacy snapshot, word {word}");
    }

    // The current writer embeds the stats section and reports so.
    let path = temp_path();
    std::fs::write(&path, &current).unwrap();
    assert_eq!(read_info(&path).unwrap().stats_source(), "embedded");
    std::fs::remove_file(&path).ok();
}

/// The service's backend entry points answer exactly like its parse
/// entry points, for both prepared (`submit_backend`) and one-shot
/// (`answer_backend`) requests.
#[test]
fn service_backend_requests_match_parse_requests() {
    let sys = paper_system();
    let data = table2_dataset(&sys, 1);
    let snap = snapshot_of(&sys, &data);
    let svc = QueryService::new(
        sys,
        ServiceConfig { max_concurrency: 2, max_queue: 4, ..ServiceConfig::default() },
    );
    let q = word_query(svc.system().ontology(), "RS");
    let id = svc.prepare(&q, Strategy::Tw).unwrap();

    let parsed = svc.submit(id, &data).unwrap();
    let backed = svc.submit_backend(id, &snap).unwrap();
    let answers = parsed.result().expect("parse path answers").answers.clone();
    assert_eq!(backed.result().expect("snapshot path answers").answers, answers);

    let oneshot = svc.answer_backend(&q, &snap, Strategy::Tw).unwrap();
    assert_eq!(oneshot.result().expect("one-shot answers").answers, answers);
    assert_eq!(svc.stats().succeeded, 3);
}

/// `MemoryBackend` gives parsed data the same seam as snapshots: the
/// backend-routed ladder equals the parse-routed ladder, and the two
/// backend kinds agree on every accessor the pipeline uses.
#[test]
fn memory_backend_is_the_parse_path_behind_the_seam() {
    let sys = paper_system();
    let spec = BudgetSpec::unlimited();
    let data = table2_dataset(&sys, 2);
    let snap = snapshot_of(&sys, &data);
    let mem = MemoryBackend::new(data.clone());
    assert_eq!(mem.kind(), "memory");
    assert_eq!(snap.kind(), "snapshot");
    assert_eq!(mem.database().num_atoms(), snap.database().num_atoms());
    for c in data.individuals() {
        assert_eq!(mem.constant_name(c), snap.constant_name(c), "dictionary ids must agree");
    }
    assert_eq!(
        snap.data_instance().to_text(sys.ontology()),
        data.to_text(sys.ontology()),
        "the lazy instance view must reconstruct the original"
    );
    for word in WORDS {
        let q = word_query(sys.ontology(), word);
        let via_mem = sys.answer_with_fallback_backend(&q, &mem, Strategy::Tw, &spec);
        let via_parse = sys.answer_with_fallback(&q, &data, Strategy::Tw, &spec);
        assert_eq!(
            via_mem.result().map(|r| &r.answers),
            via_parse.result().map(|r| &r.answers),
            "word {word}"
        );
    }
}

/// The mmap differential, closed over every on-disk layout: for the
/// lazily hydrated open (`--mmap`, the default), the eager A/B open
/// (`--eager`), and the v2-inline / v2-footer / v1-stats / v1-legacy
/// forms of the *same* instance, the fallback ladder answers exactly
/// the chase oracle — and the lazy open never hydrates more than the
/// eager one.
#[test]
fn lazy_eager_and_every_layout_agree_with_oracle() {
    let sys = paper_system();
    let vocab = sys.ontology().vocab();
    let spec = BudgetSpec::unlimited();
    let data = table2_dataset(&sys, 0);
    let queries: Vec<_> = WORDS
        .iter()
        .map(|w| {
            let q = word_query(sys.ontology(), w);
            let oracle = sys.certain_answers(&q, &data).tuples();
            (*w, q, oracle)
        })
        .collect();
    let variants: [(&str, Vec<u8>); 4] = [
        ("v2-inline", obda::store::snapshot_bytes(vocab, &data)),
        ("v2-footer", obda::store::snapshot_bytes_footer(vocab, &data)),
        ("v1-stats", obda::store::snapshot_bytes_v1(vocab, &data)),
        ("v1-legacy", obda::store::snapshot_bytes_legacy(vocab, &data)),
    ];
    for (tag, bytes) in &variants {
        let path = temp_path();
        std::fs::write(&path, bytes).unwrap();
        let lazy = Snapshot::open(&path, vocab).unwrap();
        let eager = Snapshot::open_eager(&path, vocab).unwrap();
        std::fs::remove_file(&path).ok();
        for (word, q, oracle) in &queries {
            for (mode, snap) in [("lazy", &lazy), ("eager", &eager)] {
                let report = sys.answer_with_fallback_backend(q, snap, Strategy::Tw, &spec);
                assert_eq!(
                    report.result().map(|r| &r.answers),
                    Some(oracle),
                    "{tag} {mode} word {word}"
                );
            }
        }
        assert!(
            lazy.bytes_touched() <= eager.bytes_touched(),
            "{tag}: lazy hydration ({}) must not exceed the eager footprint ({})",
            lazy.bytes_touched(),
            eager.bytes_touched()
        );
        assert_eq!(
            lazy.resident_bytes(),
            Some(lazy.bytes_touched()),
            "{tag}: the backend seam must export the hydrated footprint"
        );
    }
}

/// Renders answer tuples as name tuples, so answer sets from backends
/// with *different* constant dictionaries can be compared.
fn named_answers(
    tuples: &[Vec<ConstId>],
    name: impl Fn(ConstId) -> String,
) -> BTreeSet<Vec<String>> {
    tuples.iter().map(|t| t.iter().map(|&c| name(c)).collect()).collect()
}

/// The appendable footer form end to end: a base snapshot of the
/// property atoms grown by [`append_snapshot`] with the class markers
/// answers exactly like the monolithic instance, lazy and eager — the
/// delta's constants are remapped by name, so answers are compared as
/// name tuples.
#[test]
fn appended_snapshot_answers_like_the_monolithic_instance() {
    let sys = paper_system();
    let vocab = sys.ontology().vocab();
    let spec = BudgetSpec::unlimited();

    // Split by predicate — the appender refuses to merge into an
    // existing segment, so the base gets one property wholesale and the
    // delta gets every other predicate. Not every Table-2 dataset has
    // two predicates at this scale; take the first that splits.
    let (data, base, delta) = (0..TABLE_2.len())
        .find_map(|idx| {
            let data = table2_dataset(&sys, idx);
            let first_prop = data.prop_atoms().next().map(|(p, _, _)| p)?;
            let mut base = DataInstance::new();
            let mut delta = DataInstance::new();
            for (p, a, b) in data.prop_atoms() {
                let tgt = if p == first_prop { &mut base } else { &mut delta };
                let x = tgt.constant(data.constant_name(a));
                let y = tgt.constant(data.constant_name(b));
                tgt.add_prop_atom(p, x, y);
            }
            for (c, a) in data.class_atoms() {
                let x = delta.constant(data.constant_name(a));
                delta.add_class_atom(c, x);
            }
            (base.num_atoms() > 0 && delta.num_atoms() > 0).then_some((data, base, delta))
        })
        .expect("some Table-2 dataset must split into two nonempty halves");

    let path = temp_path();
    write_snapshot_footer(&path, vocab, &base).unwrap();
    let info = append_snapshot(&path, vocab, &delta).unwrap();
    assert!(info.footer && info.appended, "the grown file stays appendable and says so");
    assert_eq!(info.num_atoms as usize, data.num_atoms());

    let lazy = Snapshot::open(&path, vocab).unwrap();
    let eager = Snapshot::open_eager(&path, vocab).unwrap();
    std::fs::remove_file(&path).ok();
    for word in WORDS {
        let q = word_query(sys.ontology(), word);
        let oracle = named_answers(&sys.certain_answers(&q, &data).tuples(), |c| {
            data.constant_name(c).to_owned()
        });
        for (mode, snap) in [("lazy", &lazy), ("eager", &eager)] {
            let report = sys.answer_with_fallback_backend(&q, snap, Strategy::Tw, &spec);
            let result = report.result().unwrap_or_else(|| panic!("{mode} word {word} failed"));
            assert_eq!(
                named_answers(&result.answers, |c| snap.constant_name(c).to_owned()),
                oracle,
                "{mode} word {word}: appended snapshot vs oracle"
            );
        }
    }
}

/// Lazy hydration through the query service: prepared and one-shot
/// backend requests over a lazily opened snapshot answer exactly like
/// the eagerly opened one, and only the touched columns hydrate.
#[test]
fn service_requests_hydrate_lazily_and_match_eager() {
    let sys = paper_system();
    let vocab = sys.ontology().vocab();
    let data = table2_dataset(&sys, 2);
    let path = temp_path();
    write_snapshot(&path, vocab, &data).unwrap();
    let lazy = Snapshot::open(&path, vocab).unwrap();
    let eager = Snapshot::open_eager(&path, vocab).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(lazy.columns_touched(), 0, "opening alone must hydrate nothing");

    let svc = QueryService::new(
        sys,
        ServiceConfig { max_concurrency: 2, max_queue: 4, ..ServiceConfig::default() },
    );
    let q = word_query(svc.system().ontology(), "RS");
    let id = svc.prepare(&q, Strategy::Tw).unwrap();
    let via_lazy = svc.submit_backend(id, &lazy).unwrap();
    let via_eager = svc.submit_backend(id, &eager).unwrap();
    assert_eq!(
        via_lazy.result().expect("lazy answers").answers,
        via_eager.result().expect("eager answers").answers,
    );
    let oneshot = svc.answer_backend(&q, &lazy, Strategy::Tw).unwrap();
    assert_eq!(
        oneshot.result().expect("one-shot answers").answers,
        via_eager.result().expect("eager answers").answers,
    );
    assert!(lazy.columns_touched() > 0, "answering must have hydrated the joined columns");
    assert!(
        lazy.bytes_touched() <= eager.bytes_touched(),
        "the service path must not hydrate past the full footprint"
    );
}

/// `read_info` (the `dbinfo` entry point) reports the structure the
/// writer recorded, without loading any segment data.
#[test]
fn read_info_matches_the_written_snapshot() {
    let sys = paper_system();
    let data = table2_dataset(&sys, 3);
    let path = temp_path();
    let written = write_snapshot(&path, sys.ontology().vocab(), &data).unwrap();
    let info = read_info(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(info.num_consts, data.num_individuals());
    assert_eq!(info.num_atoms as usize, data.num_atoms());
    assert_eq!(info.num_consts, written.num_consts);
    assert_eq!(info.num_atoms, written.num_atoms);
    assert_eq!(info.relations.len(), written.relations.len());
    assert_eq!(info.relations.iter().map(|r| r.rows).sum::<u64>(), info.num_atoms);
}

fn run_dbinfo(path: &std::path::Path) -> (i32, String, String) {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_obda"))
        .arg("dbinfo")
        .arg(path)
        .output()
        .unwrap();
    (
        out.status.code().expect("dbinfo must exit, not die on a signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

/// Pins `obda dbinfo`'s flag reporting: known bits are printed by name,
/// an unknown-but-optional bit from a future writer is called out as
/// tolerated (and still exits 0), an unknown *required* bit refuses with
/// the snapshot exit code, and the layout/index lines track the form.
#[test]
fn dbinfo_prints_known_and_unknown_flags_layout_and_index_source() {
    let sys = paper_system();
    let vocab = sys.ontology().vocab();
    let data = table2_dataset(&sys, 0);
    let path = temp_path();

    // The default v2 inline writer: stats + indexes, no unknown bits.
    write_snapshot(&path, vocab, &data).unwrap();
    let (code, out, err) = run_dbinfo(&path);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("(known: stats, indexes)"), "stdout: {out}");
    assert!(!out.contains("unknown:"), "no unknown bits to report: {out}");
    assert!(out.contains("layout:         inline"), "stdout: {out}");
    assert!(out.contains("indexes:        embedded"), "stdout: {out}");

    // The footer form grown by the appender names both extra bits.
    write_snapshot_footer(&path, vocab, &data).unwrap();
    let mut delta = DataInstance::new();
    let c = delta.constant("dbinfo-fresh-constant");
    let class = data.class_atoms().next().map(|(cl, _)| cl);
    if let Some(class) = class {
        // Appending needs a predicate absent from the base file: drop the
        // class segments from the base by rebuilding it property-only.
        let mut base = DataInstance::new();
        for (p, a, b) in data.prop_atoms() {
            let x = base.constant(data.constant_name(a));
            let y = base.constant(data.constant_name(b));
            base.add_prop_atom(p, x, y);
        }
        write_snapshot_footer(&path, vocab, &base).unwrap();
        delta.add_class_atom(class, c);
        append_snapshot(&path, vocab, &delta).unwrap();
        let (code, out, _) = run_dbinfo(&path);
        assert_eq!(code, 0);
        assert!(out.contains("(known: stats, indexes, footer, appended)"), "stdout: {out}");
        assert!(out.contains("layout:         footer (appendable, has appended segments)"));
    }

    // An unknown *optional* (upper-half) flag bit — a future writer's
    // hint — is tolerated and reported. Flags live at header bytes 8..12.
    write_snapshot(&path, vocab, &data).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[10] |= 0x02; // bit 17
    std::fs::write(&path, &bytes).unwrap();
    let (code, out, err) = run_dbinfo(&path);
    assert_eq!(code, 0, "optional bits must not refuse the file, stderr: {err}");
    assert!(out.contains("unknown: 0x00020000"), "stdout: {out}");
    assert!(out.contains("optional bits tolerated"), "stdout: {out}");
    assert!(out.contains("(known: stats, indexes;"), "known names still print: {out}");

    // An unknown *required* (lower-half) bit refuses with the snapshot
    // exit code (3), naming the bit.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[10] &= !0x02;
    bytes[8] |= 0x08; // bit 3: required, unknown
    std::fs::write(&path, &bytes).unwrap();
    let (code, _, err) = run_dbinfo(&path);
    assert_eq!(code, 3, "unknown required bits are incompatibility, stderr: {err}");

    // A v1 file: flat layout, no flags, everything derived on open.
    std::fs::write(&path, obda::store::snapshot_bytes_legacy(vocab, &data)).unwrap();
    let (code, out, _) = run_dbinfo(&path);
    assert_eq!(code, 0);
    assert!(out.contains("(known: none)"), "stdout: {out}");
    assert!(out.contains("layout:         flat (v1)"), "stdout: {out}");
    assert!(out.contains("stats:          derived"), "stdout: {out}");
    assert!(out.contains("indexes:        derived"), "stdout: {out}");
    std::fs::remove_file(&path).ok();
}
