//! Differential tests for the snapshot store: an `.obdb`-backed
//! [`StorageBackend`] must be answer-for-answer indistinguishable from
//! the in-memory parse path, and both must match the chase oracle — on
//! the paper's own Table-2 workload (Appendix D.2), scaled down so the
//! oracle stays cheap.
//!
//! The chain pinned here is `snapshot ≡ memory ≡ oracle`, closed over
//! every Table-2 dataset, the fallback ladder, the parallel engine and
//! the query service.

use obda::budget::BudgetSpec;
use obda::datagen::erdos::TABLE_2;
use obda::datagen::sequences::{example_11_ontology, word_query};
use obda::ndl::engine::EngineConfig;
use obda::owlql::abox::DataInstance;
use obda::{
    read_info, write_snapshot, MemoryBackend, ObdaSystem, QueryService, ServiceConfig, Snapshot,
    StorageBackend, Strategy,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Small enough that the chase oracle answers in milliseconds, large
/// enough that every dataset has edges, markers and nonempty answers.
const SCALE: f64 = 0.003;

/// Query words over `{R, S}`: the shortest prefixes of Sequence 1 plus
/// two `S`-leading words, so both the concrete `R`-part and the
/// anonymous-witness `S`-part of the rewriting are exercised.
const WORDS: [&str; 5] = ["R", "S", "RR", "SR", "RRS"];

fn temp_path() -> std::path::PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "obda-store-diff-{}-{}.obdb",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn paper_system() -> ObdaSystem {
    ObdaSystem::new(example_11_ontology())
}

fn table2_dataset(sys: &ObdaSystem, idx: usize) -> DataInstance {
    TABLE_2[idx].scaled(SCALE).generate(sys.ontology())
}

/// Writes `data` to a fresh temp snapshot and reopens it.
fn snapshot_of(sys: &ObdaSystem, data: &DataInstance) -> Snapshot {
    let path = temp_path();
    write_snapshot(&path, sys.ontology().vocab(), data).unwrap();
    let snap = Snapshot::open(&path, sys.ontology().vocab()).unwrap();
    std::fs::remove_file(&path).ok();
    snap
}

/// The tentpole differential: on every Table-2 dataset and every query
/// word, the snapshot-backed ladder, the parse-backed ladder and the
/// chase oracle produce identical answer sets.
#[test]
fn table2_snapshot_memory_and_oracle_agree() {
    let sys = paper_system();
    let spec = BudgetSpec::unlimited();
    for idx in 0..TABLE_2.len() {
        let data = table2_dataset(&sys, idx);
        assert!(data.num_atoms() > 0, "dataset {idx} is empty at scale {SCALE}");
        let snap = snapshot_of(&sys, &data);
        for word in WORDS {
            let q = word_query(sys.ontology(), word);
            let oracle = sys.certain_answers(&q, &data).tuples();
            let memory = sys.answer_with_fallback(&q, &data, Strategy::Tw, &spec);
            let backed = sys.answer_with_fallback_backend(&q, &snap, Strategy::Tw, &spec);
            assert_eq!(
                memory.result().map(|r| &r.answers),
                Some(&oracle),
                "dataset {idx} word {word}: parse path vs oracle"
            );
            assert_eq!(
                backed.result().map(|r| &r.answers),
                Some(&oracle),
                "dataset {idx} word {word}: snapshot path vs oracle"
            );
        }
    }
}

/// The parallel engine runs the same hot path on a snapshot database as
/// on a parsed one: identical answers at one and four threads.
#[test]
fn parallel_engine_on_snapshot_matches_oracle() {
    let sys = paper_system();
    let spec = BudgetSpec::unlimited();
    let data = table2_dataset(&sys, 0);
    let snap = snapshot_of(&sys, &data);
    for word in WORDS {
        let q = word_query(sys.ontology(), word);
        let oracle = sys.certain_answers(&q, &data).tuples();
        for threads in [1usize, 4] {
            let cfg = EngineConfig { threads, ..EngineConfig::default() };
            let res = sys
                .answer_with_budget_engine_backend_traced(
                    &q,
                    &snap,
                    Strategy::Tw,
                    &spec,
                    &cfg,
                    obda::Telemetry::disabled(),
                )
                .unwrap();
            assert_eq!(res.answers, oracle, "threads={threads} word={word}");
        }
    }
}

/// Forward compatibility with pre-stats snapshots: a legacy file (no
/// stats section, flags 0) opens cleanly, derives its relation
/// statistics on first use, and the cost-based planner over those
/// derived stats answers exactly like the chase oracle.
#[test]
fn pre_stats_snapshot_opens_and_derives_statistics() {
    let sys = paper_system();
    let data = table2_dataset(&sys, 0);
    let vocab = sys.ontology().vocab();

    let legacy = obda::store::snapshot_bytes_legacy(vocab, &data);
    let current = obda::store::snapshot_bytes(vocab, &data);
    assert!(legacy.len() < current.len(), "the stats section must be optional");

    let path = temp_path();
    std::fs::write(&path, &legacy).unwrap();
    let info = read_info(&path).unwrap();
    assert_eq!(info.flags, 0, "legacy snapshots set no format flags");
    assert_eq!(info.stats_source(), "derived", "dbinfo must report derived stats");

    let snap = Snapshot::open(&path, vocab).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(snap.info().stats_source(), "derived");

    let spec = BudgetSpec::unlimited();
    for word in WORDS {
        let q = word_query(sys.ontology(), word);
        let oracle = sys.certain_answers(&q, &data).tuples();
        let res = sys
            .answer_with_budget_engine_backend_traced(
                &q,
                &snap,
                Strategy::Tw,
                &spec,
                &EngineConfig::default(),
                obda::Telemetry::disabled(),
            )
            .unwrap();
        assert_eq!(res.answers, oracle, "legacy snapshot, word {word}");
    }

    // The current writer embeds the stats section and reports so.
    let path = temp_path();
    std::fs::write(&path, &current).unwrap();
    assert_eq!(read_info(&path).unwrap().stats_source(), "embedded");
    std::fs::remove_file(&path).ok();
}

/// The service's backend entry points answer exactly like its parse
/// entry points, for both prepared (`submit_backend`) and one-shot
/// (`answer_backend`) requests.
#[test]
fn service_backend_requests_match_parse_requests() {
    let sys = paper_system();
    let data = table2_dataset(&sys, 1);
    let snap = snapshot_of(&sys, &data);
    let svc = QueryService::new(
        sys,
        ServiceConfig { max_concurrency: 2, max_queue: 4, ..ServiceConfig::default() },
    );
    let q = word_query(svc.system().ontology(), "RS");
    let id = svc.prepare(&q, Strategy::Tw).unwrap();

    let parsed = svc.submit(id, &data).unwrap();
    let backed = svc.submit_backend(id, &snap).unwrap();
    let answers = parsed.result().expect("parse path answers").answers.clone();
    assert_eq!(backed.result().expect("snapshot path answers").answers, answers);

    let oneshot = svc.answer_backend(&q, &snap, Strategy::Tw).unwrap();
    assert_eq!(oneshot.result().expect("one-shot answers").answers, answers);
    assert_eq!(svc.stats().succeeded, 3);
}

/// `MemoryBackend` gives parsed data the same seam as snapshots: the
/// backend-routed ladder equals the parse-routed ladder, and the two
/// backend kinds agree on every accessor the pipeline uses.
#[test]
fn memory_backend_is_the_parse_path_behind_the_seam() {
    let sys = paper_system();
    let spec = BudgetSpec::unlimited();
    let data = table2_dataset(&sys, 2);
    let snap = snapshot_of(&sys, &data);
    let mem = MemoryBackend::new(data.clone());
    assert_eq!(mem.kind(), "memory");
    assert_eq!(snap.kind(), "snapshot");
    assert_eq!(mem.database().num_atoms(), snap.database().num_atoms());
    for c in data.individuals() {
        assert_eq!(mem.constant_name(c), snap.constant_name(c), "dictionary ids must agree");
    }
    assert_eq!(
        snap.data_instance().to_text(sys.ontology()),
        data.to_text(sys.ontology()),
        "the lazy instance view must reconstruct the original"
    );
    for word in WORDS {
        let q = word_query(sys.ontology(), word);
        let via_mem = sys.answer_with_fallback_backend(&q, &mem, Strategy::Tw, &spec);
        let via_parse = sys.answer_with_fallback(&q, &data, Strategy::Tw, &spec);
        assert_eq!(
            via_mem.result().map(|r| &r.answers),
            via_parse.result().map(|r| &r.answers),
            "word {word}"
        );
    }
}

/// `read_info` (the `dbinfo` entry point) reports the structure the
/// writer recorded, without loading any segment data.
#[test]
fn read_info_matches_the_written_snapshot() {
    let sys = paper_system();
    let data = table2_dataset(&sys, 3);
    let path = temp_path();
    let written = write_snapshot(&path, sys.ontology().vocab(), &data).unwrap();
    let info = read_info(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(info.num_consts, data.num_individuals());
    assert_eq!(info.num_atoms as usize, data.num_atoms());
    assert_eq!(info.num_consts, written.num_consts);
    assert_eq!(info.num_atoms, written.num_atoms);
    assert_eq!(info.relations.len(), written.relations.len());
    assert_eq!(info.relations.iter().map(|r| r.rows).sum::<u64>(), info.num_atoms);
}
