//! Larger randomized runs of the Section 4/5 hardness reductions against
//! their brute-force oracles.

use obda_chase::answer::{certain_answers, CertainAnswers};
use obda_chase::homomorphism::HomSearch;
use obda_chase::linear_walk::linear_boolean_entails;
use obda_chase::model::CanonicalModel;
use obda_datagen::clique::{clique_to_omq, PartitionedGraph};
use obda_datagen::hitting_set::{hitting_set_to_omq, Hypergraph};
use obda_datagen::logcfl::{in_l, logcfl_data, parse_word, t_double_dagger, word_to_query};
use obda_datagen::sat::{sat_data, sat_query, t_dagger, Cnf};

#[test]
fn theorem_15_hitting_set_sweep() {
    for seed in 0..10 {
        let h = Hypergraph::random(5, 4, 3, 100 + seed);
        for k in 1..=3 {
            let r = hitting_set_to_omq(&h, k);
            let entailed =
                certain_answers(&r.ontology, &r.query, &r.data) == CertainAnswers::Boolean(true);
            assert_eq!(entailed, h.has_hitting_set(k), "seed {seed} k {k}");
        }
    }
}

#[test]
fn theorem_16_partitioned_clique_sweep() {
    for seed in 0..6 {
        let g = PartitionedGraph::random(4, 2, 0.4, 200 + seed);
        let r = clique_to_omq(&g);
        let bound = (2 * g.num_vertices + 2) * g.num_parts + 2;
        let model = CanonicalModel::new(&r.ontology, &r.data, bound);
        let entailed = HomSearch::new(&model, &r.query).exists(&[]);
        assert_eq!(entailed, g.has_partitioned_clique(), "seed {seed}");
    }
}

#[test]
fn theorem_17_sat_sweep() {
    for seed in 0..10 {
        let cnf = Cnf::random(4, 4, 300 + seed);
        let o = t_dagger();
        let q = sat_query(&o, &cnf);
        let d = sat_data(&o);
        let model = CanonicalModel::new(&o, &d, 2 * cnf.num_vars + 2);
        let entailed = HomSearch::new(&model, &q).exists(&[]);
        assert_eq!(entailed, cnf.satisfiable(), "seed {seed} {:?}", cnf.clauses);
    }
}

#[test]
fn theorem_22_logcfl_words() {
    let o = t_double_dagger();
    let d = logcfl_data(&o);
    for word in [
        "[a1b1][a2b2]",
        "[a1#a2][b1#b2]",
        "[a1a1][b1b1]",
        "[a1a1][b1b2]",
        "[a1#][#b1]",
        "[#a1b1a2#][a2#b2][b2#a1b1]",
    ] {
        let w = parse_word(word);
        let q = word_to_query(&o, &w);
        let anchor = q.get_var("u0").unwrap();
        let entailed = linear_boolean_entails(&o, &q, &d, anchor);
        assert_eq!(entailed, in_l(&w), "word {word}");
    }
}
