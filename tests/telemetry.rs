//! Telemetry differential suite: the spans a [`CollectingTracer`] records
//! must agree *exactly* with the [`EvalStats`] the engines report — the
//! trace is an account of the evaluation, not an approximation of it.
//!
//! * the `eval` span's `tuples`/`answers` attributes equal the stats;
//! * the per-clause join spans (`clause` sequentially, `clause_task` in the
//!   parallel engine) sum to the same tuple total, at every thread count of
//!   the `OBDA_TEST_THREADS` matrix;
//! * the `ndl_tuples_generated` counter agrees with both;
//! * traced and untraced runs return identical answers.

use obda::budget::BudgetSpec;
use obda::ndl::engine::{evaluate_engine_on_traced, EngineConfig};
use obda::ndl::eval::evaluate_on_traced;
use obda::ndl::storage::Database;
use obda::telemetry::{TraceSpan, TraceTree};
use obda::{CollectingTracer, MetricsRegistry, ObdaSystem, Strategy, Telemetry};

const ONTOLOGY: &str = "Professor SubClassOf exists teaches\n\
                        AssistantProfessor SubClassOf Professor\n\
                        exists teaches- SubClassOf Course\n\
                        GradCourse SubClassOf Course\n";
const QUERY: &str = "q(x) :- teaches(x, y), Course(y)";
const DATA: &str = "Professor(ada)\n\
                    AssistantProfessor(bob)\n\
                    teaches(carol, logic)\n\
                    Course(logic)\n\
                    GradCourse(sem)\n\
                    teaches(dan, sem)\n";

/// Thread counts for the parallel engine, from the same matrix variable the
/// other differential suites honour.
fn thread_matrix() -> Vec<usize> {
    match std::env::var("OBDA_TEST_THREADS") {
        Ok(spec) => spec.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
        Err(_) => vec![1, 4],
    }
}

/// Sum of the `tuples` attributes over every per-clause join span.
fn clause_tuple_sum(tree: &TraceTree) -> u64 {
    tree.iter()
        .filter(|s| s.name == "clause" || s.name == "clause_task")
        .filter_map(|s| s.attr("tuples"))
        .sum()
}

/// Every span ended, and every child's duration fits inside its parent's.
fn assert_well_nested(tree: &TraceTree) {
    fn walk(span: &TraceSpan) {
        assert!(span.ended, "span {} never ended", span.name);
        for child in &span.children {
            assert!(
                child.duration <= span.duration,
                "child {} ({:?}) outlives parent {} ({:?})",
                child.name,
                child.duration,
                span.name,
                span.duration,
            );
            walk(child);
        }
    }
    for root in &tree.roots {
        walk(root);
    }
}

#[test]
fn sequential_span_counts_match_eval_stats() {
    let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
    let q = sys.parse_query(QUERY).unwrap();
    let d = sys.parse_data(DATA).unwrap();
    let rewriting = sys.rewrite(&q, Strategy::Tw).unwrap();
    let db = Database::new(&d);

    let tracer = CollectingTracer::new();
    let registry = MetricsRegistry::new();
    let mut budget = BudgetSpec::unlimited().start();
    let res =
        evaluate_on_traced(&rewriting, &db, &mut budget, Telemetry::new(&tracer, Some(&registry)))
            .unwrap();
    assert!(res.stats.generated_tuples > 0, "the fixture must generate tuples");

    let tree = tracer.snapshot();
    assert_well_nested(&tree);
    assert!(tree.iter().all(|s| s.error.is_none()), "no span may fail:\n{}", tree.render_pretty());

    let eval = tree.iter().find(|s| s.name == "eval").expect("an eval span");
    assert_eq!(eval.attr_str("engine"), Some("sequential"));
    assert_eq!(eval.attr("tuples"), Some(res.stats.generated_tuples as u64));
    assert_eq!(eval.attr("answers"), Some(res.stats.num_answers as u64));
    assert_eq!(
        clause_tuple_sum(&tree),
        res.stats.generated_tuples as u64,
        "clause spans must account for every generated tuple:\n{}",
        tree.render_pretty()
    );
    assert_eq!(
        registry.counter("ndl_tuples_generated").get(),
        res.stats.generated_tuples as u64,
        "the counter and the stats must agree"
    );
}

#[test]
fn parallel_span_counts_match_eval_stats_at_every_thread_count() {
    let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
    let q = sys.parse_query(QUERY).unwrap();
    let d = sys.parse_data(DATA).unwrap();
    let rewriting = sys.rewrite(&q, Strategy::Tw).unwrap();
    let db = Database::new(&d);
    let oracle = sys.certain_answers(&q, &d).tuples();

    for threads in thread_matrix() {
        for prune in [false, true] {
            let cfg = EngineConfig { threads, prune, ..EngineConfig::default() };
            let tracer = CollectingTracer::new();
            let registry = MetricsRegistry::new();
            let mut budget = BudgetSpec::unlimited().start();
            let res = evaluate_engine_on_traced(
                &rewriting,
                &db,
                &mut budget,
                &cfg,
                Telemetry::new(&tracer, Some(&registry)),
            )
            .unwrap();
            let ctx = format!("threads={threads} prune={prune}");
            assert_eq!(res.answers, oracle, "{ctx}: traced run disagrees with the oracle");

            let tree = tracer.snapshot();
            assert_well_nested(&tree);
            let eval = tree.iter().find(|s| s.name == "eval").expect("an eval span");
            assert_eq!(eval.attr_str("engine"), Some("parallel"), "{ctx}");
            assert_eq!(eval.attr("tuples"), Some(res.stats.generated_tuples as u64), "{ctx}");
            assert_eq!(eval.attr("answers"), Some(res.stats.num_answers as u64), "{ctx}");
            assert_eq!(
                clause_tuple_sum(&tree),
                res.stats.generated_tuples as u64,
                "{ctx}: clause_task spans must account for every generated tuple:\n{}",
                tree.render_pretty()
            );
            assert_eq!(
                registry.counter("ndl_tuples_generated").get(),
                res.stats.generated_tuples as u64,
                "{ctx}: the counter and the stats must agree"
            );
            if prune {
                let prune_span = tree.iter().find(|s| s.name == "prune").expect("a prune span");
                let before = prune_span.attr("clauses_before").unwrap();
                let after = prune_span.attr("clauses_after").unwrap();
                assert!(after <= before, "{ctx}: pruning may only shrink the program");
            }
            // The schedule ran and its strata cover the clause tasks.
            let sched =
                tree.iter().find(|s| s.name == "stratum-schedule").expect("a schedule span");
            assert!(sched.attr("strata").unwrap() >= 1, "{ctx}");
        }
    }
}

#[test]
fn sequential_and_parallel_traces_agree_on_totals() {
    let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
    let q = sys.parse_query(QUERY).unwrap();
    let d = sys.parse_data(DATA).unwrap();
    let rewriting = sys.rewrite(&q, Strategy::Tw).unwrap();
    let db = Database::new(&d);

    let seq_tracer = CollectingTracer::new();
    let seq = evaluate_on_traced(
        &rewriting,
        &db,
        &mut BudgetSpec::unlimited().start(),
        Telemetry::new(&seq_tracer, None),
    )
    .unwrap();

    for threads in thread_matrix() {
        let cfg = EngineConfig { threads, prune: false, ..EngineConfig::default() };
        let par_tracer = CollectingTracer::new();
        let par = evaluate_engine_on_traced(
            &rewriting,
            &db,
            &mut BudgetSpec::unlimited().start(),
            &cfg,
            Telemetry::new(&par_tracer, None),
        )
        .unwrap();
        assert_eq!(par.answers, seq.answers, "threads={threads}");
        // Same unpruned program, same data: both engines generate the same
        // tuples, and both traces account for all of them.
        assert_eq!(par.stats.generated_tuples, seq.stats.generated_tuples, "threads={threads}");
        assert_eq!(
            clause_tuple_sum(&par_tracer.snapshot()),
            clause_tuple_sum(&seq_tracer.snapshot()),
            "threads={threads}: the two engines' traces account differently"
        );
    }
}

#[test]
fn service_request_produces_a_complete_span_tree_and_metrics() {
    use obda::{OverloadConfig, QueryService, RetryPolicy, ServiceConfig};

    let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
    let svc = QueryService::new(
        sys,
        ServiceConfig {
            max_concurrency: 2,
            max_queue: 4,
            budget: BudgetSpec::unlimited(),
            retry: RetryPolicy::default(),
            engine: Some(EngineConfig { threads: 2, prune: true, ..EngineConfig::default() }),
            overload: OverloadConfig::default(),
        },
    );
    let q = svc.system().parse_query(QUERY).unwrap();
    let d = svc.system().parse_data(DATA).unwrap();

    let tracer = CollectingTracer::new();
    let registry = MetricsRegistry::new();
    let telem = Telemetry::new(&tracer, Some(&registry));
    let report = svc.answer_traced(&q, &d, Strategy::Tw, telem).unwrap();
    assert!(report.is_success());

    let tree = tracer.snapshot();
    assert_well_nested(&tree);
    let names: Vec<&str> = tree.iter().map(|s| s.name).collect();
    for expected in ["queue_wait", "load_data", "attempt", "rewrite", "eval"] {
        assert!(names.contains(&expected), "missing {expected} span in {names:?}");
    }
    let attempt = tree.iter().find(|s| s.name == "attempt").unwrap();
    assert_eq!(attempt.attr_str("strategy"), Some("Tw"));
    assert_eq!(attempt.attr("retry"), Some(0));
    assert!(attempt.error.is_none(), "the winning attempt must not be error-tagged");

    // The caller's registry received the service metrics: one admitted
    // request, its latency observed overall and under the winning strategy.
    assert_eq!(registry.histogram("service_queue_wait_seconds").count(), 1);
    assert_eq!(registry.histogram("service_latency_seconds").count(), 1);
    assert_eq!(registry.histogram("service_latency_seconds_tw").count(), 1);
    assert_eq!(registry.gauge("service_active").get(), 0, "the gate slot was released");
    // A caller-supplied registry *overrides* the service's own (one
    // exposition covers gate and engines together), so the service registry
    // saw nothing — until an untraced request records into it.
    assert_eq!(svc.metrics().histogram("service_latency_seconds").count(), 0);
    svc.answer(&q, &d, Strategy::Tw).unwrap();
    assert_eq!(svc.metrics().histogram("service_latency_seconds").count(), 1);
}
