//! End-to-end scenarios through the `ObdaSystem` facade.

use obda::{Complexity, ObdaSystem, Strategy};

const UNIVERSITY: &str = "\
Professor SubClassOf Faculty
Faculty SubClassOf exists worksFor
exists worksFor- SubClassOf Department
Professor SubClassOf exists teaches
exists teaches- SubClassOf Course
teaches SubPropertyOf involvedIn
GradStudent SubClassOf exists enrolledIn
enrolledIn SubPropertyOf involvedIn
exists enrolledIn- SubClassOf Course
";

#[test]
fn university_scenario() {
    let sys = ObdaSystem::from_text(UNIVERSITY).unwrap();
    let data = sys
        .parse_data(
            "Professor(ada)\n\
             Professor(alan)\n\
             teaches(alan, logic)\n\
             GradStudent(kurt)\n\
             enrolledIn(kurt, logic)\n",
        )
        .unwrap();

    // Everyone involved in a course, even through anonymous witnesses.
    let q = sys.parse_query("q(x) :- involvedIn(x, y), Course(y)").unwrap();
    let oracle = sys.certain_answers(&q, &data).tuples();
    assert_eq!(oracle.len(), 3, "ada (anonymous course), alan, kurt");
    for strategy in Strategy::ALL {
        let res = sys.answer(&q, &data, strategy).unwrap();
        assert_eq!(res.answers, oracle, "{strategy}");
    }

    // Professors work for some department in every model.
    let q2 = sys.parse_query("q(x) :- worksFor(x, d), Department(d)").unwrap();
    let res = sys.answer(&q2, &data, Strategy::Tw).unwrap();
    assert_eq!(res.answers.len(), 2);

    // But no specific department is named.
    let q3 = sys.parse_query("q(x, d) :- worksFor(x, d)").unwrap();
    let res = sys.answer(&q3, &data, Strategy::Tw).unwrap();
    assert!(res.answers.is_empty());
}

#[test]
fn classification_matches_strategy_applicability() {
    let sys = ObdaSystem::from_text(UNIVERSITY).unwrap();
    let q = sys.parse_query("q(x) :- teaches(x, y), Course(y)").unwrap();
    let cell = sys.classify(&q);
    assert_eq!(cell.complexity, Complexity::Nl);
    assert!(sys.rewrite(&q, Strategy::Lin).is_ok());
    assert!(sys.rewrite(&q, Strategy::Log).is_ok());
    assert!(sys.rewrite(&q, Strategy::Tw).is_ok());
}

#[test]
fn infinite_depth_ontology_routes_to_tw() {
    let sys = ObdaSystem::from_text(
        "Person SubClassOf exists hasParent\n\
         exists hasParent- SubClassOf Person\n\
         exists hasParent- SubClassOf exists hasParent\n",
    )
    .unwrap();
    let q = sys.parse_query("q(x) :- hasParent(x, y), hasParent(y, z)").unwrap();
    assert!(sys.rewrite(&q, Strategy::Lin).is_err());
    assert!(sys.rewrite(&q, Strategy::Log).is_err());
    let data = sys.parse_data("Person(ada)\nhasParent(eve, adam)\n").unwrap();
    let res = sys.answer(&q, &data, Strategy::Tw).unwrap();
    let oracle = sys.certain_answers(&q, &data).tuples();
    assert_eq!(res.answers, oracle);
    assert_eq!(res.answers.len(), 3, "ada, eve and adam all have grandparents");
    // Adaptive falls back to Tw/Tw*.
    let res2 = sys.answer(&q, &data, Strategy::Adaptive).unwrap();
    assert_eq!(res2.answers, oracle);
}

#[test]
fn negative_constraints_and_inconsistency() {
    let sys = ObdaSystem::from_text(
        "Cat DisjointWith Dog\n\
         Cat SubClassOf exists hasOwner\n\
         exists hasOwner- SubClassOf Owner\n",
    )
    .unwrap();
    let q = sys.parse_query("q(x) :- hasOwner(x, y), Owner(y)").unwrap();
    let consistent = sys.parse_data("Cat(tom)\nDog(rex)\n").unwrap();
    let res = sys.answer(&q, &consistent, Strategy::Tw).unwrap();
    assert_eq!(res.answers.len(), 1, "only tom");

    let inconsistent = sys.parse_data("Cat(tom)\nDog(tom)\nDog(rex)\n").unwrap();
    for strategy in Strategy::ALL {
        let res = sys.answer(&q, &inconsistent, strategy).unwrap();
        assert_eq!(res.answers.len(), 2, "{strategy}: everything is entailed");
    }
    let oracle = sys.certain_answers(&q, &inconsistent).tuples();
    assert_eq!(oracle.len(), 2);
}

#[test]
fn reflexive_roles_through_the_pipeline() {
    let sys = ObdaSystem::from_text(
        "Reflexive knows\n\
         Class Spy\n",
    )
    .unwrap();
    let q = sys.parse_query("q(x) :- knows(x, x), Spy(x)").unwrap();
    let data = sys.parse_data("Spy(mata)\n").unwrap();
    for strategy in [Strategy::Lin, Strategy::Log, Strategy::Tw] {
        let res = sys.answer(&q, &data, strategy).unwrap();
        assert_eq!(res.answers.len(), 1, "{strategy}");
    }
}
