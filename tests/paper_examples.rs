//! Pinned tests for the worked examples of the paper: Examples 1, 8 and 11,
//! the Appendix A.6 "rewritings zoo", and the qualitative shape of Figure 2.

use obda::{ObdaSystem, Strategy};
use obda_datagen::sequences::{example_11_ontology, word_query, SEQUENCES};
use obda_ndl::analysis::analyze;
use obda_rewrite::omq::{Omq, Rewriter};
use obda_rewrite::{LinRewriter, LogRewriter, TwRewriter, TwUcqRewriter, UcqRewriter};

fn example_8_query(system: &ObdaSystem) -> obda_cq::Cq {
    system
        .parse_query(
            "q(x0, x7) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6), R(x6, x7)",
        )
        .unwrap()
}

fn system() -> ObdaSystem {
    ObdaSystem::new(example_11_ontology())
}

/// The A.6 zoo data: the expected single answer is (a, e) via two
/// anonymous-part collapses (AP⁻ at a and at b).
const ZOO_DATA: &str = "P(w1, a)\nR(a, b)\nP(w2, b)\nR(b, c)\nR(c, e)\n";

#[test]
fn zoo_all_rewritings_agree_on_the_worked_example() {
    let sys = system();
    let q = example_8_query(&sys);
    let d = sys.parse_data(ZOO_DATA).unwrap();
    let oracle = sys.certain_answers(&q, &d).tuples();
    assert_eq!(oracle.len(), 1);
    let a = d.get_constant("a").unwrap();
    let e = d.get_constant("e").unwrap();
    assert_eq!(oracle[0], vec![a, e]);
    for strategy in Strategy::ALL {
        let res = sys.answer(&q, &d, strategy).unwrap();
        assert_eq!(res.answers, oracle, "{strategy}");
    }
}

#[test]
fn zoo_lin_rewriting_structure() {
    // A.6.3: the Lin rewriting of the 7-atom query is linear, of width ≤ 2ℓ
    // = 4, with one goal clause per viable slice-0 type.
    let sys = system();
    let q = example_8_query(&sys);
    let omq = Omq { ontology: sys.ontology(), query: &q };
    let rw = LinRewriter::default().rewrite_complete(&omq).unwrap();
    let a = analyze(&rw);
    assert!(a.nonrecursive && a.linear);
    assert!(a.width <= 4, "width {}", a.width);
    assert_eq!(a.goal_weight, 1, "linear NDL queries have weight 1");
    // Depth is the number of slices plus the goal step.
    assert_eq!(a.depth, 9);
}

#[test]
fn zoo_log_rewriting_structure() {
    // A.6.2: the Log rewriting splits the 7-bag chain decomposition; its
    // weight function is bounded by the decomposition size and its width by
    // 3(t+1) = 6.
    let sys = system();
    let q = example_8_query(&sys);
    let omq = Omq { ontology: sys.ontology(), query: &q };
    let rw = LogRewriter::default().rewrite_complete(&omq).unwrap();
    let a = analyze(&rw);
    assert!(a.nonrecursive);
    assert!(a.width <= 6, "width {}", a.width);
    assert!(a.goal_weight <= 7, "ν(G) ≤ |T| = 7, got {}", a.goal_weight);
    assert!(a.skinny_depth <= 6 * 7, "sd ≤ 6 log |Q|");
}

#[test]
fn zoo_tw_rewriting_structure() {
    // A.6.4: the Tw rewriting splits at the middle; d(Π, G) ≤ log ν(G) + 1
    // (Lemma 14), width ≤ ℓ + 1 = 3.
    let sys = system();
    let q = example_8_query(&sys);
    let omq = Omq { ontology: sys.ontology(), query: &q };
    let rw = TwRewriter::default().rewrite_complete(&omq).unwrap();
    let a = analyze(&rw);
    assert!(a.nonrecursive);
    assert!(a.width <= 3, "width {}", a.width);
    assert!(a.goal_weight as usize <= q.num_atoms() + 1);
    assert!(a.depth <= 4, "d ≤ log ν + 1, got {}", a.depth);
}

#[test]
fn figure_2_shape_lin_log_tw_linear_baselines_exponential() {
    // Clause counts over prefixes of Sequence 1: the optimal rewritings
    // grow (sub-)linearly; the UCQ baselines super-linearly.
    let sys = system();
    let mut counts: Vec<[usize; 5]> = Vec::new();
    for n in [3usize, 6, 9, 12] {
        let q = word_query(sys.ontology(), &SEQUENCES[0][..n]);
        let omq = Omq { ontology: sys.ontology(), query: &q };
        let lin = LinRewriter::default().rewrite_complete(&omq).unwrap();
        let log = LogRewriter::default().rewrite_complete(&omq).unwrap();
        let tw = TwRewriter::default().rewrite_complete(&omq).unwrap();
        let tw_ucq = TwUcqRewriter::default().rewrite_complete(&omq).unwrap();
        let ucq = if n <= 6 {
            UcqRewriter::default().rewrite_complete(&omq).unwrap().program.num_clauses()
        } else {
            usize::MAX // blows the cap — exactly the Figure 2 story
        };
        counts.push([
            lin.program.num_clauses(),
            log.program.num_clauses(),
            tw.program.num_clauses(),
            tw_ucq.program.num_clauses(),
            ucq,
        ]);
    }
    // Linear growth: increments of the optimal rewritings are bounded.
    for k in 0..3 {
        for pair in counts.windows(2) {
            let inc = pair[1][k] as isize - pair[0][k] as isize;
            assert!(inc <= 24, "rewriter {k} grew by {inc} clauses over 3 atoms");
        }
    }
    // Super-linear growth of the tree-witness UCQ baseline: increments
    // accelerate.
    let incs: Vec<isize> = counts.windows(2).map(|p| p[1][3] as isize - p[0][3] as isize).collect();
    assert!(
        incs.last().unwrap() > incs.first().unwrap(),
        "TwUCQ increments {incs:?} should accelerate"
    );
    // The raw PerfectRef baseline accelerates even faster.
    assert!(counts[1][4] > 5 * counts[0][4]);
}

#[test]
fn all_three_sequences_answer_consistently() {
    // Prefixes of all three sequences over a fixed small instance: all
    // strategies agree with the oracle.
    let sys = system();
    let d = sys
        .parse_data("R(a, b)\nR(b, c)\nS(c, d)\nR(d, e)\nP(p1, a)\nP(c, p2)\nS(e, f)\nR(f, g)\n")
        .unwrap();
    for seq in SEQUENCES {
        for n in 1..=6 {
            let q = word_query(sys.ontology(), &seq[..n]);
            let oracle = sys.certain_answers(&q, &d).tuples();
            for strategy in [Strategy::Lin, Strategy::Log, Strategy::Tw, Strategy::TwStar] {
                let res = sys.answer(&q, &d, strategy).unwrap();
                assert_eq!(res.answers, oracle, "{strategy} on {}-prefix of {seq}", n);
            }
        }
    }
}
