//! Fail-safe pipeline tests: unified budgets, typed errors and graceful
//! degradation, exercised end-to-end — including an adversarial run of the
//! `obda` binary that must always terminate with a typed exit code, never
//! panic and never hang.

use obda::budget::{Budget, BudgetSpec, Resource};
use obda::ndl::eval::EvalError;
use obda::ndl::storage::Database;
use obda::{ObdaError, ObdaSystem, Strategy};
use std::path::PathBuf;
use std::process::Command;
use std::time::Duration;

/// An ontology whose canonical model is an infinite `R`-path (harmless
/// here: with one property the word arena stays small).
const CYCLIC_ONTOLOGY: &str = "A SubClassOf exists R\nexists R- SubClassOf A\n";

/// A cyclic ontology whose anonymous part branches over six properties:
/// the word tree is exponential in the arena bound (`#roles + #vars`), so
/// unbudgeted materialisation would exhaust memory.
fn deep_cyclic_ontology() -> String {
    let mut text = String::from("A SubClassOf exists R1\n");
    for i in 1..=6 {
        for j in 1..=6 {
            text.push_str(&format!("exists R{i}- SubClassOf exists R{j}\n"));
        }
    }
    text
}

/// A role hierarchy making PerfectRef-style UCQ rewriting exponential:
/// every chain atom `R(x_i, x_{i+1})` can independently be specialised to
/// any of the five subproperties, giving `6^8` disjuncts.
const EXPONENTIAL_ONTOLOGY: &str = "P1 SubPropertyOf R\n\
                                    P2 SubPropertyOf R\n\
                                    P3 SubPropertyOf R\n\
                                    P4 SubPropertyOf R\n\
                                    P5 SubPropertyOf R\n";

const EXPONENTIAL_QUERY: &str = "q(x0, x8) :- R(x0, x1), R(x1, x2), R(x2, x3), R(x3, x4), \
                                 R(x4, x5), R(x5, x6), R(x6, x7), R(x7, x8)";

/// A chain matching [`EXPONENTIAL_QUERY`] through the subproperties.
const EXPONENTIAL_DATA: &str = "P1(c0, c1)\nR(c1, c2)\nP2(c2, c3)\nR(c3, c4)\n\
                                P3(c4, c5)\nR(c5, c6)\nP4(c6, c7)\nR(c7, c8)\n";

// ---------------------------------------------------------------------------
// Chase divergence guard
// ---------------------------------------------------------------------------

#[test]
fn cyclic_chase_trips_budget_with_partial_stats() {
    let sys = ObdaSystem::from_text(&deep_cyclic_ontology()).unwrap();
    let q = sys.parse_query("q() :- A(x)").unwrap();
    let d = sys.parse_data("A(a)\n").unwrap();
    let mut budget = BudgetSpec { max_chase_elements: Some(50), ..BudgetSpec::unlimited() }.start();
    let err = sys.certain_answers_budgeted(&q, &d, &mut budget).unwrap_err();
    let ObdaError::Chase(chase) = err else {
        panic!("expected a chase budget error, got {err}");
    };
    assert_eq!(chase.exceeded.resource, Resource::ChaseElements);
    assert!(chase.elements > 0, "partial element count must be reported");
    assert!(ObdaError::Chase(chase).is_budget());
}

#[test]
fn cyclic_chase_respects_wall_clock() {
    let sys = ObdaSystem::from_text(&deep_cyclic_ontology()).unwrap();
    let q = sys.parse_query("q() :- A(x)").unwrap();
    let d = sys.parse_data("A(a)\n").unwrap();
    let start = std::time::Instant::now();
    let mut budget = Budget::with_timeout(Duration::from_millis(200));
    let res = sys.certain_answers_budgeted(&q, &d, &mut budget);
    assert!(res.is_err(), "the exponential word tree must trip the deadline");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "the guard must fire promptly, took {:?}",
        start.elapsed()
    );
}

#[test]
fn harmless_cyclic_ontology_still_answers() {
    // One property: the depth bound keeps the arena small, so the same
    // budgeted path completes and agrees with the rewriting.
    let sys = ObdaSystem::from_text(CYCLIC_ONTOLOGY).unwrap();
    let q = sys.parse_query("q(x) :- A(x)").unwrap();
    let d = sys.parse_data("A(a)\nR(b, a)\n").unwrap();
    let mut budget = Budget::with_timeout(Duration::from_secs(30));
    let oracle = sys.certain_answers_budgeted(&q, &d, &mut budget).unwrap().tuples();
    let res = sys.answer(&q, &d, Strategy::Tw).unwrap();
    assert_eq!(res.answers, oracle);
    assert!(!oracle.is_empty());
}

// ---------------------------------------------------------------------------
// Evaluation budgets are consistent across engines and strategies
// ---------------------------------------------------------------------------

#[test]
fn eval_budget_returns_partial_stats_across_strategies() {
    let sys = ObdaSystem::from_text("P SubPropertyOf S\nP SubPropertyOf R-\n").unwrap();
    let q = sys.parse_query("q(x0, x3) :- R(x0, x1), S(x1, x2), R(x2, x3)").unwrap();
    let d = sys.parse_data("P(w, a)\nR(a, b)\nR(b, c)\nS(c, d)\nR(d, e)\n").unwrap();
    let db = Database::new(&d);
    let oracle = sys.certain_answers(&q, &d).tuples();
    for strategy in [Strategy::Lin, Strategy::Log, Strategy::Tw, Strategy::TwStar] {
        let prepared = sys.prepare(&q, strategy).unwrap();
        let mut budget = BudgetSpec { max_tuples: Some(1), ..BudgetSpec::unlimited() }.start();
        let err = prepared.execute_budgeted(&db, &mut budget).unwrap_err();
        let EvalError::TupleLimit(stats) = &err else {
            panic!("strategy {strategy}: expected TupleLimit, got {err}");
        };
        assert_eq!(stats.num_answers, 0, "strategy {strategy}: interrupted before the goal");
        // The linear engine reports the same typed error on the same budget.
        if prepared.analysis().linear {
            let mut budget = BudgetSpec { max_tuples: Some(1), ..BudgetSpec::unlimited() }.start();
            let lin_err = prepared.execute_linear_budgeted(&db, &mut budget).unwrap_err();
            assert!(
                matches!(lin_err, EvalError::TupleLimit(_)),
                "strategy {strategy}: linear engine must agree, got {lin_err}"
            );
        }
        // The same prepared query still answers correctly with a fresh,
        // unconstrained budget: tripping leaves no poisoned state.
        let res = prepared.execute_budgeted(&db, &mut Budget::unlimited()).unwrap();
        assert_eq!(res.answers, oracle, "strategy {strategy}");
    }
}

// ---------------------------------------------------------------------------
// Fallback ladder
// ---------------------------------------------------------------------------

#[test]
fn fallback_ladder_degrades_from_exponential_to_polynomial() {
    let sys = ObdaSystem::from_text(EXPONENTIAL_ONTOLOGY).unwrap();
    let q = sys.parse_query(EXPONENTIAL_QUERY).unwrap();
    let d = sys.parse_data(EXPONENTIAL_DATA).unwrap();
    // A clause budget the 6^8-disjunct UCQ cannot fit but Tw easily can.
    let spec = BudgetSpec { max_clauses: Some(5_000), ..BudgetSpec::unlimited() };
    let report = sys.answer_with_fallback(&q, &d, Strategy::Ucq, &spec);
    assert!(report.winner.is_some(), "a polynomial strategy must win:\n{report}");
    assert!(report.attempts.len() >= 2, "UCQ must have been tried and failed first");
    assert!(
        matches!(
            report.attempts[0].outcome,
            obda::AttemptOutcome::RewriteFailed(ref e) if e.is_budget()
        ),
        "the UCQ attempt must fail on the clause budget:\n{report}"
    );
    let oracle = sys.certain_answers(&q, &d).tuples();
    assert!(!oracle.is_empty());
    assert_eq!(report.result().unwrap().answers, oracle, "fallback answers must be correct");
    assert_ne!(report.winning_strategy(), Some(Strategy::Ucq));
}

#[test]
fn fallback_report_all_exhausted_when_nothing_fits() {
    let sys = ObdaSystem::from_text("A SubClassOf exists P\n").unwrap();
    let q = sys.parse_query("q(x) :- P(x, y)").unwrap();
    let d = sys.parse_data("A(a)\n").unwrap();
    let spec = BudgetSpec { max_clauses: Some(1), ..BudgetSpec::unlimited() };
    let report = sys.answer_with_fallback(&q, &d, Strategy::Adaptive, &spec);
    assert!(report.winner.is_none());
    assert!(report.all_exhausted(), "every attempt tripped the clause budget:\n{report}");
    assert!(report.final_error().is_some_and(|e| e.is_budget()));
}

#[test]
fn adaptive_rewriter_survives_per_candidate_budget_trips() {
    // Adaptive renews the budget per candidate: one candidate blowing its
    // counters must not starve the next.
    let sys = ObdaSystem::from_text(EXPONENTIAL_ONTOLOGY).unwrap();
    let q = sys.parse_query(EXPONENTIAL_QUERY).unwrap();
    let d = sys.parse_data(EXPONENTIAL_DATA).unwrap();
    let spec = BudgetSpec { max_clauses: Some(5_000), ..BudgetSpec::unlimited() };
    let res = sys.answer_with_budget(&q, &d, Strategy::Adaptive, &spec).unwrap();
    assert_eq!(res.answers, sys.certain_answers(&q, &d).tuples());
}

// ---------------------------------------------------------------------------
// Panic isolation: a clause task that panics must surface as a typed
// internal error, never as a process-level panic.
// ---------------------------------------------------------------------------

#[test]
fn panicking_clause_task_is_a_typed_internal_error() {
    use obda::ndl::engine::{evaluate_engine_on_budgeted, EngineConfig};
    use obda::ndl::program::{BodyAtom, CVar, Clause, NdlQuery, PredKind, Program};
    use obda::owlql::parser::{parse_data, parse_ontology};

    // The EDB property `R` stores width-2 rows, but this hand-built
    // program declares it with arity 3 — so the clause task indexes past
    // the row at runtime. The engine must catch the panic at the task
    // boundary, cancel any sibling workers and return the typed
    // `Internal` error.
    let o = parse_ontology("Property R\n").unwrap();
    let d = parse_data("R(a, b)\nR(b, c)\n", &o).unwrap();
    let v = o.vocab();
    let mut p = Program::new();
    let r = p.add_pred("R", 3, PredKind::EdbProp(v.get_prop("R").unwrap()));
    let g = p.add_pred("G", 1, PredKind::Idb);
    p.add_clause(Clause {
        head: g,
        head_args: vec![CVar(0)],
        body: vec![BodyAtom::Pred(r, vec![CVar(0), CVar(1), CVar(2)])],
        num_vars: 3,
    });
    let q = NdlQuery::new(p, g);
    let db = Database::new(&d);
    for threads in [1, 4] {
        let cfg = EngineConfig { threads, prune: false, chunk_min_rows: 1, plan: true };
        let err = evaluate_engine_on_budgeted(&q, &db, &mut Budget::unlimited(), &cfg).unwrap_err();
        let EvalError::Internal { site, .. } = &err else {
            panic!("threads={threads}: expected Internal, got {err}");
        };
        assert_eq!(site, "ndl::engine::clause_task", "threads={threads}");
        // Lifting into the pipeline taxonomy keeps it typed and
        // non-retryable: a panic is a bug, not a resource problem.
        let lifted: ObdaError = err.into();
        assert!(matches!(lifted, ObdaError::Internal { .. }), "threads={threads}");
        assert!(!lifted.is_budget() && !lifted.is_transient(), "threads={threads}");
    }
}

// ---------------------------------------------------------------------------
// PipelineReport error paths: mixed retry/degrade attempts expose typed,
// ordered outcomes through every report helper.
// ---------------------------------------------------------------------------

#[test]
fn report_error_paths_expose_typed_outcomes_in_order() {
    use obda::{Attempt, AttemptOutcome, PipelineReport};

    // A ladder run as the service would record it: Tw faults transiently,
    // is retried once, faults again; Log then panics. No winner.
    let attempt = |strategy, retry, outcome| Attempt {
        strategy,
        retry,
        outcome,
        clauses: Some(12),
        duration: Duration::from_millis(3),
    };
    let report = PipelineReport {
        attempts: vec![
            attempt(
                Strategy::Tw,
                0,
                AttemptOutcome::Transient { site: "ndl::storage::insert".into() },
            ),
            attempt(
                Strategy::Tw,
                1,
                AttemptOutcome::Transient { site: "ndl::storage::insert".into() },
            ),
            attempt(
                Strategy::Log,
                0,
                AttemptOutcome::Panicked {
                    site: "ndl::engine::clause_task".into(),
                    payload: "index out of bounds".into(),
                },
            ),
        ],
        winner: None,
    };
    assert_eq!(report.winning_strategy(), None);
    assert!(report.result().is_none());
    assert_eq!(report.num_retries(), 1);
    // Faults and panics are NOT "the instance is too big for the budget".
    assert!(!report.all_exhausted());
    // The decisive error is the last attempt's, fully typed.
    let err = report.final_error().unwrap();
    let ObdaError::Internal { site, payload } = &err else {
        panic!("expected Internal, got {err}");
    };
    assert_eq!(site, "ndl::engine::clause_task");
    assert_eq!(payload, "index out of bounds");
    // Retries are recorded in order and rendered with their retry number.
    assert_eq!(report.attempts[0].retry, 0);
    assert_eq!(report.attempts[1].retry, 1);
    let text = report.to_string();
    assert!(text.contains("(retry 1)"), "report: {text}");
    assert!(text.contains("transient fault at ndl::storage::insert"), "report: {text}");
    assert!(text.contains("panicked at ndl::engine::clause_task"), "report: {text}");
}

#[test]
fn report_budget_failures_still_count_as_exhausted() {
    // A pure budget-trip ladder (no faults) keeps the "all exhausted"
    // verdict even with retries recorded on other paths.
    let sys = ObdaSystem::from_text("A SubClassOf exists P\n").unwrap();
    let q = sys.parse_query("q(x) :- P(x, y)").unwrap();
    let d = sys.parse_data("A(a)\n").unwrap();
    let spec = BudgetSpec { max_clauses: Some(1), ..BudgetSpec::unlimited() };
    let report = sys.answer_with_fallback(&q, &d, Strategy::Adaptive, &spec);
    assert!(report.all_exhausted());
    assert_eq!(report.num_retries(), 0, "budget trips are never retried:\n{report}");
    assert!(report.final_error().is_some_and(|e| !e.is_transient() && e.is_budget()));
}

// ---------------------------------------------------------------------------
// Adversarial CLI suite: 1-second budgets, malformed inputs, cyclic and
// exponential instances. Every run must terminate with a typed exit code.
// ---------------------------------------------------------------------------

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Fixture {
        let dir = std::env::temp_dir().join(format!("obda_failsafe_{}_{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        Fixture { dir }
    }

    fn file(&self, name: &str, contents: &str) -> String {
        let path = self.dir.join(name);
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_obda")).args(args).output().unwrap();
    (
        out.status.code().expect("CLI must exit, not die on a signal"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn cli_threads_and_pruning_flags_answer_identically() {
    let fx = Fixture::new("threads");
    let o = fx.file("o.owlql", "A SubClassOf exists R\nP SubPropertyOf R\n");
    let q = fx.file("q.cq", "q(x) :- R(x, y)");
    let d = fx.file("d.abox", "A(a)\nP(b, c)\nR(c, d)\n");
    let base = ["answer", "--ontology", &o, "--query", &q, "--data", &d, "--oracle"];
    let mut outputs = Vec::new();
    for extra in [&[][..], &["--threads", "4"][..], &["--threads", "0", "--no-prune"][..]] {
        let mut args: Vec<&str> = base.to_vec();
        args.extend_from_slice(extra);
        let (code, out, err) = run_cli(&args);
        assert_eq!(code, 0, "args {args:?}, stderr: {err}");
        assert!(err.contains("oracle agrees"), "stderr: {err}");
        outputs.push(out);
    }
    assert!(outputs.iter().all(|o| o == &outputs[0]), "answers differ across engines");
    // A malformed thread count is a usage error.
    let (code, _, _) = run_cli(&["answer", "--threads", "many"]);
    assert_eq!(code, 2);
}

#[test]
fn cli_rejects_unknown_commands_and_flags_with_usage() {
    let (code, _, err) = run_cli(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(err.contains("usage:"));
    let (code, _, err) = run_cli(&["answer", "--frobnicate"]);
    assert_eq!(code, 2);
    assert!(err.contains("usage:"));
    let (code, _, _) = run_cli(&["answer", "--budget-secs", "not-a-number"]);
    assert_eq!(code, 2);
}

/// A quota that can never admit anything is a configuration mistake, not
/// a valid hardening choice: the CLI must refuse it up front with a clear
/// message, not boot a server that 429s every request forever.
#[test]
fn cli_rejects_unadmittable_quotas_with_a_clear_error() {
    for (flag, value, hint) in [
        ("--quota-rate", "0", "--quota-rate must be a positive number"),
        ("--quota-rate", "-3", "--quota-rate must be a positive number"),
        ("--quota-burst", "0", "--quota-burst must be at least 1"),
        ("--quota-burst", "0.5", "--quota-burst must be at least 1"),
    ] {
        let (code, _, err) = run_cli(&["serve", flag, value]);
        assert_eq!(code, 2, "{flag} {value} must be a usage error, stderr: {err}");
        assert!(err.contains(hint), "{flag} {value} needs a clear message, got: {err}");
        assert!(err.contains("admit nothing"), "{flag} {value} should say why: {err}");
        assert!(err.contains("usage:"), "the usage line still prints: {err}");
    }
    // Positive values still parse (the server then fails later only for
    // the missing --ontology, which is not a usage error).
    let (code, _, err) = run_cli(&["serve", "--quota-rate", "5", "--quota-burst", "10"]);
    assert_ne!(code, 2, "valid quotas must not be usage errors, stderr: {err}");
}

/// The drift guard for the CLI's exit-code contract: `--help` must exit 0
/// and its exit-code table must name every code 0–9 with the right
/// meaning, so a new `CliError` variant cannot ship undocumented.
#[test]
fn cli_help_names_every_exit_code() {
    let (code, out, _) = run_cli(&["--help"]);
    assert_eq!(code, 0, "--help must exit 0, not be treated as a usage error");
    assert!(out.contains("exit codes:"), "help lacks the exit-code table:\n{out}");
    let table: Vec<&str> = out.lines().skip_while(|l| !l.contains("exit codes:")).collect();
    for (digit, hint) in [
        ("0", "success"),
        ("1", "internal"),
        ("2", "usage"),
        ("3", "parse"),
        ("4", "rewriting"),
        ("5", "evaluation"),
        ("6", "budget"),
        ("7", "oracle"),
        ("8", "panic"),
        ("9", "admission"),
    ] {
        let row = table
            .iter()
            .find(|l| l.trim_start().starts_with(&format!("{digit} ")))
            .unwrap_or_else(|| panic!("help does not document exit code {digit}:\n{out}"));
        assert!(row.contains(hint), "exit code {digit} row should mention '{hint}': {row}");
    }
    // Every subcommand is listed, including the server.
    for cmd in ["classify", "rewrite", "explain", "answer", "build", "dbinfo", "serve"] {
        assert!(out.contains(cmd), "help does not mention the '{cmd}' command:\n{out}");
    }
    // `-h` is the same door, and `--help` wins even next to other args.
    let (code, short, _) = run_cli(&["-h"]);
    assert_eq!(code, 0);
    assert_eq!(short, out);
    let (code, _, _) = run_cli(&["serve", "--help"]);
    assert_eq!(code, 0);
}

#[test]
fn cli_reports_malformed_inputs_as_parse_errors() {
    let fx = Fixture::new("malformed");
    let good_onto = fx.file("o.owlql", "A SubClassOf exists R\n");
    let good_query = fx.file("q.cq", "q(x) :- R(x, y)");
    let good_data = fx.file("d.abox", "A(a)\n");
    let bad_onto = fx.file("bad.owlql", "A SubClassOf SubClassOf ((\n");
    let bad_query = fx.file("bad.cq", "q)x( :- R(x, y)");
    let bad_data = fx.file("bad.abox", ") R(a\n");

    for (o, q, d) in [
        (&bad_onto, &good_query, &good_data),
        (&good_onto, &bad_query, &good_data),
        (&good_onto, &good_query, &bad_data),
    ] {
        let (code, _, err) =
            run_cli(&["answer", "--ontology", o, "--query", q, "--data", d, "--budget-secs", "1"]);
        assert_eq!(code, 3, "stderr: {err}");
        assert!(err.contains("parse error"), "stderr: {err}");
    }
}

#[test]
fn cli_exponential_ucq_terminates_within_budget() {
    let fx = Fixture::new("exponential");
    let o = fx.file("o.owlql", EXPONENTIAL_ONTOLOGY);
    let q = fx.file("q.cq", EXPONENTIAL_QUERY);
    let d = fx.file("d.abox", EXPONENTIAL_DATA);
    // Pinned to the exponential strategy with no fallback: budget exhaustion.
    let start = std::time::Instant::now();
    let (code, _, err) = run_cli(&[
        "answer",
        "--ontology",
        &o,
        "--query",
        &q,
        "--data",
        &d,
        "--strategy",
        "ucq",
        "--no-fallback",
        "--budget-secs",
        "1",
        "--budget-clauses",
        "5000",
    ]);
    assert_eq!(code, 6, "stderr: {err}");
    assert!(start.elapsed() < Duration::from_secs(30), "took {:?}", start.elapsed());
    // Same instance with the fallback ladder: a polynomial strategy answers.
    let (code, out, err) = run_cli(&[
        "answer",
        "--ontology",
        &o,
        "--query",
        &q,
        "--data",
        &d,
        "--strategy",
        "ucq",
        "--budget-secs",
        "30",
        "--budget-clauses",
        "5000",
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("(c0, c8)"), "stdout: {out}");
    assert!(err.contains("rewrite failed"), "the UCQ attempt must appear in the report: {err}");
}

#[test]
fn cli_cyclic_ontology_terminates_with_typed_outcome() {
    let fx = Fixture::new("cyclic");
    let o = fx.file("o.owlql", CYCLIC_ONTOLOGY);
    let q = fx.file("q.cq", "q(x) :- A(x)");
    let d = fx.file("d.abox", "A(a)\n");
    // The harmless single-property cycle answers normally.
    let (code, out, err) =
        run_cli(&["answer", "--ontology", &o, "--query", &q, "--data", &d, "--budget-secs", "5"]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("(a)"));
    // The six-property cycle makes the chase oracle's word tree exponential:
    // the chase-element budget trips (in the oracle, or already in a
    // rewriter's generator models) instead of exhausting memory.
    let deep = fx.file("deep.owlql", &deep_cyclic_ontology());
    let start = std::time::Instant::now();
    let (code, _, err) = run_cli(&[
        "answer",
        "--ontology",
        &deep,
        "--query",
        &q,
        "--data",
        &d,
        "--oracle",
        "--budget-secs",
        "1",
        "--budget-chase",
        "100",
    ]);
    assert_eq!(code, 6, "stderr: {err}");
    assert!(start.elapsed() < Duration::from_secs(30), "took {:?}", start.elapsed());
}

#[test]
fn cli_trace_preserves_exit_codes_across_failure_classes() {
    let fx = Fixture::new("trace_codes");
    let o = fx.file("o.owlql", "A SubClassOf exists R\n");
    let q = fx.file("q.cq", "q(x) :- R(x, y)");
    let d = fx.file("d.abox", "A(a)\n");

    // Success (0): the span tree covers the whole request on stderr and the
    // answers stay on stdout.
    let (code, out, err) =
        run_cli(&["answer", "--ontology", &o, "--query", &q, "--data", &d, "--oracle", "--trace"]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("(a)"), "stdout: {out}");
    for span in ["request", "parse:ontology", "attempt", "eval", "oracle-check"] {
        assert!(err.contains(span), "missing {span} span in trace:\n{err}");
    }
    assert!(!err.contains("!error"), "a clean run must not tag errors:\n{err}");

    // Usage error (2): rejected before a request span can exist.
    let (code, _, err) = run_cli(&["answer", "--frobnicate", "--trace"]);
    assert_eq!(code, 2);
    assert!(err.contains("usage:"));
    let (code, _, _) = run_cli(&["answer", "--trace=yaml"]);
    assert_eq!(code, 2, "unknown trace formats are usage errors");

    // Parse error (3): the request root is error-tagged, exit code unchanged.
    let bad = fx.file("bad.owlql", "A SubClassOf SubClassOf ((\n");
    let (code, _, err) =
        run_cli(&["answer", "--ontology", &bad, "--query", &q, "--data", &d, "--trace"]);
    assert_eq!(code, 3, "stderr: {err}");
    assert!(err.contains("request"), "stderr: {err}");
    assert!(err.contains("!error"), "the failure must be span-tagged: {err}");

    // Budget exhaustion (6) with --trace=json: a machine-readable span tree
    // still lands on stderr, error field set on the root.
    let eo = fx.file("eo.owlql", EXPONENTIAL_ONTOLOGY);
    let eq = fx.file("eq.cq", EXPONENTIAL_QUERY);
    let ed = fx.file("ed.abox", EXPONENTIAL_DATA);
    let (code, _, err) = run_cli(&[
        "answer",
        "--ontology",
        &eo,
        "--query",
        &eq,
        "--data",
        &ed,
        "--strategy",
        "ucq",
        "--no-fallback",
        "--budget-secs",
        "1",
        "--budget-clauses",
        "5000",
        "--trace=json",
    ]);
    assert_eq!(code, 6, "stderr: {err}");
    let json = err
        .lines()
        .find(|l| l.starts_with('['))
        .unwrap_or_else(|| panic!("no JSON span tree on stderr:\n{err}"));
    assert!(json.contains("\"name\":\"request\""), "json: {json}");
    assert!(json.contains(",\"error\":\""), "the root must carry the failure: {json}");
}

#[test]
fn cli_timeout_covers_the_rewriting_stage() {
    // Tw's tree-witness computation materialises generator models; on the
    // deep cyclic ontology only the wall clock can interrupt it, so a
    // completed run proves `--timeout-secs` now gates rewriting.
    let fx = Fixture::new("rewrite_timeout");
    let o = fx.file("deep.owlql", &deep_cyclic_ontology());
    let q = fx.file("q.cq", "q(x) :- R1(x, y), R1(y, z)");
    let start = std::time::Instant::now();
    let (code, _, err) = run_cli(&[
        "rewrite",
        "--ontology",
        &o,
        "--query",
        &q,
        "--strategy",
        "tw",
        "--timeout-secs",
        "1",
    ]);
    assert_eq!(code, 6, "--timeout-secs must interrupt rewriting; stderr: {err}");
    assert!(start.elapsed() < Duration::from_secs(30), "took {:?}", start.elapsed());
}
