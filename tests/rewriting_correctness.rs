//! Property-based cross-validation: for random (ontology, query, data)
//! triples, every rewriting strategy must compute exactly the certain
//! answers of the chase oracle — the central correctness invariant of the
//! reproduction.

use obda::{ObdaSystem, Strategy as Rewriting};
use obda_cq::query::Cq;
use obda_owlql::abox::DataInstance;
use obda_owlql::axiom::{Axiom, ClassExpr};
use obda_owlql::vocab::{Role, Vocab};
use obda_owlql::Ontology;
use proptest::prelude::*;

const NUM_CLASSES: u8 = 3;
const NUM_PROPS: u8 = 3;

fn base_vocab() -> Vocab {
    let mut v = Vocab::new();
    for i in 0..NUM_CLASSES {
        v.class(&format!("A{i}"));
    }
    for i in 0..NUM_PROPS {
        v.prop(&format!("P{i}"));
    }
    v
}

/// A compact encoding of a random axiom.
#[derive(Debug, Clone, Copy)]
struct AxiomSpec {
    kind: u8,
    a: u8,
    b: u8,
    flip: bool,
}

fn class_expr(idx: u8, flip: bool) -> ClassExpr {
    // Alternate between named classes and existentials.
    if idx.is_multiple_of(2) {
        ClassExpr::Class(obda_owlql::ClassId((idx / 2 % NUM_CLASSES) as u32))
    } else {
        ClassExpr::Exists(Role {
            prop: obda_owlql::PropId((idx / 2 % NUM_PROPS) as u32),
            inverse: flip,
        })
    }
}

fn build_ontology(specs: &[AxiomSpec]) -> Ontology {
    let axioms = specs
        .iter()
        .map(|s| match s.kind % 3 {
            0 => Axiom::SubClass(class_expr(s.a, s.flip), class_expr(s.b, !s.flip)),
            1 => Axiom::SubRole(
                Role { prop: obda_owlql::PropId((s.a % NUM_PROPS) as u32), inverse: s.flip },
                Role { prop: obda_owlql::PropId((s.b % NUM_PROPS) as u32), inverse: !s.flip },
            ),
            _ => Axiom::SubClass(
                class_expr(s.a, s.flip),
                ClassExpr::Exists(Role {
                    prop: obda_owlql::PropId((s.b % NUM_PROPS) as u32),
                    inverse: !s.flip,
                }),
            ),
        })
        .collect();
    Ontology::new(base_vocab(), axioms)
}

/// A random tree-shaped query: `parents[i]` < i+1 gives the tree over
/// variables v0..=n; each edge carries a property and an orientation;
/// class atoms and answer variables are sprinkled on top.
#[derive(Debug, Clone)]
struct QuerySpec {
    edges: Vec<(u8, u8, bool)>, // (parent choice, prop, orientation)
    class_atoms: Vec<(u8, u8)>, // (var choice, class)
    num_answer: u8,
}

fn build_query(spec: &QuerySpec, ontology: &Ontology) -> Cq {
    let vocab = ontology.vocab();
    let mut q = Cq::new();
    let n = spec.edges.len() + 1;
    let vars: Vec<_> = (0..n).map(|i| q.var(&format!("v{i}"))).collect();
    for (i, &(parent, prop, orient)) in spec.edges.iter().enumerate() {
        let child = vars[i + 1];
        let parent = vars[parent as usize % (i + 1)];
        let p = vocab.get_prop(&format!("P{}", prop % NUM_PROPS)).expect("prop");
        if orient {
            q.add_prop_atom(p, parent, child);
        } else {
            q.add_prop_atom(p, child, parent);
        }
    }
    for &(var, class) in &spec.class_atoms {
        let c = vocab.get_class(&format!("A{}", class % NUM_CLASSES)).expect("class");
        q.add_class_atom(c, vars[var as usize % n]);
    }
    for &v in vars.iter().take(spec.num_answer as usize % (n + 1)) {
        q.add_answer_var(v);
    }
    q
}

fn build_data(atoms: &[(u8, u8, u8)], ontology: &Ontology) -> DataInstance {
    let vocab = ontology.vocab();
    let mut d = DataInstance::new();
    let consts: Vec<_> = (0..4).map(|i| d.constant(&format!("c{i}"))).collect();
    for &(kind, s, o) in atoms {
        if kind % 3 == 0 {
            let c = vocab.get_class(&format!("A{}", kind / 3 % NUM_CLASSES)).expect("class");
            d.add_class_atom(c, consts[s as usize % 4]);
        } else {
            let p = vocab.get_prop(&format!("P{}", kind / 3 % NUM_PROPS)).expect("prop");
            d.add_prop_atom(p, consts[s as usize % 4], consts[o as usize % 4]);
        }
    }
    d
}

fn axiom_spec() -> impl Strategy<Value = AxiomSpec> {
    (0u8..6, 0u8..12, 0u8..12, any::<bool>()).prop_map(|(kind, a, b, flip)| AxiomSpec {
        kind,
        a,
        b,
        flip,
    })
}

fn query_spec() -> impl Strategy<Value = QuerySpec> {
    (
        prop::collection::vec((any::<u8>(), 0u8..NUM_PROPS, any::<bool>()), 1..5),
        prop::collection::vec((any::<u8>(), 0u8..NUM_CLASSES), 0..3),
        any::<u8>(),
    )
        .prop_map(|(edges, class_atoms, num_answer)| QuerySpec {
            edges,
            class_atoms,
            num_answer,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, .. ProptestConfig::default() })]

    /// Every strategy that accepts the OMQ computes the oracle's answers.
    #[test]
    fn all_strategies_match_the_oracle(
        axioms in prop::collection::vec(axiom_spec(), 0..6),
        qspec in query_spec(),
        data_atoms in prop::collection::vec((0u8..9, 0u8..4, 0u8..4), 0..10),
    ) {
        let ontology = build_ontology(&axioms);
        let query = build_query(&qspec, &ontology);
        let data = build_data(&data_atoms, &ontology);
        let system = ObdaSystem::new(ontology);
        let oracle = system.certain_answers(&query, &data).tuples();
        for strategy in Rewriting::ALL {
            match system.answer(&query, &data, strategy) {
                Ok(result) => prop_assert_eq!(
                    &result.answers, &oracle,
                    "strategy {} disagrees with the oracle on q = {}",
                    strategy, query.to_text(system.ontology().vocab())
                ),
                // Lin/Log refuse infinite-depth ontologies; baselines can
                // hit their caps. Tw and the oracle always apply to trees.
                Err(obda::ObdaError::Rewrite(_)) => {}
                Err(e) => return Err(TestCaseError::fail(format!("{strategy}: {e}"))),
            }
        }
        // Tw accepts every generated OMQ (tree-shaped, any depth), so at
        // least one strategy was actually exercised.
        prop_assert!(system.answer(&query, &data, Rewriting::Tw).is_ok());
    }

    /// The parallel, goal-directed engine matches the chase oracle end to
    /// end: relevance-pruned, stratum-scheduled evaluation at every thread
    /// count of the matrix (`OBDA_TEST_THREADS`, default `1,2,4`) computes
    /// the certain answers on random OMQs, closing the differential chain
    /// parallel = sequential = reference = oracle.
    #[test]
    fn parallel_engine_matches_the_oracle(
        axioms in prop::collection::vec(axiom_spec(), 0..6),
        qspec in query_spec(),
        data_atoms in prop::collection::vec((0u8..9, 0u8..4, 0u8..4), 0..10),
    ) {
        use obda::budget::BudgetSpec;
        use obda_ndl::engine::EngineConfig;

        let ontology = build_ontology(&axioms);
        let query = build_query(&qspec, &ontology);
        let data = build_data(&data_atoms, &ontology);
        let system = ObdaSystem::new(ontology);
        let oracle = system.certain_answers(&query, &data).tuples();
        let threads: Vec<usize> = match std::env::var("OBDA_TEST_THREADS") {
            Ok(spec) => spec.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
            Err(_) => vec![1, 2, 4],
        };
        let spec = BudgetSpec::unlimited();
        for n in threads {
            for prune in [false, true] {
                let cfg = EngineConfig { threads: n, prune, ..EngineConfig::default() };
                let res = system
                    .answer_with_budget_engine(&query, &data, Rewriting::Tw, &spec, &cfg)
                    .unwrap();
                prop_assert_eq!(
                    &res.answers, &oracle,
                    "engine (threads={}, prune={}) disagrees with the oracle on q = {}",
                    n, prune, query.to_text(system.ontology().vocab())
                );
            }
        }
    }

    /// The skinny transformation preserves answers on Log rewritings and
    /// meets its depth bound.
    #[test]
    fn skinny_transform_preserves_log_rewritings(
        axioms in prop::collection::vec(axiom_spec(), 0..5),
        qspec in query_spec(),
        data_atoms in prop::collection::vec((0u8..9, 0u8..4, 0u8..4), 0..8),
    ) {
        use obda_ndl::analysis::analyze;
        use obda_ndl::eval::{evaluate, EvalOptions};
        use obda_ndl::skinny::to_skinny;

        let ontology = build_ontology(&axioms);
        let query = build_query(&qspec, &ontology);
        let data = build_data(&data_atoms, &ontology);
        let system = ObdaSystem::new(ontology);
        let Ok(rewriting) = system.rewrite(&query, Rewriting::Log) else {
            return Ok(()); // infinite depth
        };
        let skinny = to_skinny(&rewriting);
        let before = analyze(&rewriting);
        let after = analyze(&skinny);
        prop_assert!(after.skinny);
        prop_assert!(after.depth <= before.skinny_depth);
        let r1 = evaluate(&rewriting, &data, &EvalOptions::default()).unwrap();
        let r2 = evaluate(&skinny, &data, &EvalOptions::default()).unwrap();
        prop_assert_eq!(r1.answers, r2.answers);
    }

    /// The linear evaluator of Theorem 2 agrees with bottom-up
    /// materialisation on Lin rewritings.
    #[test]
    fn linear_evaluator_agrees_with_bottom_up(
        axioms in prop::collection::vec(axiom_spec(), 0..5),
        qspec in query_spec(),
        data_atoms in prop::collection::vec((0u8..9, 0u8..4, 0u8..4), 0..8),
    ) {
        use obda_ndl::eval::{evaluate, EvalOptions};
        use obda_ndl::linear_eval::evaluate_linear;

        let ontology = build_ontology(&axioms);
        let query = build_query(&qspec, &ontology);
        let data = build_data(&data_atoms, &ontology);
        let system = ObdaSystem::new(ontology);
        let Ok(rewriting) = system.rewrite(&query, Rewriting::Lin) else {
            return Ok(());
        };
        prop_assert!(obda_ndl::analysis::is_linear(&rewriting.program));
        let bu = evaluate(&rewriting, &data, &EvalOptions::default()).unwrap();
        let lin = evaluate_linear(&rewriting, &data, &EvalOptions::default()).unwrap();
        prop_assert_eq!(bu.answers, lin.answers);
    }
}
