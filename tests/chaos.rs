//! Chaos suite (requires `--features faults`): deterministic fault
//! injection across every registered site, asserting the system-wide
//! robustness invariants:
//!
//! 1. **Never a wrong answer** — under arbitrary injected faults, a
//!    request returns either exactly the chase-oracle answer or a typed
//!    error.
//! 2. **Never an escaped panic** — injected panics (and the transient
//!    faults raised by unwinding) are always caught at an isolation
//!    boundary; nothing unwinds out of the public API.
//! 3. **The service survives** — the admission gate keeps accepting and
//!    answering after any number of consecutive failed requests.

use obda::budget::BudgetSpec;
use obda::faults::{site, FaultKind, FaultPlan, FaultSpec, Trigger};
use obda::ndl::engine::EngineConfig;
use obda::owlql::abox::ConstId;
use obda::{
    AttemptOutcome, ObdaError, ObdaSystem, OverloadConfig, QueryService, RetryPolicy,
    ServiceConfig, Strategy,
};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;
use std::time::Duration;

const ONTOLOGY: &str = "Professor SubClassOf exists teaches\n\
                        exists teaches- SubClassOf Course\n";
const QUERY: &str = "q(x) :- teaches(x, y), Course(y)";
const DATA: &str = "Professor(ada)\nProfessor(bob)\nteaches(carol, logic)\nCourse(logic)\n";

/// Routes injected-fault panics to silence (they are the *point* of this
/// suite) while forwarding genuine panics — assertion failures included —
/// to the previous hook. The store's typed lazy-hydration panics
/// ("snapshot segment … failed to hydrate") are silenced too: the
/// corruption sweeps below raise them deliberately, thousands of times.
/// Installed once for the whole test binary.
fn quiet_injected_panics() {
    static QUIET: Once = Once::new();
    QUIET.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let p = info.payload();
            let deliberate = p.downcast_ref::<obda::faults::FaultError>().is_some()
                || p.downcast_ref::<String>().is_some_and(|s| {
                    s.starts_with("injected panic at") || s.starts_with("snapshot segment ")
                });
            if !deliberate {
                prev(info);
            }
        }));
    });
}

/// A fast retry policy so full-sweep tests do not sleep their time away.
fn fast_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_micros(50),
        max_backoff: Duration::from_millis(1),
        seed: 0x0bda_5eed,
    }
}

fn service(engine: Option<EngineConfig>) -> QueryService {
    let system = ObdaSystem::from_text(ONTOLOGY).unwrap();
    QueryService::new(
        system,
        ServiceConfig {
            max_concurrency: 2,
            max_queue: 8,
            budget: BudgetSpec::unlimited(),
            retry: fast_retry(),
            engine,
            overload: OverloadConfig::default(),
        },
    )
}

fn engine_cfg(threads: usize) -> EngineConfig {
    EngineConfig { threads, prune: true, chunk_min_rows: 16, plan: true }
}

/// Runs one request under the *currently armed* plan and asserts the core
/// invariants: no escaped panic, and either the oracle answer or a typed
/// error. Returns whether the request succeeded.
fn assert_sound(svc: &QueryService, oracle: &[Vec<ConstId>], ctx: &str) -> bool {
    let query = svc.system().parse_query(QUERY).unwrap();
    let data = svc.system().parse_data(DATA).unwrap();
    let caught = catch_unwind(AssertUnwindSafe(|| svc.answer(&query, &data, Strategy::Tw)));
    let outcome = match caught {
        Ok(outcome) => outcome,
        Err(_) => panic!("{ctx}: a fault escaped every isolation boundary"),
    };
    match outcome {
        Ok(report) => match report.result() {
            Some(res) => {
                assert_eq!(res.answers, oracle, "{ctx}: wrong answers under faults");
                true
            }
            None => {
                let err = report.final_error();
                assert!(
                    err.is_some(),
                    "{ctx}: failed request must carry a typed error:\n{}",
                    report.report
                );
                false
            }
        },
        // The gate is idle in these tests, so only typed pipeline errors
        // may surface here.
        Err(e) => {
            assert!(
                matches!(
                    e,
                    ObdaError::Transient { .. } | ObdaError::Internal { .. } | ObdaError::Eval(_)
                ),
                "{ctx}: untyped service error {e}"
            );
            false
        }
    }
}

fn oracle() -> Vec<Vec<ConstId>> {
    let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
    let q = sys.parse_query(QUERY).unwrap();
    let d = sys.parse_data(DATA).unwrap();
    let tuples = sys.certain_answers(&q, &d).tuples();
    assert!(!tuples.is_empty(), "the fixture must have answers");
    tuples
}

// ---------------------------------------------------------------------------
// Pinned-seed sweep: every site × kind × trigger × engine configuration.
// ---------------------------------------------------------------------------

#[test]
fn pinned_seed_sweep_is_sound_at_every_site() {
    quiet_injected_panics();
    let oracle = oracle();
    let services = [service(None), service(Some(engine_cfg(1))), service(Some(engine_cfg(4)))];
    for &seed in &[7u64, 42, 0x0bda_5eed] {
        for &site in site::ALL.iter() {
            for kind in [FaultKind::Transient, FaultKind::Panic] {
                for trigger in [
                    Trigger::Always,
                    Trigger::Nth(2),
                    Trigger::EveryNth(3),
                    Trigger::Probability(0.4),
                ] {
                    let plan = FaultPlan::new(seed).with(site, FaultSpec { kind, trigger });
                    for (i, svc) in services.iter().enumerate() {
                        let ctx = format!(
                            "seed={seed} site={site} kind={kind:?} trigger={trigger:?} svc={i}"
                        );
                        let guard = plan.install();
                        assert_sound(svc, &oracle, &ctx);
                        drop(guard);
                    }
                }
            }
        }
    }
    // Every service still answers correctly with all plans disarmed.
    for (i, svc) in services.iter().enumerate() {
        assert!(assert_sound(svc, &oracle, &format!("disarmed svc={i}")));
    }
}

// ---------------------------------------------------------------------------
// Retry semantics
// ---------------------------------------------------------------------------

#[test]
fn oneshot_transient_fault_is_retried_to_success_in_order() {
    quiet_injected_panics();
    let oracle = oracle();
    for threads in [1usize, 4] {
        let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
        let q = sys.parse_query(QUERY).unwrap();
        let d = sys.parse_data(DATA).unwrap();
        let plan = FaultPlan::new(1).with(
            site::ENGINE_CLAUSE_TASK,
            FaultSpec { kind: FaultKind::Transient, trigger: Trigger::Nth(1) },
        );
        let guard = plan.install();
        let report = sys.answer_with_fallback_policy(
            &q,
            &d,
            Strategy::Tw,
            &BudgetSpec::unlimited(),
            Some(&engine_cfg(threads)),
            &fast_retry(),
        );
        drop(guard);
        assert_eq!(report.winning_strategy(), Some(Strategy::Tw), "threads={threads}\n{report}");
        assert_eq!(report.result().unwrap().answers, oracle, "threads={threads}");
        // Attempt 0: the injected fault, typed and site-tagged. Attempt 1:
        // the successful retry of the *same* strategy, recorded in order.
        assert_eq!(report.num_retries(), 1, "threads={threads}\n{report}");
        assert_eq!(report.attempts[0].retry, 0);
        assert!(
            matches!(
                &report.attempts[0].outcome,
                AttemptOutcome::Transient { site } if site == site::ENGINE_CLAUSE_TASK
            ),
            "threads={threads}\n{report}"
        );
        assert_eq!(report.attempts[1].retry, 1);
        assert_eq!(report.attempts[1].strategy, Strategy::Tw);
        assert!(matches!(&report.attempts[1].outcome, AttemptOutcome::Success(_)));
    }
}

#[test]
fn injected_panics_are_never_retried() {
    quiet_injected_panics();
    let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
    let q = sys.parse_query(QUERY).unwrap();
    let d = sys.parse_data(DATA).unwrap();
    let plan = FaultPlan::always(3, site::ENGINE_CLAUSE_TASK, FaultKind::Panic);
    let guard = plan.install();
    let report = sys.answer_with_fallback_policy(
        &q,
        &d,
        Strategy::Tw,
        &BudgetSpec::unlimited(),
        Some(&engine_cfg(4)),
        &fast_retry(),
    );
    drop(guard);
    assert!(report.winner.is_none());
    assert_eq!(report.num_retries(), 0, "panics are bugs, not resource problems:\n{report}");
    assert!(!report.all_exhausted(), "panics must not masquerade as budget trips");
    assert!(report
        .attempts
        .iter()
        .all(|a| matches!(&a.outcome, AttemptOutcome::Panicked { site, .. } if site == site::ENGINE_CLAUSE_TASK)));
    let err = report.final_error().unwrap();
    assert!(matches!(err, ObdaError::Internal { .. }), "got {err}");
}

#[test]
fn ladder_skips_strategies_whose_breaker_is_open() {
    use obda::BreakerConfig;
    quiet_injected_panics();
    let svc = QueryService::new(
        ObdaSystem::from_text(ONTOLOGY).unwrap(),
        ServiceConfig {
            max_concurrency: 2,
            max_queue: 8,
            budget: BudgetSpec::unlimited(),
            retry: fast_retry(),
            engine: Some(engine_cfg(1)),
            overload: OverloadConfig {
                breaker: Some(BreakerConfig {
                    window: 4,
                    threshold: 1,
                    cooldown: Duration::from_secs(60),
                    probes: 1,
                    seed: 1,
                }),
                ..OverloadConfig::default()
            },
        },
    );
    let q = svc.system().parse_query(QUERY).unwrap();
    let d = svc.system().parse_data(DATA).unwrap();

    // Round 1: every rung of the ladder panics (a breaker failure), so
    // every attempted strategy trips its breaker open.
    let guard = FaultPlan::always(3, site::ENGINE_CLAUSE_TASK, FaultKind::Panic).install();
    let stormy = svc.answer(&q, &d, Strategy::Tw).unwrap();
    drop(guard);
    assert!(!stormy.is_success());
    assert!(
        stormy.report.attempts.iter().all(|a| matches!(a.outcome, AttemptOutcome::Panicked { .. })),
        "{}",
        stormy.report
    );

    // Round 2, faults gone: the ladder fails fast — every rung is
    // recorded as Skipped, nothing evaluates, and the final error is
    // the typed breaker refusal, not a budget trip.
    let skipped = svc.answer(&q, &d, Strategy::Tw).unwrap();
    assert!(!skipped.is_success());
    assert!(
        !skipped.report.attempts.is_empty()
            && skipped
                .report
                .attempts
                .iter()
                .all(|a| matches!(a.outcome, AttemptOutcome::Skipped { .. })),
        "all rungs must be skipped while their breakers are open:\n{}",
        skipped.report
    );
    assert!(!skipped.report.all_exhausted(), "skips must not masquerade as budget trips");
    let err = skipped.report.final_error().unwrap();
    assert!(matches!(err, ObdaError::BreakerOpen { .. }), "got {err}");
    assert!(svc.metrics().counter("service_breaker_skipped_total_tw").get() >= 1);
}

#[test]
fn exhausted_retries_degrade_with_a_transient_error() {
    quiet_injected_panics();
    let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
    let q = sys.parse_query(QUERY).unwrap();
    let d = sys.parse_data(DATA).unwrap();
    let plan = FaultPlan::always(5, site::ENGINE_CLAUSE_TASK, FaultKind::Transient);
    let guard = plan.install();
    let retry = fast_retry();
    let report = sys.answer_with_fallback_policy(
        &q,
        &d,
        Strategy::Tw,
        &BudgetSpec::unlimited(),
        Some(&engine_cfg(1)),
        &retry,
    );
    drop(guard);
    assert!(report.winner.is_none());
    // Every rung of the ladder: one first try plus max_retries retries.
    let per_strategy = 1 + retry.max_retries as usize;
    assert_eq!(report.attempts.len() % per_strategy, 0, "{report}");
    assert!(report.num_retries() > 0);
    for chunk in report.attempts.chunks(per_strategy) {
        for (i, a) in chunk.iter().enumerate() {
            assert_eq!(a.retry, i as u32, "retries recorded in order:\n{report}");
            assert_eq!(a.strategy, chunk[0].strategy);
        }
    }
    let err = report.final_error().unwrap();
    assert!(err.is_transient(), "got {err}");
}

#[test]
fn identical_plans_produce_identical_reports() {
    quiet_injected_panics();
    let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
    let q = sys.parse_query(QUERY).unwrap();
    let d = sys.parse_data(DATA).unwrap();
    let plan = FaultPlan::new(0xfeed).with(
        site::STORAGE_INSERT,
        FaultSpec { kind: FaultKind::Transient, trigger: Trigger::Probability(0.3) },
    );
    let mut renders = Vec::new();
    for _ in 0..2 {
        let guard = plan.install();
        let report = sys.answer_with_fallback_policy(
            &q,
            &d,
            Strategy::Tw,
            &BudgetSpec::unlimited(),
            Some(&engine_cfg(1)),
            &fast_retry(),
        );
        drop(guard);
        // Strip the timing column: determinism covers outcomes, not clocks.
        let render: Vec<String> = report
            .to_string()
            .lines()
            .map(|l| l.split(" [").next().unwrap_or(l).to_owned())
            .collect();
        renders.push(render);
    }
    assert_eq!(renders[0], renders[1], "a reinstalled plan must replay identically");
}

// ---------------------------------------------------------------------------
// Telemetry under faults: injected failures must appear as error-tagged
// spans without corrupting the span tree.
// ---------------------------------------------------------------------------

#[test]
fn injected_faults_appear_as_error_tagged_spans() {
    use obda::{CollectingTracer, Telemetry};

    quiet_injected_panics();
    let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
    let q = sys.parse_query(QUERY).unwrap();
    let d = sys.parse_data(DATA).unwrap();
    for kind in [FaultKind::Transient, FaultKind::Panic] {
        let tracer = CollectingTracer::new();
        let plan = FaultPlan::always(21, site::ENGINE_CLAUSE_TASK, kind);
        let guard = plan.install();
        let report = sys.answer_with_fallback_traced(
            &q,
            &d,
            Strategy::Tw,
            &BudgetSpec::unlimited(),
            Some(&engine_cfg(4)),
            &fast_retry(),
            Telemetry::new(&tracer, None),
        );
        drop(guard);
        assert!(report.winner.is_none(), "{kind:?}: an always-fault cannot succeed");

        let tree = tracer.snapshot();
        // The unwind must not corrupt the tree: every span was closed (the
        // RAII guards run during unwinding), and both renderers still work.
        assert!(
            tree.iter().all(|s| s.ended),
            "{kind:?}: a fault left an unfinished span:\n{}",
            tree.render_pretty()
        );
        assert!(!tree.render_pretty().is_empty());
        assert!(tree.render_json().starts_with('['));

        // One attempt span per recorded ladder attempt, each error-tagged
        // with the outcome the report shows (none of them succeeded).
        let attempts: Vec<_> = tree.iter().filter(|s| s.name == "attempt").collect();
        assert_eq!(
            attempts.len(),
            report.attempts.len(),
            "{kind:?}: the trace and the report disagree on attempts:\n{}",
            tree.render_pretty()
        );
        assert!(
            attempts.iter().all(|s| s.error.is_some()),
            "{kind:?}: every failed attempt must be error-tagged:\n{}",
            tree.render_pretty()
        );
        // The injection site surfaces in the error tags.
        assert!(
            tree.iter()
                .filter_map(|s| s.error.as_deref())
                .any(|e| e.contains(site::ENGINE_CLAUSE_TASK)),
            "{kind:?}: no error tag names the faulted site:\n{}",
            tree.render_pretty()
        );
    }
}

// ---------------------------------------------------------------------------
// Service liveness under sustained failure
// ---------------------------------------------------------------------------

#[test]
fn service_keeps_answering_after_sustained_failures() {
    quiet_injected_panics();
    let oracle = oracle();
    let svc = service(Some(engine_cfg(1)));
    let query = svc.system().parse_query(QUERY).unwrap();
    let data = svc.system().parse_data(DATA).unwrap();
    let id = svc.prepare(&query, Strategy::Tw).unwrap();

    // Every data load faults: 60 consecutive requests fail with a typed
    // error, each leaving the gate clean.
    let plan = FaultPlan::always(11, site::STORAGE_INSERT, FaultKind::Transient);
    let guard = plan.install();
    for i in 0..60 {
        let report = svc.submit(id, &data).unwrap();
        assert!(!report.is_success(), "request {i} cannot succeed under an always-fault");
        let err = report.final_error().unwrap();
        assert!(err.is_transient(), "request {i}: got {err}");
        let (active, queued) = svc.load();
        assert_eq!((active, queued), (0, 0), "request {i} leaked a gate slot");
    }
    drop(guard);
    assert_eq!(svc.stats().failed, 60);

    // The very next request — same service, same prepared query — answers.
    let report = svc.submit(id, &data).unwrap();
    assert!(report.is_success(), "the service must answer after sustained failures");
    assert_eq!(report.result().unwrap().answers, oracle);
    assert_eq!(svc.stats().succeeded, 1);
}

#[test]
fn prepare_under_faults_fails_typed_then_recovers() {
    quiet_injected_panics();
    let svc = service(None);
    let query = svc.system().parse_query(QUERY).unwrap();
    let plan = FaultPlan::always(13, site::REWRITE_TREE_WITNESS, FaultKind::Panic);
    let guard = plan.install();
    let err = svc.prepare(&query, Strategy::Tw).unwrap_err();
    assert!(matches!(err, ObdaError::Internal { .. }), "got {err}");
    drop(guard);
    // Registration works once the fault is gone.
    assert!(svc.prepare(&query, Strategy::Tw).is_ok());
}

// ---------------------------------------------------------------------------
// Snapshot store chaos: injected faults on the `.obdb` open path, plus
// systematically truncated and bit-flipped files. The invariants mirror
// the pipeline's: typed errors, no escaped panics (except the deliberate
// injected-panic stand-in, which must unwind cleanly), full recovery
// once the fault is gone.
// ---------------------------------------------------------------------------

fn store_temp_path() -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static N: AtomicUsize = AtomicUsize::new(0);
    std::env::temp_dir().join(format!(
        "obda-chaos-{}-{}.obdb",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Writes the fixture data as a snapshot and returns the system that owns
/// the vocabulary it was written against.
fn store_fixture(path: &std::path::Path) -> ObdaSystem {
    let sys = ObdaSystem::from_text(ONTOLOGY).unwrap();
    let data = sys.parse_data(DATA).unwrap();
    obda::write_snapshot(path, sys.ontology().vocab(), &data).unwrap();
    sys
}

#[test]
fn store_open_transient_fault_is_typed_then_recovers() {
    use obda::{Snapshot, StoreError};

    quiet_injected_panics();
    let path = store_temp_path();
    let sys = store_fixture(&path);
    let plan = FaultPlan::always(17, site::STORE_OPEN, FaultKind::Transient);
    let guard = plan.install();
    let err = Snapshot::open(&path, sys.ontology().vocab()).unwrap_err();
    assert!(matches!(&err, StoreError::Injected { site } if site == site::STORE_OPEN), "got {err}");
    drop(guard);

    // Disarmed, the very same file opens and answers exactly the oracle.
    let snap = Snapshot::open(&path, sys.ontology().vocab()).unwrap();
    std::fs::remove_file(&path).ok();
    let q = sys.parse_query(QUERY).unwrap();
    let d = sys.parse_data(DATA).unwrap();
    let report =
        sys.answer_with_fallback_backend(&q, &snap, Strategy::Tw, &BudgetSpec::unlimited());
    assert_eq!(
        report.result().expect("recovered open must answer").answers,
        sys.certain_answers(&q, &d).tuples()
    );
}

#[test]
fn store_open_injected_panic_unwinds_cleanly() {
    use obda::Snapshot;

    quiet_injected_panics();
    let path = store_temp_path();
    let sys = store_fixture(&path);
    let plan = FaultPlan::always(19, site::STORE_OPEN, FaultKind::Panic);
    let guard = plan.install();
    // The store deliberately re-raises injected *panics* (they model bugs,
    // not I/O failures) so the caller's isolation boundary is exercised;
    // the unwind must not poison the file or the vocabulary.
    let caught = catch_unwind(AssertUnwindSafe(|| Snapshot::open(&path, sys.ontology().vocab())));
    assert!(caught.is_err(), "an always-panic plan must unwind out of open");
    drop(guard);
    let snap = Snapshot::open(&path, sys.ontology().vocab()).unwrap();
    std::fs::remove_file(&path).ok();
    assert!(snap.database().num_atoms() > 0);
}

/// Every truncation point and a sweep of single-bit flips, against both
/// hydration modes. The invariant is *never a wrong tuple, never an
/// untyped escape*:
///
/// * any truncation fails typed at open, even lazily — every declared
///   byte range is pre-validated against the mapped length, so a short
///   file can never SIGBUS a later column touch;
/// * a bit flip either fails typed (at open, or — lazily — as the typed
///   "failed to hydrate" panic on first touch, which the pipeline's
///   isolation boundary catches) or lands in dead padding bytes, in
///   which case the decoded instance must be byte-identical to the
///   original.
#[test]
fn truncated_and_bit_flipped_snapshots_fail_typed() {
    use obda::{Hydration, Snapshot, StoreError};

    quiet_injected_panics();
    let path = store_temp_path();
    let sys = store_fixture(&path);
    let original = std::fs::read(&path).unwrap();
    let expected = sys.parse_data(DATA).unwrap().to_text(sys.ontology());

    let assert_typed = |err: &StoreError, ctx: &str| {
        assert!(
            !matches!(err, StoreError::Injected { .. } | StoreError::Io(_)),
            "{ctx}: corruption must surface as a format error, got {err}"
        );
    };
    // Opens the corrupted bytes and decodes every segment (the instance
    // reconstruction touches all of them). Returns whether anything
    // succeeded end to end — in which case the data must be pristine.
    let open_and_touch = |bytes: &[u8], mode: Hydration, ctx: &str| -> bool {
        std::fs::write(&path, bytes).unwrap();
        let vocab = sys.ontology().vocab();
        let caught = catch_unwind(AssertUnwindSafe(|| {
            match mode {
                Hydration::Eager => Snapshot::open_eager(&path, vocab),
                Hydration::Lazy => Snapshot::open(&path, vocab),
            }
            .map(|snap| snap.data_instance().to_text(sys.ontology()))
        }));
        match caught {
            Ok(Ok(text)) => {
                assert_eq!(text, expected, "{ctx}: corrupted bytes decoded to wrong data");
                true
            }
            Ok(Err(err)) => {
                assert_typed(&err, ctx);
                false
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .unwrap_or_else(|| panic!("{ctx}: untyped panic payload"));
                assert!(
                    msg.contains("failed to hydrate"),
                    "{ctx}: panic must be the typed hydration message, got: {msg}"
                );
                assert!(
                    matches!(mode, Hydration::Lazy),
                    "{ctx}: the eager open must never panic on corruption"
                );
                false
            }
        }
    };

    // Truncations fail typed at open in both modes — lazy included,
    // because range pre-validation runs before any segment is touched.
    for len in 0..original.len() {
        for mode in [Hydration::Lazy, Hydration::Eager] {
            let ctx = format!("truncated to {len} bytes ({mode:?})");
            std::fs::write(&path, &original[..len]).unwrap();
            let vocab = sys.ontology().vocab();
            let caught = catch_unwind(AssertUnwindSafe(|| match mode {
                Hydration::Eager => Snapshot::open_eager(&path, vocab),
                Hydration::Lazy => Snapshot::open(&path, vocab),
            }));
            let result = caught.unwrap_or_else(|_| panic!("{ctx}: open panicked"));
            let err = result.err().unwrap_or_else(|| panic!("{ctx}: truncated snapshot opened"));
            assert_typed(&err, &ctx);
        }
    }
    // Bit flips: typed failure or provably-harmless (dead padding).
    for pos in (0..original.len()).step_by(7) {
        for bit in [0u8, 3, 7] {
            let mut flipped = original.clone();
            flipped[pos] ^= 1 << bit;
            for mode in [Hydration::Lazy, Hydration::Eager] {
                open_and_touch(&flipped, mode, &format!("bit {bit} at byte {pos} ({mode:?})"));
            }
        }
    }

    // The pristine bytes still open: corruption detection has no memory.
    assert!(open_and_touch(&original, Hydration::Lazy, "pristine bytes"));
    std::fs::remove_file(&path).ok();
}

/// The `store::map` site: a transient fault at the mapping boundary is
/// the typed [`StoreError::Injected`] — lazy and eager alike — and the
/// very same file maps and answers once the plan is disarmed.
#[test]
fn store_map_transient_fault_is_typed_then_recovers() {
    use obda::{Snapshot, StoreError};

    quiet_injected_panics();
    let path = store_temp_path();
    let sys = store_fixture(&path);
    let plan = FaultPlan::always(23, site::STORE_MAP, FaultKind::Transient);
    let guard = plan.install();
    for open in [Snapshot::open, Snapshot::open_eager] {
        let err = open(&path, sys.ontology().vocab()).unwrap_err();
        assert!(
            matches!(&err, StoreError::Injected { site } if site == site::STORE_MAP),
            "got {err}"
        );
    }
    drop(guard);

    let snap = Snapshot::open(&path, sys.ontology().vocab()).unwrap();
    std::fs::remove_file(&path).ok();
    let q = sys.parse_query(QUERY).unwrap();
    let d = sys.parse_data(DATA).unwrap();
    let report =
        sys.answer_with_fallback_backend(&q, &snap, Strategy::Tw, &BudgetSpec::unlimited());
    assert_eq!(
        report.result().expect("recovered map must answer").answers,
        sys.certain_answers(&q, &d).tuples()
    );
}

/// A corrupted segment reached through the *pipeline* (not a direct
/// touch): the lazy hydration panic is caught at the pipeline's
/// isolation boundary and recorded as a typed internal error — never an
/// escaped unwind, never a wrong answer.
#[test]
fn lazy_hydration_panic_is_isolated_by_the_pipeline() {
    use obda::Snapshot;

    quiet_injected_panics();
    let path = store_temp_path();
    let sys = store_fixture(&path);
    let mut bytes = std::fs::read(&path).unwrap();
    // Flip a byte in the first data block: page-aligned after the
    // header, so file offset 4096 is segment data, not metadata.
    assert!(bytes.len() > 4096, "fixture must have a page-aligned data region");
    bytes[4096] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    let snap = Snapshot::open(&path, sys.ontology().vocab()).expect("lazy open reads only meta");
    std::fs::remove_file(&path).ok();
    let q = sys.parse_query(QUERY).unwrap();
    let caught = catch_unwind(AssertUnwindSafe(|| {
        sys.answer_with_fallback_backend(&q, &snap, Strategy::Tw, &BudgetSpec::unlimited())
    }));
    let report = caught.expect("the hydration panic must not escape the pipeline");
    assert!(report.result().is_none(), "corrupted segments cannot produce answers");
    assert!(
        report.attempts.iter().any(|a| matches!(
            &a.outcome,
            AttemptOutcome::Panicked { payload, .. } if payload.contains("failed to hydrate")
        )),
        "the typed hydration panic must surface in the report:\n{report}"
    );
}

// ---------------------------------------------------------------------------
// Property-based chaos: arbitrary plans over arbitrary sites.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    /// For an arbitrary seeded plan over any site, kind and trigger, at
    /// one or four engine threads (or the sequential evaluator), the
    /// system returns either the oracle answer or a typed error — never a
    /// wrong answer, never an escaped panic.
    #[test]
    fn arbitrary_fault_plans_are_sound(
        seed in any::<u64>(),
        site_idx in 0usize..site::ALL.len(),
        panic_kind in any::<bool>(),
        trigger_sel in 0u8..4,
        n in 1u64..5,
        p_mil in 0u32..1000,
        engine_sel in 0u8..3,
    ) {
        quiet_injected_panics();
        let oracle = oracle();
        let kind = if panic_kind { FaultKind::Panic } else { FaultKind::Transient };
        let trigger = match trigger_sel {
            0 => Trigger::Always,
            1 => Trigger::Nth(n),
            2 => Trigger::EveryNth(n),
            _ => Trigger::Probability(f64::from(p_mil) / 1000.0),
        };
        let engine = match engine_sel {
            0 => None,
            1 => Some(engine_cfg(1)),
            _ => Some(engine_cfg(4)),
        };
        let svc = service(engine);
        let fault_site = site::ALL[site_idx];
        let plan = FaultPlan::new(seed)
            .with(fault_site, FaultSpec { kind, trigger });
        let ctx = format!(
            "seed={seed} site={fault_site} kind={kind:?} trigger={trigger:?} engine={engine_sel}"
        );
        let guard = plan.install();
        assert_sound(&svc, &oracle, &ctx);
        drop(guard);
        // And the same service answers correctly immediately afterwards.
        prop_assert!(assert_sound(&svc, &oracle, &format!("{ctx} (disarmed)")));
    }
}
