//! A gallery of the paper's hardness reductions (Section 4 and 5), each
//! checked against an independent brute-force solver:
//!
//! * Theorem 15 — hitting set (W[2], parameter: ontology depth);
//! * Theorem 16 — partitioned clique (W[1], parameter: number of leaves);
//! * Theorem 22 — the hardest LOGCFL language with the fixed ontology T‡.
//!
//! Run with: `cargo run --example hardness_gallery`

use obda_chase::answer::{certain_answers, CertainAnswers};
use obda_chase::homomorphism::HomSearch;
use obda_chase::linear_walk::linear_boolean_entails;
use obda_chase::model::CanonicalModel;
use obda_datagen::clique::{clique_to_omq, PartitionedGraph};
use obda_datagen::hitting_set::{hitting_set_to_omq, Hypergraph};
use obda_datagen::logcfl::{in_l, logcfl_data, parse_word, t_double_dagger, word_to_query};

fn main() {
    // ----- Theorem 15: hitting sets ------------------------------------
    println!("Theorem 15 (W[2]-hardness): hitting set as OMQ answering");
    let h = Hypergraph { num_vertices: 3, edges: vec![vec![0, 2], vec![1, 2], vec![0, 1]] };
    for k in 1..=2 {
        let r = hitting_set_to_omq(&h, k);
        let omq = certain_answers(&r.ontology, &r.query, &r.data) == CertainAnswers::Boolean(true);
        println!(
            "  k = {k}: OMQ {omq}, brute force {} (ontology depth grows with k, {} axioms)",
            h.has_hitting_set(k),
            r.ontology.user_axioms().len(),
        );
        assert_eq!(omq, h.has_hitting_set(k));
    }

    // ----- Theorem 16: partitioned cliques ------------------------------
    println!("\nTheorem 16 (W[1]-hardness): partitioned clique as OMQ answering");
    let g = PartitionedGraph {
        num_vertices: 5,
        edges: vec![(0, 2), (2, 4)],
        partition: vec![0, 0, 1, 2, 2],
        num_parts: 3,
    };
    for (label, graph) in [
        ("paper example", g.clone()),
        ("with the closing edge", {
            let mut g2 = g;
            g2.edges.push((0, 4));
            g2
        }),
    ] {
        let r = clique_to_omq(&graph);
        let bound = (2 * graph.num_vertices + 2) * graph.num_parts + 2;
        let model = CanonicalModel::new(&r.ontology, &r.data, bound);
        let omq = HomSearch::new(&model, &r.query).exists(&[]);
        println!(
            "  {label}: OMQ {omq}, brute force {} ({} query atoms, {} leaves)",
            graph.has_partitioned_clique(),
            r.query.num_atoms(),
            graph.num_parts - 1,
        );
        assert_eq!(omq, graph.has_partitioned_clique());
    }

    // ----- Theorem 22: the hardest LOGCFL language ----------------------
    println!("\nTheorem 22 (LOGCFL-hardness): word problems with the fixed ontology T‡");
    let ontology = t_double_dagger();
    let data = logcfl_data(&ontology);
    for word in ["[a1a2#b2b1]", "[a1a2#b2b1][b2b1]", "[a1a2#b2b1][a1b1]", "[#a1a2#b2b1][a1b1]"] {
        let w = parse_word(word);
        let q = word_to_query(&ontology, &w);
        let anchor = q.get_var("u0").expect("u0 exists");
        let omq = linear_boolean_entails(&ontology, &q, &data, anchor);
        println!("  {word}: OMQ {omq}, language membership {}", in_l(&w));
        assert_eq!(omq, in_l(&w));
    }
    println!("\nEvery reduction agrees with its brute-force oracle.");
}
