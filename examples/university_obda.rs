//! A classic OBDA scenario: querying a university data source through a
//! domain ontology. Shows incomplete-data reasoning (anonymous witnesses),
//! consistency checking, and the adaptive strategy with data statistics.
//!
//! Run with: `cargo run --example university_obda`

use obda::{ObdaSystem, Strategy};
use obda_rewrite::adaptive::{AdaptiveRewriter, DataStats};
use obda_rewrite::omq::Omq;

const ONTOLOGY: &str = "\
Professor SubClassOf Faculty
Lecturer SubClassOf Faculty
Faculty SubClassOf exists worksFor
exists worksFor- SubClassOf Department
Professor SubClassOf exists teaches
exists teaches- SubClassOf Course
teaches SubPropertyOf involvedIn
GradStudent SubClassOf exists enrolledIn
enrolledIn SubPropertyOf involvedIn
exists enrolledIn- SubClassOf Course
Faculty DisjointWith GradStudent
";

const DATA: &str = "\
Professor(ada)
Professor(alan)
Lecturer(barbara)
teaches(alan, logic)
teaches(barbara, databases)
GradStudent(kurt)
GradStudent(grace)
enrolledIn(kurt, logic)
worksFor(barbara, csDept)
";

fn main() {
    let system = ObdaSystem::from_text(ONTOLOGY).expect("ontology parses");
    let data = system.parse_data(DATA).expect("data parses");

    let queries = [
        ("everyone involved in a course", "q(x) :- involvedIn(x, y), Course(y)"),
        ("faculty with a department", "q(x) :- worksFor(x, d), Department(d)"),
        ("named departments only", "q(x, d) :- worksFor(x, d)"),
        ("course-mates", "q(x, y) :- involvedIn(x, c), involvedIn(y, c), Course(c)"),
    ];

    for (label, text) in queries {
        let query = system.parse_query(text).expect("query parses");
        let cell = system.classify(&query);
        let result = system.answer(&query, &data, Strategy::Adaptive).expect("evaluation succeeds");
        println!("{label} [{:?}, {}]:", cell.query, cell.complexity);
        if result.answers.is_empty() {
            println!("  (no certain answers)");
        }
        for tuple in &result.answers {
            let names: Vec<&str> = tuple.iter().map(|&c| data.constant_name(c)).collect();
            println!("  ({})", names.join(", "));
        }
    }

    // The adaptive rewriter reports which strategy its cost model picked.
    let query = system.parse_query("q(x) :- involvedIn(x, y), Course(y)").expect("query parses");
    let adaptive = AdaptiveRewriter { stats: DataStats::of(&data) };
    let omq = Omq { ontology: system.ontology(), query: &query };
    let (_, winner, cost) = adaptive.rewrite_with_report(&omq).expect("a strategy applies");
    println!("\nadaptive choice: {winner} (estimated cost {cost:.1})");

    // Consistency: kurt cannot be both faculty and a student.
    let inconsistent =
        system.parse_data("Professor(kurt)\nGradStudent(kurt)\n").expect("data parses");
    let q = system.parse_query("q(x) :- Course(x)").expect("query parses");
    let res = system.answer(&q, &inconsistent, Strategy::Tw).expect("evaluation succeeds");
    println!(
        "inconsistent KB: every individual is a certain answer ({} tuples)",
        res.answers.len()
    );
}
