//! Theorem 17 in action: SAT solving by ontology-mediated query answering
//! with the *fixed* ontology T† over the *fixed* data instance {A(a)}.
//!
//! The canonical model of (T†, {A(a)}) is an infinite binary tree whose
//! depth-n nodes represent all 2ⁿ truth assignments; a CNF φ is satisfiable
//! iff the star-shaped query q_φ folds into that tree. This demonstrates
//! why fixing the ontology does not tame the combined complexity of
//! tree-shaped OMQs (it stays NP-hard).
//!
//! Run with: `cargo run --example sat_as_omq`

use obda_chase::homomorphism::HomSearch;
use obda_chase::model::CanonicalModel;
use obda_datagen::sat::{sat_data, sat_query, t_dagger, theorem_19_singleton_rewriting, Cnf};

fn main() {
    let ontology = t_dagger();
    let data = sat_data(&ontology);

    let formulas = [
        ("(p1 ∨ p2) ∧ ¬p1", Cnf { num_vars: 2, clauses: vec![vec![1, 2], vec![-1]] }),
        ("p1 ∧ ¬p1", Cnf { num_vars: 1, clauses: vec![vec![1], vec![-1]] }),
        (
            "(p1 ∨ p2) ∧ (¬p1 ∨ p3) ∧ (¬p2 ∨ ¬p3)",
            Cnf { num_vars: 3, clauses: vec![vec![1, 2], vec![-1, 3], vec![-2, -3]] },
        ),
        (
            "all four 2-clauses over p1, p2 (unsat)",
            Cnf { num_vars: 2, clauses: vec![vec![1, 2], vec![1, -2], vec![-1, 2], vec![-1, -2]] },
        ),
    ];

    for (label, cnf) in formulas {
        let query = sat_query(&ontology, &cnf);
        // Chase locality: q_φ folds within depth 2k + 2.
        let model = CanonicalModel::new(&ontology, &data, 2 * cnf.num_vars + 2);
        let entailed = HomSearch::new(&model, &query).exists(&[]);
        let dpll = cnf.satisfiable();
        let rewriting = theorem_19_singleton_rewriting(&ontology, &cnf, &data);
        println!(
            "{label}: OMQ says {}, DPLL says {}, Theorem-19 rewriting says {}  ({} query atoms)",
            verdict(entailed),
            verdict(dpll),
            verdict(rewriting),
            query.num_atoms(),
        );
        assert_eq!(entailed, dpll);
        assert_eq!(rewriting, dpll);
    }
    println!("\nAll three deciders agree: T† turns query answering into SAT.");
}

fn verdict(b: bool) -> &'static str {
    if b {
        "SAT"
    } else {
        "UNSAT"
    }
}
