//! Quickstart: load an ontology, rewrite an ontology-mediated query into
//! nonrecursive datalog, and answer it over a small data instance.
//!
//! Run with: `cargo run --example quickstart`

use obda::{ObdaSystem, Strategy};
use obda_ndl::program::ProgramDisplay;

fn main() {
    // The ontology of Example 11 of the paper: P ⊑ S and P ⊑ R⁻
    // (normalisation adds A̺ ↔ ∃̺ behind the scenes).
    let system = ObdaSystem::from_text(
        "P SubPropertyOf S\n\
         P SubPropertyOf R-\n",
    )
    .expect("ontology parses");

    // The 7-atom linear query of Example 8.
    let query = system
        .parse_query(
            "q(x0, x7) :- R(x0, x1), S(x1, x2), R(x2, x3), R(x3, x4), S(x4, x5), R(x5, x6), R(x6, x7)",
        )
        .expect("query parses");

    // Where does this OMQ sit in the Figure 1 landscape?
    let cell = system.classify(&query);
    println!(
        "OMQ class: depth {:?}, query {:?} → combined complexity {}",
        cell.depth, cell.query, cell.complexity
    );

    // Data with no S-edges at all: the S-atoms can only be satisfied
    // through the anonymous part of the canonical model.
    let data = system
        .parse_data(
            "P(w1, a)\n\
             R(a, b)\n\
             P(w2, b)\n\
             R(b, c)\n\
             R(c, e)\n",
        )
        .expect("data parses");

    for strategy in [Strategy::Lin, Strategy::Log, Strategy::Tw, Strategy::TwStar] {
        let rewriting = system.rewrite(&query, strategy).expect("rewriting succeeds");
        let result = system.answer(&query, &data, strategy).expect("evaluation succeeds");
        println!(
            "{strategy:>4}: {} clauses, {} answers, {} tuples materialised",
            rewriting.program.num_clauses(),
            result.stats.num_answers,
            result.stats.generated_tuples,
        );
        for tuple in &result.answers {
            let names: Vec<&str> = tuple.iter().map(|&c| data.constant_name(c)).collect();
            println!("      answer: ({})", names.join(", "));
        }
    }

    // Peek at the Lin rewriting itself (over complete instances).
    let lin = system.rewrite_complete(&query, Strategy::Lin).expect("rewriting succeeds");
    println!("\nThe Lin rewriting (over complete data instances):");
    print!("{}", ProgramDisplay { program: &lin.program });
}
